"""Diagnostics model and rendering for the stack-discipline linter.

A :class:`Diagnostic` pins one finding to a function and instruction;
a :class:`LintReport` aggregates the findings for one program and
renders them as human-readable text or machine-readable JSON.  The
severity scale mirrors compiler practice:

* ``ERROR`` — the program breaks a stack invariant the SVF relies on
  (unbalanced ``$sp``, out-of-frame access).  Morphing such code is
  unsound; CI should fail.
* ``WARNING`` — legal but SVF-hostile behaviour worth auditing (a
  frame slot read before any write forces an SVF fill from memory; a
  stack address stored to memory defeats static re-routing).
* ``INFO`` — expected behaviour the SVF is explicitly designed to
  exploit or handle (dead stores at frame death are the writebacks
  the SVF elides; ``$gpr``-based stack accesses are re-routed).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, List, Optional


class Severity(enum.IntEnum):
    """Ordered severity scale (higher is worse)."""

    INFO = 1
    WARNING = 2
    ERROR = 3

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding, pinned to a function and instruction index."""

    severity: Severity
    pass_name: str
    function: str
    index: int  # program-wide instruction index (-1: whole function)
    message: str

    def address(self, text_base: int = 0x1000) -> int:
        """Instruction address (``text_base + 4 * index``)."""
        return text_base + 4 * max(self.index, 0)

    def render(self) -> str:
        location = (
            f"{self.function}+{self.index}" if self.index >= 0
            else self.function
        )
        return (
            f"{self.severity.name:7s} [{self.pass_name}] "
            f"{location} pc=0x{self.address():x}: {self.message}"
        )

    def to_dict(self) -> Dict:
        return {
            "severity": self.severity.name.lower(),
            "pass": self.pass_name,
            "function": self.function,
            "index": self.index,
            "pc": self.address(),
            "message": self.message,
        }


_SEVERITY_ORDER = (Severity.ERROR, Severity.WARNING, Severity.INFO)


@dataclass
class LintReport:
    """All diagnostics for one linted program."""

    name: str
    diagnostics: List[Diagnostic]
    instruction_count: int = 0
    function_count: int = 0

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.by_severity(Severity.INFO)

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics exist."""
        return not self.errors

    def counts(self) -> Dict[str, int]:
        return {
            severity.name.lower(): len(self.by_severity(severity))
            for severity in _SEVERITY_ORDER
        }

    def sorted_diagnostics(self) -> List[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (-int(d.severity), d.function, d.index),
        )

    def summary(self) -> str:
        counts = self.counts()
        status = "clean" if self.ok else "FAILED"
        if self.function_count == 0:
            # An empty or functionless program is vacuously clean; say
            # so explicitly instead of emitting a silently empty report.
            shape = f"(no functions, {self.instruction_count} instructions)"
        else:
            shape = (
                f"({self.function_count} functions, "
                f"{self.instruction_count} instructions)"
            )
        return (
            f"{self.name}: {status} — {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info "
            f"{shape}"
        )

    def render_text(self, max_info: Optional[int] = None) -> str:
        """Full text report: summary line, then diagnostics by severity.

        ``max_info`` truncates the (potentially long) info listing;
        errors and warnings are always shown in full.
        """
        lines = [self.summary()]
        shown = self.errors + self.warnings
        infos = self.infos
        if max_info is not None and len(infos) > max_info:
            truncated = len(infos) - max_info
            infos = infos[:max_info]
        else:
            truncated = 0
        for diagnostic in sorted(
            shown + infos, key=lambda d: (-int(d.severity), d.function, d.index)
        ):
            lines.append("  " + diagnostic.render())
        if truncated:
            lines.append(f"  ... and {truncated} more info diagnostics")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "counts": self.counts(),
            "functions": self.function_count,
            "instructions": self.instruction_count,
            "diagnostics": [d.to_dict() for d in self.sorted_diagnostics()],
        }

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def render_reports(reports: List[LintReport],
                   max_info: Optional[int] = None) -> str:
    """Render several reports plus a suite-level footer."""
    blocks = [report.render_text(max_info=max_info) for report in reports]
    total_errors = sum(len(r.errors) for r in reports)
    total_warnings = sum(len(r.warnings) for r in reports)
    total_infos = sum(len(r.infos) for r in reports)
    failed = [r.name for r in reports if not r.ok]
    footer = (
        f"{len(reports)} workload(s) linted: {total_errors} error(s), "
        f"{total_warnings} warning(s), {total_infos} info"
    )
    if failed:
        footer += " — FAILED: " + ", ".join(failed)
    blocks.append(footer)
    return "\n\n".join(blocks)


def reports_to_json(reports: List[LintReport], indent: int = 2) -> str:
    """Versioned JSON payload for a list of lint reports."""
    # Lazy import: repro.api sits above this module in the layering
    # but owns the one schema version every JSON payload carries.
    from repro.api import SCHEMA_VERSION

    payload = {
        "schema_version": SCHEMA_VERSION,
        "ok": all(report.ok for report in reports),
        "workloads": [report.to_dict() for report in reports],
    }
    return json.dumps(payload, indent=indent)
