"""Figure 1 — run-time memory-access distribution.

Paper shape: stack references are the majority of memory accesses
(56% on SPECint2000), ``$sp``-relative addressing dominates the stack
(82% of stack accesses), and eon is the ``$gpr``-heavy outlier.
"""

from repro.harness import characterize
from repro.trace.regions import AccessMethod


def test_fig1(benchmark, emit, functional_window):
    result = benchmark.pedantic(
        lambda: characterize(max_instructions=functional_window),
        rounds=1,
        iterations=1,
    )
    emit("fig1_access_distribution", result.render_fig1())

    distributions = result.distributions
    stack_fractions = [d.stack_fraction for d in distributions.values()]
    average_stack = sum(stack_fractions) / len(stack_fractions)
    assert average_stack > 0.4, "stack refs should dominate memory refs"

    sp_fractions = [
        d.sp_fraction_of_stack for d in distributions.values()
    ]
    average_sp = sum(sp_fractions) / len(sp_fractions)
    assert average_sp > 0.6, "$sp-relative should dominate stack refs"

    # eon is among the gpr-heavy outliers (paper: >45% of its stack
    # accesses go through a $gpr, the single exception in the suite).
    gpr_shares = {
        name: d.fraction(AccessMethod.STACK_GPR)
        / max(d.stack_fraction, 1e-9)
        for name, d in distributions.items()
    }
    ranked = sorted(gpr_shares, key=gpr_shares.get, reverse=True)
    assert "252.eon" in ranked[:3], "eon should be a gpr-heavy outlier"
    suite_average = sum(gpr_shares.values()) / len(gpr_shares)
    assert gpr_shares["252.eon"] > suite_average
