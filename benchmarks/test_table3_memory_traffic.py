"""Table 3 — memory traffic of stack cache vs SVF at 2/4/8 KB.

Paper shape: the SVF's traffic is orders of magnitude below the stack
cache's in most scenarios; traffic shrinks as capacity grows; gcc
retains traffic even at 8 KB (deepest frames); perlbmk's traffic is
size-insensitive (its interpreter frame exceeds every capacity).
"""

from repro.harness import table3_memory_traffic


def test_table3(benchmark, emit, functional_window):
    result = benchmark.pedantic(
        lambda: table3_memory_traffic(max_instructions=functional_window),
        rounds=1,
        iterations=1,
    )
    emit("table3_memory_traffic", result.render())

    total_cache = 0
    total_svf = 0
    for per_size in result.traffic.values():
        for size, traffic in per_size.items():
            total_cache += (
                traffic.stack_cache_qw_in + traffic.stack_cache_qw_out
            )
            total_svf += traffic.svf_qw_in + traffic.svf_qw_out
    assert total_cache > 5 * total_svf, (
        "aggregate SVF traffic should be far below the stack cache"
    )

    # Traffic decreases with capacity for the stack cache.
    for name, per_size in result.traffic.items():
        sizes = sorted(per_size)
        ins = [per_size[s].stack_cache_qw_in for s in sizes]
        assert ins[0] >= ins[-1], name

    # gcc keeps traffic at 8 KB; gzip is clean everywhere.
    gcc = result.traffic["gcc.integrate"][8192]
    assert gcc.svf_qw_in + gcc.svf_qw_out > 0 or (
        gcc.stack_cache_qw_in > 0
    )
    gzip_row = result.traffic["gzip.graphic"][2048]
    assert gzip_row.svf_qw_in + gzip_row.svf_qw_out < 100

    # perlbmk: size-insensitive stack-cache thrashing (the anomaly).
    perl = result.traffic["perlbmk.scrabbl"]
    assert perl[8192].stack_cache_qw_in > 0.5 * perl[2048].stack_cache_qw_in
