"""Functional emulator producing dynamic instruction traces."""

from repro.emulator.machine import EmulatorError, Machine, run_program
from repro.emulator.memory import (
    DATA_BASE,
    HEAP_BASE,
    Memory,
    MemoryError_,
    STACK_BASE,
    TEXT_BASE,
)

__all__ = [
    "DATA_BASE",
    "EmulatorError",
    "HEAP_BASE",
    "Machine",
    "Memory",
    "MemoryError_",
    "STACK_BASE",
    "TEXT_BASE",
    "run_program",
]
