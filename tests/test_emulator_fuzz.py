"""Property-based differential fuzzing of the emulator's ALU.

Hypothesis generates random linear sequences of ALU instructions over
a small register set; an independent Python model of the ISA semantics
predicts the final register values.  This checks the emulator at the
ISA level, complementing the MiniC-level differential tests (which
route through the compiler and could mask compensating bugs).
"""

from hypothesis import given, settings, strategies as st

from repro.emulator import Machine
from repro.isa import assemble

MASK64 = (1 << 64) - 1

#: registers the fuzz uses (caller-saved temps, away from $sp/$ra)
REGS = ["r1", "r2", "r3", "r4", "r5"]

OPS = ["addq", "subq", "mulq", "and", "or", "xor", "bic",
       "sll", "srl", "sra", "cmpeq", "cmplt", "cmple", "cmpult"]


def signed(value):
    value &= MASK64
    return value - (1 << 64) if value & (1 << 63) else value


def model_op(op, left, right):
    left &= MASK64
    right &= MASK64
    if op == "addq":
        return (left + right) & MASK64
    if op == "subq":
        return (left - right) & MASK64
    if op == "mulq":
        return (left * right) & MASK64
    if op == "and":
        return left & right
    if op == "or":
        return left | right
    if op == "xor":
        return left ^ right
    if op == "bic":
        return left & ~right & MASK64
    if op == "sll":
        return (left << (right & 63)) & MASK64
    if op == "srl":
        return left >> (right & 63)
    if op == "sra":
        return (signed(left) >> (right & 63)) & MASK64
    if op == "cmpeq":
        return int(left == right)
    if op == "cmplt":
        return int(signed(left) < signed(right))
    if op == "cmple":
        return int(signed(left) <= signed(right))
    if op == "cmpult":
        return int(left < right)
    raise AssertionError(op)


_instruction = st.one_of(
    # ALU register form: (op, ra, rb, rd)
    st.tuples(st.sampled_from(OPS), st.sampled_from(REGS),
              st.sampled_from(REGS), st.sampled_from(REGS)),
    # ALU immediate form: (op, ra, imm, rd)
    st.tuples(st.sampled_from(OPS), st.sampled_from(REGS),
              st.integers(-200, 200), st.sampled_from(REGS)),
    # lda immediate: ('lda', rd, imm)
    st.tuples(st.just("lda"), st.sampled_from(REGS),
              st.integers(-(1 << 30), 1 << 30)),
)


class TestEmulatorALUFuzz:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(_instruction, min_size=1, max_size=25))
    def test_register_file_matches_model(self, instructions):
        lines = ["main:"]
        registers = {reg: 0 for reg in REGS}
        for item in instructions:
            if item[0] == "lda":
                _, rd, imm = item
                lines.append(f"    lda {rd}, {imm}(zero)")
                registers[rd] = imm & MASK64
            else:
                op, ra, second, rd = item
                if isinstance(second, int):
                    lines.append(f"    {op} {ra}, {second}, {rd}")
                    right = second & MASK64
                else:
                    lines.append(f"    {op} {ra}, {second}, {rd}")
                    right = registers[second]
                registers[rd] = model_op(op, registers[ra], right)
        for reg in REGS:
            lines.append(f"    print {reg}")
        lines.append("    halt")
        machine = Machine(assemble("\n".join(lines)))
        machine.run()
        assert machine.halted
        expected = [signed(registers[reg]) for reg in REGS]
        assert machine.output == expected

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(-(1 << 62), 1 << 62),
        st.integers(-(1 << 62), 1 << 62).filter(lambda v: v != 0),
    )
    def test_division_matches_c_semantics(self, dividend, divisor):
        source = f"""
        main:
            lda r1, {dividend}(zero)
            lda r2, {divisor}(zero)
            divq r1, r2, r3
            remq r1, r2, r4
            print r3
            print r4
            halt
        """
        machine = Machine(assemble(source))
        machine.run()
        quotient = abs(dividend) // abs(divisor)
        if (dividend < 0) != (divisor < 0):
            quotient = -quotient
        remainder = dividend - quotient * divisor
        assert machine.output == [
            signed(quotient), signed(remainder)
        ]

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, (1 << 64) - 1), st.integers(0, 16))
    def test_memory_round_trip_any_value(self, value, slot):
        source = f"""
        main:
            lda sp, -256(sp)
            lda r1, {signed(value)}(zero)
            stq r1, {8 * slot}(sp)
            ldq r2, {8 * slot}(sp)
            print r2
            lda sp, 256(sp)
            halt
        """
        machine = Machine(assemble(source))
        machine.run()
        assert machine.output == [signed(value)]
