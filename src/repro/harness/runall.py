"""Run the full experiment battery and render one report.

``generate_report`` regenerates every table and figure of the paper
(plus the characterization extensions) at the requested windows and
returns a single markdown document — the programmatic equivalent of
``pytest benchmarks/ --benchmark-only``, usable from the CLI
(``python -m repro report``) or a notebook.

The sweep is decomposed into (benchmark × experiment × window) cells
and executed by :mod:`repro.harness.parallel` — ``jobs`` workers over
a process pool, backed by the shared on-disk trace cache when
``cache_dir`` is set.  Results merge in suite order, so the document
is byte-identical for any ``jobs`` value; a cell that fails after its
retry renders as an annotated gap inside its section instead of
crashing the report.
"""

from __future__ import annotations

import io
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness.experiments import (
    CharacterizationResult,
    FIG5_CONFIGS,
    FIG6_STEPS,
    FIG7_CONFIGS,
    FIG9_CONFIGS,
    Fig5Result,
    Fig6Result,
    Fig7Result,
    Fig9Result,
    Table3Result,
    Table4Result,
    _suite,
    table1_workloads,
    table2_models,
)
from repro.harness.parallel import (
    CellOutcome,
    EngineOptions,
    TaskCell,
    run_cells,
)
from repro.profiling import PhaseProfiler

#: (section, which window it uses, extra params) in report order.
_SECTION_PLAN: Tuple[Tuple[str, str], ...] = (
    ("characterize", "functional"),
    ("fig5", "timing"),
    ("fig6", "timing"),
    ("fig7", "timing"),
    ("table3", "functional"),
    ("table4", "functional"),
    ("fig9", "timing"),
)

#: Timing figures split one cell per machine configuration, so a slow
#: column (e.g. the gshare run) never serializes behind the rest of
#: its benchmark's figure.  Tuples give the column order of each
#: figure's table, which the merge preserves.
_SECTION_CONFIGS: Dict[str, Tuple[str, ...]] = {
    "fig5": FIG5_CONFIGS,
    "fig6": FIG6_STEPS,
    "fig7": FIG7_CONFIGS,
    "fig9": FIG9_CONFIGS,
}


def _plan_cells(
    suite: Sequence[str],
    timing_window: int,
    functional_window: int,
    period: int,
) -> List[TaskCell]:
    """Section-major cell order: workers hit distinct benchmarks first,
    so cold-cache runs compute each trace once instead of racing on it.
    Within a per-config section the config loop is outermost for the
    same reason."""
    windows = {"timing": timing_window, "functional": functional_window}
    cells = []
    for section, window_kind in _SECTION_PLAN:
        window = windows[window_kind]
        configs = _SECTION_CONFIGS.get(section)
        if configs is not None:
            for config in configs:
                for benchmark in suite:
                    cells.append(
                        TaskCell(
                            section, benchmark, window,
                            (("config", config),),
                        )
                    )
            continue
        params: Tuple = ()
        if section == "table4":
            params = (("period", period),)
        for benchmark in suite:
            cells.append(TaskCell(section, benchmark, window, params))
    return cells


def _merge(
    suite: Sequence[str],
    outcomes: Sequence[CellOutcome],
    period: int,
) -> Dict[str, object]:
    """Fold per-cell payloads into result objects, in suite order.

    Per-config sections merge column by column in the figure's
    canonical config order; a benchmark with any missing/failed column
    drops out of that figure entirely (matching the old whole-figure
    cell behaviour), with the specific cell named in the degraded
    annotation.
    """
    by_cell = {
        (
            outcome.cell.section,
            outcome.cell.benchmark,
            outcome.cell.param("config"),
        ): outcome
        for outcome in outcomes
    }

    def payload(section: str, benchmark: str, config: str = None):
        outcome = by_cell.get((section, benchmark, config))
        return outcome.payload if outcome is not None and outcome.ok else None

    def config_row(section: str, benchmark: str):
        row = {}
        for config in _SECTION_CONFIGS[section]:
            value = payload(section, benchmark, config)
            if value is None:
                return None
            row[config] = value
        return row

    characterization = CharacterizationResult()
    fig5 = Fig5Result()
    fig6 = Fig6Result()
    fig7 = Fig7Result()
    fig9 = Fig9Result()
    table3 = Table3Result()
    table4 = Table4Result(period=period)
    for benchmark in suite:
        char = payload("characterize", benchmark)
        if char is not None:
            characterization.distributions[benchmark] = char["distribution"]
            characterization.depth_profiles[benchmark] = char["depth"]
            characterization.localities[benchmark] = char["locality"]
            characterization.first_touch[benchmark] = char["first_touch"]
        for result, section in ((fig5, "fig5"), (fig6, "fig6"),
                                (fig9, "fig9")):
            row = config_row(section, benchmark)
            if row is not None:
                result.speedups[benchmark] = row
        seven = config_row("fig7", benchmark)
        if seven is not None and "svf_stats" in seven["(2+2)svf"]:
            fig7.speedups[benchmark] = {
                config: cell["speedup"] for config, cell in seven.items()
            }
            fig7.svf_stats[benchmark] = seven["(2+2)svf"]["svf_stats"]
        traffic = payload("table3", benchmark)
        if traffic is not None:
            table3.traffic.update(traffic)
        switch = payload("table4", benchmark)
        if switch is not None:
            table4.rows[benchmark] = switch
    return {
        "characterize": characterization,
        "fig5": fig5,
        "fig6": fig6,
        "fig7": fig7,
        "fig9": fig9,
        "table3": table3,
        "table4": table4,
    }


def generate_report(
    timing_window: int = 40_000,
    functional_window: int = 80_000,
    benchmarks: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    task_timeout: float = 600.0,
    profiler: Optional[PhaseProfiler] = None,
) -> str:
    """Run everything; returns the report as markdown text.

    ``progress``, if given, is called with a status string before each
    stage and after each finished cell (e.g. ``print``).  ``jobs``
    picks the worker count (None → ``os.cpu_count()``, 1 → inline);
    ``cache_dir`` enables the shared on-disk trace cache.  The output
    is byte-identical across ``jobs`` values.

    ``profiler``, if given, accumulates the per-phase breakdown of the
    whole sweep: every cell's worker-side phase snapshot is merged in,
    plus the report's own ``render`` phase.  The breakdown never
    enters the document, so profiled and unprofiled reports stay
    byte-identical.
    """

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    suite = _suite(benchmarks)
    period = max(functional_window // 25, 1_000)
    started = time.time()
    render_seconds = 0.0
    render_started = time.perf_counter()

    out = io.StringIO()
    out.write("# SVF reproduction — full experiment report\n\n")
    out.write(
        f"Windows: {timing_window:,} instructions (timing), "
        f"{functional_window:,} (functional).\n\n"
    )

    failures_by_section: Dict[str, List[CellOutcome]] = {}

    def section(title: str, body: str, section_key: str = "") -> None:
        annotations = ""
        for outcome in failures_by_section.get(section_key, ()):
            annotations += (
                f"\n(degraded: cell {outcome.cell.label} failed after "
                f"{outcome.attempts} attempt"
                f"{'s' if outcome.attempts != 1 else ''} — {outcome.error})"
            )
        out.write(f"## {title}\n\n```\n{body}{annotations}\n```\n\n")

    note("Tables 1-2 (inventories)")
    section("Table 1 — benchmarks", table1_workloads())
    section("Table 2 — machine models", table2_models())
    render_seconds += time.perf_counter() - render_started

    cells = _plan_cells(suite, timing_window, functional_window, period)
    options = EngineOptions(
        jobs=jobs, cache_dir=cache_dir, task_timeout=task_timeout
    )
    note(
        f"running {len(cells)} cells over {len(suite)} benchmarks "
        f"({options.effective_jobs()} jobs, cache "
        f"{cache_dir if cache_dir else 'off'})"
    )
    outcomes = run_cells(cells, options, progress=progress)
    for outcome in outcomes:
        if not outcome.ok:
            failures_by_section.setdefault(
                outcome.cell.section, []
            ).append(outcome)
        if profiler is not None:
            profiler.merge(outcome.phases)
    render_started = time.perf_counter()
    merged = _merge(suite, outcomes, period)

    characterization = merged["characterize"]
    section(
        "Figure 1 — access distribution",
        characterization.render_fig1(),
        "characterize",
    )
    section(
        "Figure 2 — stack depth",
        characterization.render_fig2(),
        "characterize",
    )
    section(
        "Figure 3 — offset locality",
        characterization.render_fig3(),
        "characterize",
    )
    section(
        "First-touch analysis (valid-bit rationale)",
        characterization.render_first_touch(),
        "characterize",
    )
    section("Figure 5 — ideal morphing", merged["fig5"].render(), "fig5")
    section(
        "Figure 6 — progressive analysis", merged["fig6"].render(), "fig6"
    )
    section("Figure 7 — SVF vs stack cache", merged["fig7"].render(), "fig7")
    section(
        "Figure 8 — reference breakdown",
        merged["fig7"].render_fig8(),
        "fig7",
    )
    section("Table 3 — memory traffic", merged["table3"].render(), "table3")
    section(
        "Table 4 — context-switch writeback",
        merged["table4"].render(),
        "table4",
    )
    section(
        "Figure 9 — SVF speedups by ports", merged["fig9"].render(), "fig9"
    )

    # The elapsed time goes to the progress channel, not the document,
    # so reports stay byte-comparable across runs and job counts.
    note(f"report complete in {time.time() - started:.1f}s")
    out.write("_Generated by repro.harness.runall._\n")
    render_seconds += time.perf_counter() - render_started
    if profiler is not None:
        profiler.note("render", render_seconds)
    return out.getvalue()
