"""Decoupled stack cache baseline (Cho, Yew & Lee — paper Section 5.3).

A direct-mapped, write-back, write-allocate cache dedicated to stack
references, sitting beside the L1 and refilled from the L2.  It is the
best-performing prior approach the paper compares the SVF against.

The crucial contrast with the SVF (paper Section 5.3.2):

1. **Allocations** — on a write miss the stack cache must fetch the
   rest of the line before the write can complete, even though a newly
   allocated stack frame is by definition uninitialized.
2. **Dirty replacements** — when a line is evicted the whole line must
   be written back if any word is dirty, even when the frame it held
   has already been deallocated (dead data).

Traffic is counted in quad-words, matching the paper's Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class StackCacheAccess:
    """Outcome of one reference presented to the stack cache."""

    hit: bool
    #: quad-words read from the L2 (line fill)
    filled: int = 0
    #: quad-words written back to the L2 (dirty eviction)
    written_back: int = 0


class StackCache:
    """Direct-mapped decoupled stack cache."""

    def __init__(self, capacity_bytes: int = 8192, line_size: int = 32):
        if capacity_bytes % line_size != 0 or capacity_bytes <= 0:
            raise ValueError("capacity must be a positive multiple of line")
        self.capacity = capacity_bytes
        self.line_size = line_size
        self.num_lines = capacity_bytes // line_size
        self.line_words = line_size // 8
        #: line index -> (tag, dirty)
        self._lines: Dict[int, Tuple[int, bool]] = {}
        # Traffic counters (quad-words between the stack cache and L2).
        self.qw_in = 0
        self.qw_out = 0
        # Behaviour counters.
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.context_switches = 0

    def _locate(self, addr: int) -> Tuple[int, int]:
        line_number = addr // self.line_size
        return line_number % self.num_lines, line_number // self.num_lines

    def access(self, addr: int, size: int, is_store: bool) -> StackCacheAccess:
        """Present one stack reference; updates state and traffic.

        Both read and write misses fill the whole line from the L2
        (write-allocate): with only per-line state the cache cannot
        know that a freshly allocated frame needs no fill.
        """
        index, tag = self._locate(addr)
        entry = self._lines.get(index)
        if entry is not None and entry[0] == tag:
            self.hits += 1
            if is_store and not entry[1]:
                self._lines[index] = (tag, True)
            return StackCacheAccess(hit=True)
        self.misses += 1
        written_back = 0
        if entry is not None and entry[1]:
            written_back = self.line_words
            self.qw_out += written_back
            self.writebacks += 1
        self.qw_in += self.line_words
        self._lines[index] = (tag, is_store)
        return StackCacheAccess(
            hit=False, filled=self.line_words, written_back=written_back
        )

    def context_switch(self) -> int:
        """Flush for a context switch; returns bytes written back.

        Every dirty line is written back *whole* — the stack cache has
        per-line dirty bits, so one dirty word costs a full line of
        writeback traffic (contrast with the SVF's per-word bits).
        """
        self.context_switches += 1
        dirty_lines = sum(1 for _, dirty in self._lines.values() if dirty)
        self._lines.clear()
        self.qw_out += dirty_lines * self.line_words
        return dirty_lines * self.line_size

    @property
    def valid_lines(self) -> int:
        return len(self._lines)

    @property
    def dirty_lines(self) -> int:
        return sum(1 for _, dirty in self._lines.values() if dirty)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StackCache {self.capacity}B direct-mapped "
            f"lines={self.valid_lines}/{self.num_lines}>"
        )
