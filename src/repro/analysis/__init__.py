"""Static analysis of assembled programs: CFGs, dataflow, stack lints.

The SVF (and every figure this repository reproduces) assumes compiled
code obeys Alpha stack discipline — ``$sp``-relative frame slots,
write-before-read on fresh frames, frame death at ``ret``.  This
package *verifies* those invariants statically:

* :mod:`repro.analysis.cfg` — per-function control-flow graphs and
  the direct call graph, reconstructed from a :class:`Program`;
* :mod:`repro.analysis.dataflow` — a small generic forward/backward
  worklist solver every pass is built on;
* :mod:`repro.analysis.stackcheck` — the five SVF-safety passes
  (sp-balance, frame-bounds, first-read, dead-store, escape);
* :mod:`repro.analysis.lint` / :mod:`repro.analysis.report` — the
  lint driver, diagnostics model, and text/JSON rendering behind the
  ``repro lint`` CLI subcommand;
* :mod:`repro.analysis.callgraph` / :mod:`repro.analysis.summaries` /
  :mod:`repro.analysis.certify` — the whole-program certifier behind
  ``repro certify``: SCC-condensed call graph, bottom-up
  interprocedural summaries, and program-level verdicts (depth
  bounds, slot escape classes, LIFO proofs, integrity lattice).

See ``docs/analysis.md`` for the full pass catalogue and the
static-vs-dynamic validation contract.
"""

from repro.analysis.callgraph import (
    CallGraph,
    CallSite,
    build_call_graph,
)
from repro.analysis.certify import (
    HARD_FLAGS,
    FunctionVerdict,
    ProgramCertificate,
    SafetyFlag,
    certify_program,
    render_certificates,
)
from repro.analysis.cfg import (
    BasicBlock,
    CFGAnomaly,
    FunctionCFG,
    ProgramCFG,
    build_cfg,
)
from repro.analysis.dataflow import (
    BACKWARD,
    FORWARD,
    DataflowProblem,
    DataflowResult,
    SetProblem,
    solve,
)
from repro.analysis.lint import (
    lint_all,
    lint_assembly,
    lint_program,
    lint_workload,
)
from repro.analysis.report import (
    Diagnostic,
    LintReport,
    Severity,
    render_reports,
    reports_to_json,
)
from repro.analysis.summaries import (
    FunctionSummary,
    ProgramSummary,
    SLOT_LOCAL,
    SLOT_PRIVATE,
    SLOT_SHARED,
    SLOT_UNCLEAN,
    summarize_program,
)
from repro.analysis.stackcheck import (
    ALL_PASSES,
    FrameContext,
    analyze_frames,
    check_function,
    check_program,
    dead_store_pass,
    escape_pass,
    first_read_pass,
    structure_pass,
)

__all__ = [
    "ALL_PASSES",
    "BACKWARD",
    "BasicBlock",
    "CFGAnomaly",
    "CallGraph",
    "CallSite",
    "DataflowProblem",
    "DataflowResult",
    "Diagnostic",
    "FORWARD",
    "FrameContext",
    "FunctionCFG",
    "FunctionSummary",
    "FunctionVerdict",
    "HARD_FLAGS",
    "LintReport",
    "ProgramCFG",
    "ProgramCertificate",
    "ProgramSummary",
    "SLOT_LOCAL",
    "SLOT_PRIVATE",
    "SLOT_SHARED",
    "SLOT_UNCLEAN",
    "SafetyFlag",
    "SetProblem",
    "Severity",
    "analyze_frames",
    "build_call_graph",
    "build_cfg",
    "certify_program",
    "check_function",
    "check_program",
    "dead_store_pass",
    "escape_pass",
    "first_read_pass",
    "lint_all",
    "lint_assembly",
    "lint_program",
    "lint_workload",
    "render_certificates",
    "render_reports",
    "reports_to_json",
    "solve",
    "structure_pass",
    "summarize_program",
]
