"""Tests for the parallel experiment engine, trace cache, and the
harness hardening against bad benchmark subsets.

Covers the regression contract of the bugfix PR:

* unknown benchmark names fail fast with one UsageError naming them
  all (CLI: exit 2, one-line stderr);
* an empty subset renders an explicit placeholder table, never a bare
  StopIteration;
* every report section agrees on the validated subset;
* ``jobs=1`` and ``jobs=4`` reports are byte-identical;
* failed cells degrade to annotated gaps instead of crashing.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.errors import UsageError
from repro.harness.experiments import (
    Fig5Result,
    Fig6Result,
    Fig7Result,
    Fig9Result,
    Table3Result,
    Table4Result,
    _suite,
)
from repro.harness.parallel import (
    EngineOptions,
    TaskCell,
    TraceCache,
    run_cells,
)
from repro.harness.runall import generate_report
from repro.workloads import clear_trace_cache, validate_benchmarks, workload


class TestSuiteValidation:
    def test_none_is_full_suite(self):
        assert len(_suite(None)) == 12

    def test_short_and_full_names_canonicalize(self):
        assert _suite(["gzip", "181.mcf"]) == ["164.gzip", "181.mcf"]

    def test_duplicates_deduplicate(self):
        assert _suite(["gzip", "164.gzip", "gzip"]) == ["164.gzip"]

    def test_unknown_name_raises_usage_error(self):
        with pytest.raises(UsageError, match="unknown benchmark: nope"):
            _suite(["nope"])

    def test_all_unknown_names_listed_at_once(self):
        with pytest.raises(UsageError, match="nope, doom"):
            validate_benchmarks(["nope", "gzip", "doom"])

    def test_extension_workload_resolves(self):
        assert validate_benchmarks(["x86mix"]) == ["ext.x86mix"]


class TestEmptySuiteRenders:
    """Filtering to an empty suite must render, not raise StopIteration."""

    @pytest.mark.parametrize("result", [
        Fig5Result(), Fig6Result(), Fig7Result(), Fig9Result(),
        Table3Result(), Table4Result(),
    ])
    def test_placeholder_table(self, result):
        text = result.render()
        assert "(no benchmarks selected)" in text

    def test_fig8_placeholder(self):
        assert "(no benchmarks selected)" in Fig7Result().render_fig8()

    def test_empty_render_survives_generator_context(self):
        # A bare StopIteration inside a generator would silently end
        # it (PEP 479 turns it into RuntimeError); rendering must not
        # depend on that.
        rendered = list(
            result.render()
            for result in (Fig5Result(), Fig9Result())
        )
        assert len(rendered) == 2


class TestTraceCache:
    KEY = ("164.gzip", "graphic", 0, 1500)

    def test_round_trip(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        trace = workload("gzip").trace(max_instructions=1_500)
        assert cache.load(self.KEY) is None
        cache.store(self.KEY, trace)
        loaded = cache.load(self.KEY)
        assert len(loaded) == len(trace)
        assert loaded[7].pc == trace[7].pc
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_corrupt_entry_is_dropped(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        cache.store(self.KEY, workload("gzip").trace(max_instructions=500))
        cache.path_for(self.KEY).write_bytes(b"not a pickle")
        assert cache.load(self.KEY) is None
        assert not cache.path_for(self.KEY).exists()

    def test_versioned_layout(self, tmp_path):
        from repro.api import SCHEMA_VERSION

        cache = TraceCache(str(tmp_path))
        assert cache.root == tmp_path / f"v{SCHEMA_VERSION}"
        path = cache.path_for(self.KEY)
        assert path.name == "164.gzip.graphic.O0.w1500.trace.bin"

    def test_cell_payload_round_trip(self, tmp_path):
        from repro.harness.parallel import _MISS

        cache = TraceCache(str(tmp_path))
        cell = TaskCell("table4", "164.gzip", 1_000, (("period", 3200),))
        assert cache.load_cell(cell) is _MISS
        cache.store_cell(cell, (1.5, 2.5))
        assert cache.load_cell(cell) == (1.5, 2.5)
        path = cache.cell_path_for(cell)
        assert path.name == "table4.164.gzip.w1000.period-3200.cell.pkl"
        assert path.parent.name == "cells"

    def test_warm_engine_run_skips_recompute(self, tmp_path, monkeypatch):
        from repro.harness import parallel as parallel_module

        cell = TaskCell("fig5", "164.gzip", 1_000)
        options = EngineOptions(jobs=1, cache_dir=str(tmp_path))
        first = run_cells([cell], options)[0]
        calls = []
        monkeypatch.setitem(
            parallel_module._CELL_RUNNERS, "fig5",
            lambda c: calls.append(c) or {},
        )
        second = run_cells([cell], options)[0]
        assert not calls  # payload came from the cell cache, not the runner
        assert second.payload == first.payload

    def test_cached_trace_uses_disk_level(self, tmp_path):
        from repro.workloads import cached_trace, set_disk_trace_cache

        cache = TraceCache(str(tmp_path))
        set_disk_trace_cache(cache)
        try:
            clear_trace_cache()
            first = cached_trace(workload("mcf"), 1_000)
            clear_trace_cache()  # force the second lookup to disk
            second = cached_trace(workload("mcf"), 1_000)
        finally:
            set_disk_trace_cache(None)
            clear_trace_cache()
        assert cache.stats.stores == 1 and cache.stats.hits == 1
        assert len(first) == len(second) == 1_000


class TestEngine:
    CELL = TaskCell("fig5", "164.gzip", 1_500)

    def test_serial_and_pool_payloads_match(self, tmp_path):
        serial = run_cells(
            [self.CELL], EngineOptions(jobs=1, cache_dir=str(tmp_path))
        )
        pooled = run_cells(
            [self.CELL, TaskCell("fig6", "164.gzip", 1_500)],
            EngineOptions(jobs=2, cache_dir=str(tmp_path)),
        )
        assert serial[0].ok and pooled[0].ok and pooled[1].ok
        assert serial[0].payload == pooled[0].payload

    def test_outcomes_keep_submission_order(self):
        cells = [
            TaskCell("fig5", "164.gzip", 1_000),
            TaskCell("fig5", "181.mcf", 1_000),
        ]
        outcomes = run_cells(cells, EngineOptions(jobs=2))
        assert [o.cell.benchmark for o in outcomes] == [
            "164.gzip", "181.mcf",
        ]

    def test_failed_cell_degrades_with_retry(self):
        bad = TaskCell("no_such_section", "164.gzip", 1_000)
        outcome = run_cells([bad], EngineOptions(jobs=1, retries=1))[0]
        assert not outcome.ok
        assert "no_such_section" in outcome.error
        assert outcome.attempts == 2  # original + one retry

    def test_failed_cell_degrades_in_pool(self):
        cells = [
            TaskCell("no_such_section", "164.gzip", 1_000),
            TaskCell("fig5", "164.gzip", 1_000),
        ]
        outcomes = run_cells(cells, EngineOptions(jobs=2))
        assert not outcomes[0].ok and outcomes[0].attempts == 2
        assert outcomes[1].ok

    def test_progress_reports_each_cell(self):
        notes = []
        run_cells(
            [TaskCell("fig5", "164.gzip", 1_000)],
            EngineOptions(jobs=1),
            progress=notes.append,
        )
        assert any("fig5×164.gzip" in note and "ok" in note
                   for note in notes)


class TestReportDeterminism:
    WINDOWS = dict(timing_window=1_500, functional_window=1_500)

    def test_jobs_1_and_4_byte_identical(self, tmp_path):
        serial = generate_report(
            benchmarks=["gzip", "mcf"], jobs=1,
            cache_dir=str(tmp_path / "a"), **self.WINDOWS,
        )
        parallel = generate_report(
            benchmarks=["gzip", "mcf"], jobs=4,
            cache_dir=str(tmp_path / "b"), **self.WINDOWS,
        )
        assert serial == parallel

    def test_cache_off_is_also_identical(self):
        cached_off = generate_report(
            benchmarks=["gzip"], jobs=1, cache_dir=None, **self.WINDOWS,
        )
        pooled = generate_report(
            benchmarks=["gzip"], jobs=2, cache_dir=None, **self.WINDOWS,
        )
        assert cached_off == pooled

    def test_warm_cache_changes_nothing(self, tmp_path):
        cold = generate_report(
            benchmarks=["mcf"], jobs=1, cache_dir=str(tmp_path),
            **self.WINDOWS,
        )
        warm = generate_report(
            benchmarks=["mcf"], jobs=1, cache_dir=str(tmp_path),
            **self.WINDOWS,
        )
        assert cold == warm


class TestSubsetConsistency:
    """All report sections agree on the validated subset (Table 3 used
    to silently drop misspelled names while other sections crashed)."""

    def test_sections_share_the_subset(self, tmp_path):
        text = generate_report(
            timing_window=1_500, functional_window=1_500,
            benchmarks=["gzip", "mcf"], jobs=1,
            cache_dir=str(tmp_path),
        )
        per_bench = [
            segment for segment in text.split("## ")
            if segment.startswith((
                "Figure 1", "Figure 5", "Figure 6", "Figure 7",
                "Figure 8", "Figure 9", "Table 3", "Table 4",
            ))
        ]
        assert len(per_bench) == 8
        for segment in per_bench:
            assert "gzip" in segment, segment.splitlines()[0]
            assert "mcf" in segment, segment.splitlines()[0]
            assert "crafty" not in segment, segment.splitlines()[0]

    def test_table3_covers_every_input_of_the_subset(self, tmp_path):
        text = generate_report(
            timing_window=1_500, functional_window=1_500,
            benchmarks=["gzip"], jobs=1, cache_dir=str(tmp_path),
        )
        table3 = text.split("Table 3")[-1].split("##")[0]
        for row in ("gzip.graphic", "gzip.program", "gzip.log"):
            assert row in table3
        assert "mcf.inp" not in table3

    def test_unknown_name_rejected_before_any_work(self):
        with pytest.raises(UsageError, match="nope"):
            generate_report(
                timing_window=1_500, functional_window=1_500,
                benchmarks=["gzip", "nope"], jobs=1,
            )


class TestReportDegradation:
    def test_failed_cell_renders_annotated_gap(self, monkeypatch):
        from repro.harness import parallel as parallel_module

        def explode(cell):
            raise RuntimeError("injected fault")

        monkeypatch.setitem(
            parallel_module._CELL_RUNNERS, "fig5", explode
        )
        text = generate_report(
            timing_window=1_200, functional_window=1_200,
            benchmarks=["gzip"], jobs=1,
        )
        assert "degraded: cell fig5×164.gzip" in text
        assert "injected fault" in text
        # Other sections are intact.
        assert "Figure 6" in text and "Table 4" in text


class TestPredictionParallel:
    def test_rows_merge_in_suite_order(self):
        from repro.harness.prediction import traffic_prediction_report

        report = traffic_prediction_report(
            benchmarks=["164.gzip", "181.mcf"],
            max_instructions=2_000,
            jobs=2,
        )
        assert [row.name for row in report.rows] == [
            "gzip.graphic", "mcf.inp",
        ]


class TestCli:
    def test_unknown_benchmark_exits_2_one_line(self, capsys, tmp_path):
        code = main(["report", "--output", str(tmp_path / "r.md"),
                     "--benchmarks", "nope"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("repro: unknown benchmark: nope")
        assert captured.err.count("\n") == 1

    def test_bad_jobs_exits_2(self, capsys, tmp_path):
        code = main(["report", "--output", str(tmp_path / "r.md"),
                     "--jobs", "0"])
        assert code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_report_with_jobs_and_cache(self, capsys, tmp_path):
        output = tmp_path / "r.md"
        code = main([
            "report", "--output", str(output),
            "--timing-window", "1500", "--functional-window", "1500",
            "--benchmarks", "gzip", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        assert "Figure 5" in output.read_text()
        assert (tmp_path / "cache").exists()
        capsys.readouterr()

    def test_no_cache_skips_cache_dir(self, capsys, tmp_path):
        output = tmp_path / "r.md"
        code = main([
            "report", "--output", str(output),
            "--timing-window", "1200", "--functional-window", "1200",
            "--benchmarks", "mcf", "--jobs", "1", "--no-cache",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        assert not (tmp_path / "cache").exists()
        capsys.readouterr()

    def test_characterize_unknown_name_lists_choices(self, capsys):
        assert main(["characterize", "doom"]) == 2
        err = capsys.readouterr().err
        assert "unknown benchmark: doom" in err and "choose from" in err
