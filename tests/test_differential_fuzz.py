"""Property-based differential fuzzing: compiled vs interpreted MiniC.

Hypothesis generates random (but well-formed, terminating) MiniC
programs; the compiled path and the reference interpreter must print
identical output for each.  The same harness differentially checks
the dataflow optimizer: every fuzzed program and every registry
workload must produce bit-identical emulator results at ``-O0`` and
``-O1``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.emulator import run_program
from repro.emulator.machine import Machine
from repro.isa.registers import V0
from repro.lang import compile_program
from repro.lang.codegen import CodegenOptions
from repro.lang.interpreter import interpret
from repro.workloads import ALL_BENCHMARKS, workload

VARS = ("a", "b", "c")

_literal = st.integers(-30, 30).map(str)
_variable = st.sampled_from(VARS)
_safe_binop = st.sampled_from(["+", "-", "*", "&", "|", "^", "<", "=="])


def _expr(depth):
    if depth == 0:
        return st.one_of(_literal, _variable)
    sub = _expr(depth - 1)
    binary = st.tuples(sub, _safe_binop, sub).map(
        lambda t: f"({t[0]} {t[1]} {t[2]})"
    )
    shift = st.tuples(sub, st.sampled_from(["<<", ">>"]),
                      st.integers(0, 5)).map(
        lambda t: f"({t[0]} {t[1]} {t[2]})"
    )
    unary = st.tuples(st.sampled_from(["-", "~", "!"]), sub).map(
        lambda t: f"({t[0]}{t[1]})"
    )
    return st.one_of(sub, binary, shift, unary)


def _statement(depth):
    assign = st.tuples(_variable, _expr(2)).map(
        lambda t: f"{t[0]} = {t[1]};"
    )
    if depth == 0:
        return assign
    sub = st.lists(_statement(depth - 1), min_size=1, max_size=3).map(
        " ".join
    )
    if_statement = st.tuples(_expr(1), sub, sub).map(
        lambda t: f"if ({t[0]}) {{ {t[1]} }} else {{ {t[2]} }}"
    )
    # Bounded for loop: always terminates.
    loop = st.tuples(st.integers(1, 6), sub).map(
        lambda t:
        f"for (int i{depth} = 0; i{depth} < {t[0]}; i{depth} += 1) "
        f"{{ {t[1]} }}"
    )
    return st.one_of(assign, if_statement, loop)


_program = st.lists(_statement(2), min_size=1, max_size=6).map(
    lambda statements: (
        "int main() { int a = 1; int b = 2; int c = 3; "
        + " ".join(statements)
        + " print(a); print(b); print(c); return 0; }"
    )
)


class TestDifferentialFuzz:
    @settings(max_examples=60, deadline=None)
    @given(_program)
    def test_compiled_matches_interpreted(self, source):
        machine, _ = run_program(
            compile_program(source), max_instructions=2_000_000
        )
        assert machine.halted
        reference = interpret(source, max_steps=5_000_000)
        assert machine.output == reference.output

    @settings(max_examples=25, deadline=None)
    @given(_program)
    def test_codegen_options_do_not_change_output(self, source):
        from repro.lang import CodegenOptions

        outputs = []
        for options in (
            CodegenOptions(),
            CodegenOptions(promoted_locals=0, fp_frames=False),
        ):
            machine, _ = run_program(
                compile_program(source, options),
                max_instructions=2_000_000,
            )
            assert machine.halted
            outputs.append(machine.output)
        assert outputs[0] == outputs[1]

    @settings(max_examples=40, deadline=None)
    @given(_program)
    def test_optimizer_preserves_output(self, source):
        """-O1 must be observationally identical to -O0 on fuzzed code."""
        results = []
        for level in (0, 1):
            machine, _ = run_program(
                compile_program(source, CodegenOptions(opt_level=level)),
                max_instructions=2_000_000,
            )
            assert machine.halted
            results.append((machine.output, machine.registers[V0]))
        assert results[0] == results[1]


class TestOptimizerWorkloadDifferential:
    """Full-run -O0 vs -O1 equivalence on every registry workload.

    This is the tentpole's acceptance property: the optimizer may only
    remove/forward/coalesce stack traffic, never change what the
    program computes.  Outputs, return values and halt status must be
    bit-identical on complete runs of all 13 workloads.
    """

    @pytest.mark.parametrize("benchmark_name", ALL_BENCHMARKS)
    def test_workload_identical_across_levels(self, benchmark_name):
        work = workload(benchmark_name)
        observed = []
        for level in (0, 1):
            machine = Machine(work.program(CodegenOptions(opt_level=level)))
            machine.run(max_instructions=None)
            assert machine.halted, f"{work.full_name} at -O{level}"
            observed.append((machine.output, machine.registers[V0]))
        assert observed[0] == observed[1], work.full_name

    def test_optimizer_actually_fires_somewhere(self):
        # Guard against a silently disabled pipeline: across the suite
        # -O1 must shorten at least one program's static code.
        shrunk = 0
        for benchmark in ALL_BENCHMARKS:
            work = workload(benchmark)
            baseline = len(work.program(CodegenOptions(opt_level=0)))
            optimized = len(work.program(CodegenOptions(opt_level=1)))
            assert optimized <= baseline, work.full_name
            if optimized < baseline:
                shrunk += 1
        assert shrunk >= 8, f"optimizer shrank only {shrunk}/13 workloads"
