"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_suite(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "256.bzip2" in out and "175.vpr" in out
        assert "inputs = graphic, program" in out


class TestRun:
    def test_runs_workload(self, capsys):
        assert main(["run", "gzip", "--max-instructions", "5000"]) == 0
        out = capsys.readouterr().out
        assert "5,000 instructions" in out

    def test_input_selection(self, capsys):
        assert main(
            ["run", "bzip2", "--input", "program",
             "--max-instructions", "2000"]
        ) == 0
        assert "bzip2.program" in capsys.readouterr().out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "doom"])


class TestCharacterize:
    def test_single_workload(self, capsys):
        assert main(
            ["characterize", "gzip", "--max-instructions", "8000"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Figure 2" in out
        assert "Figure 3" in out


class TestSimulate:
    def test_baseline_only(self, capsys):
        assert main(
            ["simulate", "gzip", "--max-instructions", "6000"]
        ) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "IPC" in out

    def test_with_svf(self, capsys):
        assert main(
            ["simulate", "crafty", "--svf", "svf", "--ports", "2",
             "--max-instructions", "6000"]
        ) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "morphed" in out

    def test_stack_cache_mode(self, capsys):
        assert main(
            ["simulate", "gzip", "--svf", "stack_cache",
             "--max-instructions", "6000"]
        ) == 0
        assert "speedup" in capsys.readouterr().out

    def test_width_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["simulate", "gzip", "--width", "7"])


class TestCompile:
    SOURCE = "int main() { print(6 * 7); return 0; }"

    def test_emit_asm(self, tmp_path, capsys):
        source_file = tmp_path / "answer.mc"
        source_file.write_text(self.SOURCE)
        assert main(["compile", str(source_file)]) == 0
        out = capsys.readouterr().out
        assert ".text" in out and "bsr main" in out

    def test_emit_run(self, tmp_path, capsys):
        source_file = tmp_path / "answer.mc"
        source_file.write_text(self.SOURCE)
        assert main(["compile", str(source_file), "--emit", "run"]) == 0
        assert "[42]" in capsys.readouterr().out


class TestTraceReplay:
    def test_record_and_replay(self, tmp_path, capsys):
        trace_file = str(tmp_path / "gzip.svft")
        assert main(
            ["trace", "gzip", trace_file, "--max-instructions", "4000"]
        ) == 0
        assert "4,000 records" in capsys.readouterr().out
        assert main(["replay", trace_file, "--svf", "svf"]) == 0
        out = capsys.readouterr().out
        assert "4,000 instructions" in out
        assert "speedup" in out


class TestReport:
    def test_generates_full_report(self, tmp_path, capsys):
        output = str(tmp_path / "report.md")
        assert main(
            ["report", "--output", output,
             "--timing-window", "4000", "--functional-window", "4000",
             "--benchmarks", "gzip"]
        ) == 0
        text = open(output).read()
        for marker in ("Table 1", "Figure 5", "Figure 9", "Table 3",
                       "First-touch"):
            assert marker in text, marker
        assert "wrote" in capsys.readouterr().out


class TestExperiment:
    def test_static_tables(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out
        assert main(["experiment", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig12"])
