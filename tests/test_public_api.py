"""Public-API surface tests: every __all__ entry exists and imports."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.isa",
    "repro.lang",
    "repro.emulator",
    "repro.trace",
    "repro.uarch",
    "repro.core",
    "repro.workloads",
    "repro.harness",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_entries_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), package_name
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted_and_unique(package_name):
    package = importlib.import_module(package_name)
    entries = list(package.__all__)
    assert len(entries) == len(set(entries)), package_name


def test_top_level_quickstart_symbols():
    """The README quickstart must keep working."""
    import repro

    trace = repro.workload("gzip").trace(max_instructions=2_000)
    base = repro.table2_config(16)
    svf = base.with_svf(mode="svf", ports=2)
    baseline = repro.simulate(trace, base)
    run = repro.simulate(trace, svf)
    assert run.speedup_over(baseline) > 0

    assert repro.StackValueFile(1024).num_entries == 128
    assert repro.StackCache(1024).num_lines == 32
    assert repro.__version__


def test_docstrings_on_public_classes():
    """Every public class/function carries a docstring."""
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        for name in package.__all__:
            obj = getattr(package, name)
            if callable(obj) and not isinstance(obj, (int, tuple, dict)):
                assert obj.__doc__, f"{package_name}.{name} lacks a docstring"
