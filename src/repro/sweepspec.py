"""Declarative sweep suite descriptors (YAML/JSON).

A *suite descriptor* is one small file that names a design-space
sweep: which workloads to run, which machine knobs to vary
(:class:`repro.api.MachineSpec` fields), which compiler opt levels,
and how many repetitions — the muBench-style factors × levels ×
repetitions run table, with MicroSentinel-style base-config override
merging (``base.machine`` supplies the point every grid axis varies
around).

The descriptor grammar::

    suite: svf-size                  # run-table name (filename-safe)
    description: free-form text      # optional
    kind: timing                     # timing | traffic
    workloads: [crafty, gcc]         # registry names, short or full
    window: 60000                    # instructions per cell
    repetitions: 1                   # >= 1
    opt_levels: [0]                  # compiler levels (0/1)
    base:
      machine: {svf_mode: svf}      # MachineSpec field overrides
      compile: {opt_level: 0}       # default when opt_levels absent
    grid:                            # one product, or a list of them
      svf_capacity: [1024, 8192]

``grid`` is either one mapping (axis → levels, expanded as a cartesian
product) or a list of mappings whose products are concatenated and
deduplicated — the union form expresses sweeps that are not a single
product (e.g. banked configurations plus a true-dual-port reference).

Everything validates *up front*: :func:`load_suite` raises
:class:`repro.errors.UsageError` (CLI exit code 2) on unknown
workloads, unknown grid axes, zero repetitions, malformed levels — the
sweep never starts with a descriptor that would explode mid-run.
Expansion (:meth:`SweepSpec.expand`) is deterministic: the run table
row order depends only on the descriptor text, never on scheduling.

This module is a leaf: it imports :mod:`repro.api` only lazily (for
the :class:`MachineSpec` field vocabulary), so the harness can import
it while the facade is still loading.
"""

from __future__ import annotations

import itertools
import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import UsageError
from repro.workloads import validate_benchmarks

#: Descriptor keys the parser understands; anything else is an error.
_TOP_LEVEL_KEYS = (
    "suite", "description", "kind", "workloads", "window",
    "repetitions", "opt_levels", "base", "grid",
)

#: Sweep kinds: ``timing`` runs the out-of-order model (baseline +
#: variant) per cell; ``traffic`` walks the functional trace through a
#: stand-alone :class:`repro.core.svf.StackValueFile` and records
#: quad-word memory traffic.
SWEEP_KINDS = ("timing", "traffic")

#: Grid axes a ``traffic`` sweep may vary (the stand-alone SVF walk
#: has no pipeline, so machine-level knobs would silently do nothing).
_TRAFFIC_AXES = ("svf_capacity", "svf_granularity")

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


def _machine_fields() -> Dict[str, Any]:
    """MachineSpec field → default value (the grid axis vocabulary)."""
    # Imported lazily: repro.api imports the harness package, which
    # imports this module — a module-level import would be circular.
    import dataclasses

    from repro.api import MachineSpec

    return {
        spec_field.name: getattr(MachineSpec(), spec_field.name)
        for spec_field in dataclasses.fields(MachineSpec)
    }


@dataclass(frozen=True)
class SweepPoint:
    """One run-table row identity: workload × levels × repetition."""

    workload: str
    opt_level: int
    repetition: int
    #: the grid-axis assignments of this point, in axis order
    levels: Tuple[Tuple[str, Any], ...]
    #: every MachineSpec field, resolved (defaults ← base ← levels);
    #: the complete machine identity, used for cache keys and specs
    machine: Tuple[Tuple[str, Any], ...]

    def level(self, name: str, default: Any = None) -> Any:
        return dict(self.levels).get(name, default)

    def machine_spec(self):
        """Materialize the resolved :class:`repro.api.MachineSpec`."""
        from repro.api import MachineSpec

        return MachineSpec(**dict(self.machine))


@dataclass(frozen=True)
class SweepSpec:
    """A validated, expandable suite descriptor."""

    name: str
    kind: str
    workloads: Tuple[str, ...]
    window: int
    repetitions: int
    opt_levels: Tuple[int, ...]
    #: base-machine overrides (merged under every grid combination)
    base_machine: Tuple[Tuple[str, Any], ...]
    #: grid blocks; each block is ((axis, levels), ...) in declared
    #: order, and the run table is the concatenation of the blocks'
    #: cartesian products (duplicates dropped)
    grids: Tuple[Tuple[Tuple[str, Tuple[Any, ...]], ...], ...]
    description: str = ""
    #: descriptor path, for provenance only (never affects expansion)
    source: str = field(default="", compare=False)

    @property
    def factor_names(self) -> Tuple[str, ...]:
        """Grid axis names, in first-seen declaration order."""
        names: List[str] = []
        for grid in self.grids:
            for axis, _levels in grid:
                if axis not in names:
                    names.append(axis)
        return tuple(names)

    def combos(self) -> List[Tuple[Tuple[str, Any], ...]]:
        """Deduplicated grid combinations, in declaration order.

        Each combination is a tuple of (axis, value) pairs.  Two
        combinations from different grid blocks that resolve to the
        same full machine collapse into one (first occurrence wins).
        """
        defaults = _machine_fields()
        base = dict(defaults)
        base.update(dict(self.base_machine))
        seen = set()
        out: List[Tuple[Tuple[str, Any], ...]] = []
        for grid in self.grids:
            axes = [axis for axis, _levels in grid]
            level_lists = [levels for _axis, levels in grid]
            for values in itertools.product(*level_lists):
                combo = tuple(zip(axes, values))
                resolved = dict(base)
                resolved.update(dict(combo))
                key = tuple(sorted(resolved.items()))
                if key in seen:
                    continue
                seen.add(key)
                out.append(combo)
        if not out:
            # No grid at all: the suite is a single (base) point.
            out.append(())
        return out

    def resolved_machine(
        self, combo: Tuple[Tuple[str, Any], ...]
    ) -> Tuple[Tuple[str, Any], ...]:
        """Full MachineSpec fields for one combo (defaults←base←combo),
        sorted by field name so the tuple is a stable identity."""
        resolved = _machine_fields()
        resolved.update(dict(self.base_machine))
        resolved.update(dict(combo))
        return tuple(sorted(resolved.items()))

    def expand(self) -> List[SweepPoint]:
        """The run table, in canonical row order.

        Rows are ordered workload-major (descriptor order), then opt
        level, then grid combination (declaration order), then
        repetition — a pure function of the descriptor.
        """
        points = []
        combos = self.combos()
        for workload in self.workloads:
            for opt_level in self.opt_levels:
                for combo in combos:
                    for rep in range(self.repetitions):
                        points.append(SweepPoint(
                            workload=workload,
                            opt_level=opt_level,
                            repetition=rep,
                            levels=combo,
                            machine=self.resolved_machine(combo),
                        ))
        return points

    def total_cells(self) -> int:
        """Row count of the expanded run table."""
        return (
            len(self.workloads) * len(self.opt_levels)
            * len(self.combos()) * self.repetitions
        )


# ---------------------------------------------------------------------------
# Parsing and validation
# ---------------------------------------------------------------------------


def _error(name: str, message: str) -> UsageError:
    return UsageError(f"suite {name!r}: {message}")


def _require_mapping(name: str, value: Any, what: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise _error(name, f"{what} must be a mapping, not "
                           f"{type(value).__name__}")
    return value


def _scalar(value: Any) -> bool:
    return isinstance(value, (str, int, float, bool)) or value is None


def _parse_levels(name: str, axis: str, levels: Any) -> Tuple[Any, ...]:
    if not isinstance(levels, (list, tuple)) or isinstance(levels, str):
        raise _error(name, f"grid axis {axis!r} needs a list of levels")
    if not levels:
        raise _error(name, f"grid axis {axis!r} has no levels")
    for level in levels:
        if not _scalar(level):
            raise _error(
                name,
                f"grid axis {axis!r} has a non-scalar level {level!r}",
            )
    if len(set(map(repr, levels))) != len(levels):
        raise _error(name, f"grid axis {axis!r} repeats a level")
    return tuple(levels)


def _parse_grid_block(
    name: str, kind: str, block: Any, defaults: Mapping[str, Any]
) -> Tuple[Tuple[str, Tuple[Any, ...]], ...]:
    block = _require_mapping(name, block, "each grid block")
    if not block:
        raise _error(name, "a grid block is empty")
    axes = []
    for axis, levels in block.items():
        if axis == "opt_level":
            raise _error(
                name,
                "opt_level is swept via the top-level opt_levels list, "
                "not a grid axis",
            )
        if axis not in defaults:
            known = ", ".join(sorted(defaults))
            raise _error(
                name,
                f"unknown grid axis {axis!r} (MachineSpec fields: {known})",
            )
        if kind == "traffic" and axis not in _TRAFFIC_AXES:
            raise _error(
                name,
                f"grid axis {axis!r} has no effect on a traffic sweep "
                f"(allowed: {', '.join(_TRAFFIC_AXES)})",
            )
        axes.append((axis, _parse_levels(name, axis, levels)))
    return tuple(axes)


def _parse_base(
    name: str, base: Any, defaults: Mapping[str, Any]
) -> Tuple[Tuple[Tuple[str, Any], ...], Optional[int]]:
    """Returns (machine overrides, compile opt_level or None)."""
    if base is None:
        return (), None
    base = _require_mapping(name, base, "base")
    unknown = set(base) - {"machine", "compile"}
    if unknown:
        raise _error(
            name,
            f"unknown base sections: {', '.join(sorted(map(str, unknown)))} "
            "(have machine, compile)",
        )
    machine = _require_mapping(
        name, base.get("machine", {}), "base.machine"
    )
    for machine_field in machine:
        if machine_field not in defaults:
            known = ", ".join(sorted(defaults))
            raise _error(
                name,
                f"unknown base.machine field {machine_field!r} "
                f"(MachineSpec fields: {known})",
            )
    compile_block = _require_mapping(
        name, base.get("compile", {}), "base.compile"
    )
    unknown = set(compile_block) - {"opt_level"}
    if unknown:
        raise _error(
            name,
            "unknown base.compile fields: "
            f"{', '.join(sorted(map(str, unknown)))} (have opt_level)",
        )
    opt_level = compile_block.get("opt_level")
    return tuple(sorted(machine.items())), opt_level


def _parse_opt_levels(
    name: str, raw: Any, base_opt: Optional[int]
) -> Tuple[int, ...]:
    if raw is None:
        return (base_opt if base_opt is not None else 0,)
    if not isinstance(raw, (list, tuple)) or isinstance(raw, str):
        raise _error(name, "opt_levels must be a list of 0/1")
    if not raw:
        raise _error(name, "opt_levels is empty")
    levels = []
    for level in raw:
        if not isinstance(level, int) or isinstance(level, bool) \
                or level not in (0, 1):
            raise _error(name, f"opt_levels entries must be 0 or 1, "
                               f"not {level!r}")
        if level in levels:
            raise _error(name, f"opt_levels repeats {level}")
        levels.append(level)
    return tuple(levels)


def parse_suite(data: Any, source: str = "<memory>") -> SweepSpec:
    """Validate one already-decoded descriptor into a :class:`SweepSpec`.

    Raises :class:`UsageError` on every malformation, collecting the
    complete picture where practical (unknown workloads are reported
    all at once by the registry resolver).
    """
    short = os.path.basename(source)
    data = _require_mapping(short, data, "the descriptor")
    unknown = set(data) - set(_TOP_LEVEL_KEYS)
    if unknown:
        raise _error(
            short,
            f"unknown keys: {', '.join(sorted(map(str, unknown)))} "
            f"(have {', '.join(_TOP_LEVEL_KEYS)})",
        )

    name = data.get("suite")
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise _error(
            short,
            "needs a filename-safe 'suite' name "
            "(letters, digits, '_', '-', '.')",
        )

    kind = data.get("kind", "timing")
    if kind not in SWEEP_KINDS:
        raise _error(
            name, f"unknown kind {kind!r} (have {', '.join(SWEEP_KINDS)})"
        )

    raw_workloads = data.get("workloads")
    if not isinstance(raw_workloads, (list, tuple)) or not raw_workloads:
        raise _error(name, "needs a non-empty 'workloads' list")
    if not all(isinstance(entry, str) for entry in raw_workloads):
        raise _error(name, "workloads entries must be strings")
    workloads = tuple(validate_benchmarks(raw_workloads))

    window = data.get("window", 60_000)
    if not isinstance(window, int) or isinstance(window, bool) \
            or window < 1:
        raise _error(name, f"window must be a positive integer, "
                           f"not {window!r}")

    repetitions = data.get("repetitions", 1)
    if not isinstance(repetitions, int) or isinstance(repetitions, bool) \
            or repetitions < 1:
        raise _error(
            name,
            f"repetitions must be a positive integer, not {repetitions!r}",
        )

    defaults = _machine_fields()
    base_machine, base_opt = _parse_base(name, data.get("base"), defaults)
    opt_levels = _parse_opt_levels(name, data.get("opt_levels"), base_opt)

    raw_grid = data.get("grid")
    if raw_grid is None:
        grids: Tuple = ()
    elif isinstance(raw_grid, Mapping):
        grids = (_parse_grid_block(name, kind, raw_grid, defaults),)
    elif isinstance(raw_grid, (list, tuple)):
        if not raw_grid:
            raise _error(name, "grid list is empty")
        grids = tuple(
            _parse_grid_block(name, kind, block, defaults)
            for block in raw_grid
        )
    else:
        raise _error(name, "grid must be a mapping or a list of mappings")

    description = data.get("description", "")
    if not isinstance(description, str):
        raise _error(name, "description must be a string")

    spec = SweepSpec(
        name=name,
        kind=kind,
        workloads=workloads,
        window=window,
        repetitions=repetitions,
        opt_levels=opt_levels,
        base_machine=base_machine,
        grids=grids,
        description=description,
        source=source,
    )
    _validate_machines(spec)
    return spec


def _validate_machines(spec: SweepSpec) -> None:
    """Materialize every grid point eagerly so a bad field value
    (e.g. width 12, svf_mode 'bogus') fails before any cell runs."""
    for combo in spec.combos():
        resolved = dict(spec.resolved_machine(combo))
        try:
            from repro.api import MachineSpec

            MachineSpec(**resolved).config()
        except (TypeError, ValueError) as exc:
            where = (
                ", ".join(f"{axis}={value}" for axis, value in combo)
                or "the base machine"
            )
            raise _error(spec.name, f"invalid machine at {where}: {exc}")


def load_suite(path: str) -> SweepSpec:
    """Read, decode and validate a suite descriptor file.

    ``.json`` decodes with the standard library; anything else is
    treated as YAML (requires PyYAML, with a usage error — not an
    ImportError traceback — when it is missing).
    """
    try:
        with open(path) as handle:
            text = handle.read()
    except FileNotFoundError:
        raise UsageError(f"no such suite descriptor: {path}")
    except IsADirectoryError:
        raise UsageError(f"suite descriptor is a directory: {path}")
    if path.endswith(".json"):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise UsageError(f"suite {path}: invalid JSON ({exc})")
    else:
        try:
            import yaml
        except ImportError:
            raise UsageError(
                "PyYAML is not installed; use a .json suite descriptor "
                "or install pyyaml"
            )
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise UsageError(f"suite {path}: invalid YAML ({exc})")
    return parse_suite(data, source=path)


__all__ = [
    "SWEEP_KINDS",
    "SweepPoint",
    "SweepSpec",
    "load_suite",
    "parse_suite",
]
