"""Extension — x86-style partial-word references (paper Section 7).

"Our next research project will be to extend this analysis to the x86
architecture with its increased reliance on the stack region and its
use of partial word references."  The x86mix extension workload packs
two 32-bit fields per quad-word in a stack buffer and manipulates them
with ``ldl``/``stl``.  Measured here:

* a 32-bit store to an invalid 64-bit granule read-merges a word, so
  the SVF *pays* fill traffic where the full-word suite pays none —
  on this mix the SVF's traffic advantage over the stack cache
  disappears (line fills amortize over four words);
* the performance picture still favours the SVF: morphing and port
  offload don't depend on the fill asymmetry.
"""

from repro.core.traffic import simulate_traffic
from repro.harness import percent, render_table
from repro.uarch.config import table2_config
from repro.uarch.pipeline import simulate
from repro.workloads import cached_trace, workload


def run_experiment(window):
    x86 = cached_trace(workload("x86mix"), window)
    reference = cached_trace(workload("186.crafty"), window)
    rows = []
    for label, trace in (("x86mix (partial-word)", x86),
                         ("crafty (full-word)", reference)):
        traffic = simulate_traffic(trace, capacity_bytes=8192)
        base = table2_config(16)
        baseline = simulate(trace, base)
        svf = simulate(trace, base.with_svf(mode="svf", ports=2))
        rows.append(
            (
                label,
                traffic.svf_qw_in,
                traffic.svf_qw_out,
                traffic.stack_cache_qw_in,
                traffic.stack_cache_qw_out,
                percent(svf.speedup_over(baseline)),
            )
        )
    return rows


def test_partial_word_extension(benchmark, emit, timing_window):
    rows = benchmark.pedantic(
        lambda: run_experiment(timing_window), rounds=1, iterations=1
    )
    emit(
        "extension_partial_word",
        render_table(
            ["Workload", "SVF in", "SVF out", "$ in", "$ out",
             "SVF (2+2) speedup"],
            rows,
            title="Extension: partial-word (x86-style) stack references",
        ),
    )
    x86_row, crafty_row = rows
    # Partial words force SVF read-merge fills...
    assert x86_row[1] > 0
    # ...whereas the full-word workload has (near-)zero SVF in-traffic.
    assert crafty_row[1] <= x86_row[1]
    # The fill asymmetry flips the traffic comparison on this mix.
    assert x86_row[1] >= x86_row[3]
