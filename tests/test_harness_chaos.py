"""Chaos-hardening regression tests: the failure-semantics contract.

Each class pins one bug the chaos harness exposed in the engine/cache
stack, plus the harness's own determinism guarantees:

* a hung cell can no longer hold a pool slot hostage (the worker is
  killed at its deadline and the slot recycled);
* ``task_timeout`` is a per-attempt deadline measured from submission,
  and ``elapsed`` reports real wall time, never a fabricated constant;
* a SIGKILLed worker degrades one attempt, not the whole run, and no
  worker process outlives ``run_cells``;
* cell-cache keys escape their structural separators, so two distinct
  cells can never serve each other's payloads;
* a transient read error never unlinks a valid cache entry, while
  genuine corruption (including a single flipped bit in a checksummed
  trace) always drops the entry and never serves it;
* two reports racing on one cache directory stay byte-identical.
"""

from __future__ import annotations

import errno
import os
import pickle
import threading
import time

import pytest

from repro.harness import chaos
from repro.harness import parallel as parallel_module
from repro.harness.chaos import (
    ChaosFault,
    ChaosKill,
    FaultPlan,
    FaultRule,
    cell_key,
    check_output_invariant,
    inject_cache_faults,
)
from repro.harness.parallel import (
    EngineOptions,
    TaskCell,
    TraceCache,
    last_engine_report,
    run_cells,
)
from repro.harness.runall import generate_report
from repro.workloads import workload


FAST = TaskCell("fig5", "164.gzip", 1_000)
OTHER = TaskCell("fig5", "181.mcf", 1_000)


def _pid_gone(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except OSError:
        return False
    return False


def _assert_no_orphans():
    report = last_engine_report()
    assert report is not None
    for pid in report.worker_pids:
        assert _pid_gone(pid), f"worker {pid} outlived the run"


# ---------------------------------------------------------------------------
# Fault plans: determinism, the claim ledger, validation
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_rules_validate(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultRule("explode")
        with pytest.raises(ValueError, match="times"):
            FaultRule("kill", times=0)
        with pytest.raises(ValueError, match="probability"):
            FaultRule("kill", probability=1.5)

    def test_plan_is_picklable(self):
        plan = FaultPlan(seed=3, rules=(FaultRule("kill", match="x"),))
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_cell_key_bakes_in_window_and_params(self):
        a = TaskCell("fig5", "164.gzip", 1_000, (("config", "svf_2p"),))
        b = TaskCell("fig5", "164.gzip", 2_000, (("config", "svf_2p"),))
        c = TaskCell("fig5", "164.gzip", 1_000, (("config", "svf_1p"),))
        assert len({cell_key(a), cell_key(b), cell_key(c)}) == 3

    def test_disk_ledger_claims_exactly_once(self, tmp_path):
        plan = FaultPlan(seed=0, ledger_dir=str(tmp_path))
        assert chaos._claim(plan, 0, "cell-a", times=1)
        assert not chaos._claim(plan, 0, "cell-a", times=1)
        # A different (rule, cell) pair has its own budget.
        assert chaos._claim(plan, 1, "cell-a", times=1)
        assert chaos._claim(plan, 0, "cell-b", times=1)

    def test_disk_ledger_survives_reinstantiation(self, tmp_path):
        # A SIGKILLed worker's claim must persist: the retry (in a new
        # process, here simulated by a fresh plan object) runs clean.
        first = FaultPlan(seed=0, ledger_dir=str(tmp_path))
        assert chaos._claim(first, 0, "cell-a", times=1)
        second = FaultPlan(seed=0, ledger_dir=str(tmp_path))
        assert not chaos._claim(second, 0, "cell-a", times=1)

    def test_memory_ledger_fallback(self):
        chaos._MEMORY_LEDGER.clear()
        plan = FaultPlan(seed=0)
        assert chaos._claim(plan, 0, "cell-a", times=2)
        assert chaos._claim(plan, 0, "cell-a", times=2)
        assert not chaos._claim(plan, 0, "cell-a", times=2)

    def test_selection_is_scheduling_independent(self):
        plan = FaultPlan(seed=7)
        rule = FaultRule("fail", match="*", probability=0.5)
        picks = [
            chaos._selected(plan, 0, rule, f"cell-{i}") for i in range(64)
        ]
        assert picks == [
            chaos._selected(plan, 0, rule, f"cell-{i}") for i in range(64)
        ]
        assert any(picks) and not all(picks)

    def test_fail_fault_raises(self):
        chaos._MEMORY_LEDGER.clear()
        previous = chaos.install(FaultPlan(seed=0, rules=(
            FaultRule("fail", match=cell_key(FAST)),
        )))
        try:
            with pytest.raises(ChaosFault):
                chaos.on_cell_start(FAST)
            # times=1: the retry runs clean.
            chaos.on_cell_start(FAST)
        finally:
            chaos.install(previous)

    def test_kill_fault_simulated_inline(self):
        chaos._MEMORY_LEDGER.clear()
        previous = chaos.install(FaultPlan(seed=0, rules=(
            FaultRule("kill", match=cell_key(FAST)),
        )), simulate_kill=True)
        try:
            with pytest.raises(ChaosKill):
                chaos.on_cell_start(FAST)
        finally:
            chaos.install(previous)


# ---------------------------------------------------------------------------
# Cell-key escaping: the cache-collision regression
# ---------------------------------------------------------------------------


class TestCellKeyCollision:
    def test_separator_values_no_longer_collide(self, tmp_path):
        # Under the old scheme both cells named the file
        # "s.b.w1.p-1.q-2.cell.pkl" and served each other's payloads.
        cache = TraceCache(str(tmp_path))
        sneaky = TaskCell("s", "b", 1, (("p", "1.q-2"),))
        honest = TaskCell("s", "b", 1, (("p", "1"), ("q", "2")))
        assert cache.cell_path_for(sneaky) != cache.cell_path_for(honest)
        cache.store_cell(sneaky, "sneaky-payload")
        assert cache.load_cell(honest) is parallel_module._MISS

    def test_plain_values_keep_their_historical_names(self, tmp_path):
        # Escaping must not orphan warm caches for ordinary keys.
        cache = TraceCache(str(tmp_path))
        cell = TaskCell("table4", "164.gzip", 1_000, (("period", 3200),))
        path = cache.cell_path_for(cell)
        assert path.name == "table4.164.gzip.w1000.period-3200.cell.pkl"

    def test_escape_round_trips_specials(self):
        escape = parallel_module._escape_key_part
        assert escape("a.b-c%d") == "a%2Eb%2Dc%25d"
        assert escape("plain_value") == "plain_value"
        # Escaped forms of distinct values stay distinct.
        assert escape("a.b") != escape("a-b") != escape("a%2Eb")


# ---------------------------------------------------------------------------
# Corrupt vs transient reads: the over-eager-unlink regression
# ---------------------------------------------------------------------------


class TestCorruptVsTransient:
    CELL = TaskCell("s", "164.gzip", 500, (("k", "v"),))

    def test_corrupt_cell_entry_dropped_and_counted(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        cache.store_cell(self.CELL, {"x": 1})
        cache.cell_path_for(self.CELL).write_bytes(b"garbage")
        assert cache.load_cell(self.CELL) is parallel_module._MISS
        assert not cache.cell_path_for(self.CELL).exists()
        assert cache.stats.corrupt_dropped == 1
        assert cache.stats.transient_errors == 0

    def test_transient_error_preserves_the_entry(self, tmp_path,
                                                 monkeypatch):
        cache = TraceCache(str(tmp_path))
        cache.store_cell(self.CELL, {"x": 1})
        real_read = parallel_module.Path.read_bytes
        failures = iter([OSError(errno.EINTR, "interrupted")])

        def flaky(path):
            for exc in failures:
                raise exc
            return real_read(path)

        monkeypatch.setattr(parallel_module.Path, "read_bytes", flaky)
        assert cache.load_cell(self.CELL) is parallel_module._MISS
        assert cache.cell_path_for(self.CELL).exists()
        assert cache.stats.transient_errors == 1
        assert cache.stats.corrupt_dropped == 0
        # The very next read serves the still-valid entry.
        assert cache.load_cell(self.CELL) == {"x": 1}

    def test_transient_trace_error_preserves_the_entry(self, tmp_path,
                                                       monkeypatch):
        key = ("164.gzip", "graphic", 0, 500)
        cache = TraceCache(str(tmp_path))
        cache.store(key, workload("gzip").trace(max_instructions=500))
        real_load = parallel_module.load_trace
        failures = iter([OSError(errno.EINTR, "interrupted")])

        def flaky(path):
            for exc in failures:
                raise exc
            return real_load(path)

        monkeypatch.setattr(parallel_module, "load_trace", flaky)
        assert cache.load(key) is None
        assert cache.path_for(key).exists()
        assert cache.stats.transient_errors == 1
        assert len(cache.load(key)) == 500


class TestTraceChecksum:
    KEY = ("164.gzip", "graphic", 0, 500)

    def test_bitflip_in_trace_data_is_detected(self, tmp_path):
        from repro.trace.serialization import (
            TraceFormatError, load_trace, save_trace,
        )

        trace = workload("gzip").trace(max_instructions=500)
        path = tmp_path / "t.trace.bin"
        save_trace(trace, str(path))
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x10  # deep inside a data column
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="checksum"):
            load_trace(str(path))

    def test_cache_drops_bitflipped_trace(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        cache.store(self.KEY, workload("gzip").trace(max_instructions=500))
        path = cache.path_for(self.KEY)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x10
        path.write_bytes(bytes(data))
        assert cache.load(self.KEY) is None
        assert not path.exists()
        assert cache.stats.corrupt_dropped == 1


# ---------------------------------------------------------------------------
# Pool liveness and honest accounting under injected faults
# ---------------------------------------------------------------------------


class TestPoolUnderFaults:
    def test_hung_cell_does_not_hold_the_pool_hostage(self, tmp_path):
        # Old behaviour: the timed-out future was never cancelled, so
        # a 30s hang meant a 30s run minimum while the worker kept its
        # slot.  Now the worker is killed at its 2s deadline.
        plan = FaultPlan(seed=0, rules=(
            FaultRule("hang", match=cell_key(FAST), seconds=30.0),
        ), ledger_dir=str(tmp_path / "ledger"))
        started = time.monotonic()
        outcomes = run_cells(
            [FAST, OTHER],
            EngineOptions(jobs=2, task_timeout=2.0, retries=0,
                          fault_plan=plan,
                          cache_dir=str(tmp_path / "cache")),
        )
        wall = time.monotonic() - started
        assert wall < 20.0, f"pool stayed hostage for {wall:.1f}s"
        assert not outcomes[0].ok
        assert "timed out" in outcomes[0].error
        assert outcomes[1].ok  # the other slot kept working
        report = last_engine_report()
        assert report.timeouts == 1 and report.recycled >= 1
        _assert_no_orphans()

    def test_timeout_elapsed_is_real_wall_time(self, tmp_path):
        # Old behaviour reported elapsed == task_timeout verbatim even
        # when the collector had waited on earlier futures first.
        plan = FaultPlan(seed=0, rules=(
            FaultRule("hang", match=cell_key(FAST), seconds=30.0),
        ), ledger_dir=str(tmp_path / "ledger"))
        outcomes = run_cells(
            [FAST, OTHER],
            EngineOptions(jobs=2, task_timeout=2.0, retries=0,
                          fault_plan=plan,
                          cache_dir=str(tmp_path / "cache")),
        )
        hung = outcomes[0]
        assert hung.elapsed >= 2.0  # at least the deadline it blew
        assert hung.elapsed < 15.0  # and nowhere near the 30s hang
        # The co-scheduled fast cell's accounting is unaffected.
        assert outcomes[1].elapsed < 2.0

    def test_killed_worker_degrades_one_attempt_not_the_run(
            self, tmp_path):
        plan = FaultPlan(seed=0, rules=(
            FaultRule("kill", match=cell_key(FAST)),
        ), ledger_dir=str(tmp_path / "ledger"))
        outcomes = run_cells(
            [FAST, OTHER],
            EngineOptions(jobs=2, retries=1, fault_plan=plan,
                          cache_dir=str(tmp_path / "cache")),
        )
        assert outcomes[0].ok  # retried on a fresh worker
        assert outcomes[0].attempts == 2
        assert outcomes[1].ok and outcomes[1].attempts == 1
        report = last_engine_report()
        assert report.broken >= 1 and report.recycled >= 1
        _assert_no_orphans()

    def test_inline_run_simulates_the_kill(self, tmp_path):
        plan = FaultPlan(seed=0, rules=(
            FaultRule("kill", match=cell_key(FAST)),
        ), ledger_dir=str(tmp_path / "ledger"))
        outcome = run_cells(
            [FAST],
            EngineOptions(jobs=1, retries=1, fault_plan=plan),
        )[0]
        assert outcome.ok and outcome.attempts == 2
        assert chaos.active_plan() is None  # plan restored after the run

    def test_healthy_pool_leaves_no_orphans(self, tmp_path):
        outcomes = run_cells(
            [FAST, OTHER],
            EngineOptions(jobs=2, cache_dir=str(tmp_path)),
        )
        assert all(outcome.ok for outcome in outcomes)
        report = last_engine_report()
        assert report.recycled == 0 and len(report.worker_pids) >= 1
        _assert_no_orphans()


# ---------------------------------------------------------------------------
# Whole-report invariants: annotation, corruption, concurrency
# ---------------------------------------------------------------------------


WINDOWS = dict(timing_window=1_500, functional_window=1_500)


class TestReportUnderFaults:
    def test_exhausted_retries_render_an_annotated_gap(self, tmp_path):
        # times=2 outlives the single retry, so the cell must degrade
        # and the gap-annotation invariant must hold.
        victim = TaskCell("table3", "164.gzip", 1_500)
        plan = FaultPlan(seed=0, rules=(
            FaultRule("fail", match=cell_key(victim), times=2),
        ), ledger_dir=str(tmp_path / "ledger"))
        text = generate_report(
            benchmarks=["gzip"], jobs=2,
            cache_dir=str(tmp_path / "cache"), fault_plan=plan,
            **WINDOWS,
        )
        assert "(degraded: cell table3×164.gzip failed" in text

    def test_corrupted_cache_is_never_served(self, tmp_path):
        from repro.profiling import PhaseProfiler

        cache_dir = str(tmp_path / "cache")
        baseline = generate_report(
            benchmarks=["gzip"], jobs=1, cache_dir=cache_dir, **WINDOWS,
        )
        corrupted = inject_cache_faults(cache_dir, FaultPlan(seed=1, rules=(
            FaultRule("bitflip", match="*.pkl", times=2),
            FaultRule("truncate", match="*.trace.bin", times=1),
        )))
        assert corrupted
        profiler = PhaseProfiler()
        warm = generate_report(
            benchmarks=["gzip"], jobs=1, cache_dir=cache_dir,
            profiler=profiler, **WINDOWS,
        )
        assert warm == baseline
        assert profiler.counters.get("cache_corrupt_dropped", 0) > 0

    def test_concurrent_reports_on_one_cache_dir(self, tmp_path):
        cache_dir = str(tmp_path / "shared")
        baseline = generate_report(
            benchmarks=["gzip"], jobs=1,
            cache_dir=str(tmp_path / "clean"), **WINDOWS,
        )
        texts = [None, None]

        def racer(slot):
            texts[slot] = generate_report(
                benchmarks=["gzip"], jobs=2, cache_dir=cache_dir,
                **WINDOWS,
            )

        threads = [
            threading.Thread(target=racer, args=(slot,))
            for slot in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert texts[0] == baseline and texts[1] == baseline


class TestChaosHarness:
    def test_inject_cache_faults_is_deterministic(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        for index in range(4):
            cache.store_cell(
                TaskCell("s", f"b{index}", 1, ()), {"i": index}
            )
        plan = FaultPlan(seed=5, rules=(
            FaultRule("bitflip", match="*.pkl", times=2),
        ))
        first = inject_cache_faults(str(tmp_path), plan)
        assert len(first) == 2
        # Re-applying the same plan picks the same (sorted) victims.
        assert inject_cache_faults(str(tmp_path), plan) == first

    def test_output_invariant_classifies_divergence(self):
        ok = check_output_invariant("same", "same", "t")
        assert ok.ok
        annotated = check_output_invariant(
            "a", "a\n(degraded: cell x failed after 2 attempts — boom)",
            "t",
        )
        assert annotated.ok
        silent = check_output_invariant("a", "b", "t")
        assert not silent.ok

    def test_run_chaos_smoke(self, tmp_path):
        # End-to-end, minus the slow rounds: no hangs, no concurrency.
        result = chaos.run_chaos(chaos.ChaosOptions(
            benchmarks=("gzip",), jobs=2, seed=2,
            kills=1, hangs=0, fails=1, corrupt=1,
            task_timeout=30.0, concurrent=False,
            timing_window=1_500, functional_window=1_500,
            work_dir=str(tmp_path),
        ))
        assert result.ok, result.render()
        assert result.faults_planned == 2
        names = [check.name for check in result.checks]
        assert "report-identical-or-annotated" in names
        assert "no-orphan-workers" in names


class TestSweepGapRow:
    def test_row_must_pick_metrics_or_error(self):
        from repro.harness.sweep import SweepRow

        with pytest.raises(ValueError, match="exactly one"):
            SweepRow(workload="w", opt_level=0, repetition=0, levels=())
        with pytest.raises(ValueError, match="exactly one"):
            SweepRow(
                workload="w", opt_level=0, repetition=0, levels=(),
                metrics={"speedup": 1.0}, error="boom",
            )
        row = SweepRow(
            workload="w", opt_level=0, repetition=0, levels=(),
            error="boom",
        )
        assert not row.ok
