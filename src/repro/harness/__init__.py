"""Experiment harness: one driver per paper table/figure."""

from repro.harness.experiments import (
    CharacterizationResult,
    DEFAULT_FUNCTIONAL_WINDOW,
    DEFAULT_TIMING_WINDOW,
    Fig5Result,
    Fig6Result,
    Fig7Result,
    Fig9Result,
    Table3Result,
    Table4Result,
    characterize,
    fig5_ideal_morphing,
    fig6_progressive,
    fig7_svf_vs_stack_cache,
    fig9_svf_speedup,
    table1_workloads,
    table2_models,
    table3_memory_traffic,
    table4_context_switch,
)
from repro.harness.report import percent, render_series, render_table
from repro.harness.runall import generate_report

__all__ = [
    "CharacterizationResult",
    "DEFAULT_FUNCTIONAL_WINDOW",
    "DEFAULT_TIMING_WINDOW",
    "Fig5Result",
    "Fig6Result",
    "Fig7Result",
    "Fig9Result",
    "Table3Result",
    "Table4Result",
    "characterize",
    "fig5_ideal_morphing",
    "fig6_progressive",
    "fig7_svf_vs_stack_cache",
    "fig9_svf_speedup",
    "generate_report",
    "percent",
    "render_series",
    "render_table",
    "table1_workloads",
    "table2_models",
    "table3_memory_traffic",
    "table4_context_switch",
]
