"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import List, Optional

from repro.lang import ast_nodes as ast
from repro.lang.lexer import Token, tokenize

_ASSIGN_OPS = {
    "=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^=",
}
_COMPOUND_BASE = {
    "+=": "+",
    "-=": "-",
    "*=": "*",
    "/=": "/",
    "%=": "%",
    "<<=": "<<",
    ">>=": ">>",
    "&=": "&",
    "|=": "|",
    "^=": "^",
}

# Binary operator precedence levels, loosest first.
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class ParseError(ValueError):
    """Raised on any syntax error, with source position."""

    def __init__(self, message: str, token: Token):
        super().__init__(
            f"line {token.line}, col {token.column}: {message} "
            f"(near {token.text!r})"
        )
        self.token = token


class Parser:
    """Parse a token stream into a :class:`~ast_nodes.TranslationUnit`."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._position = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != "eof":
            self._position += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        return token.kind == kind and (text is None or token.text == text)

    def _match(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if self._check(kind, text):
            return self._advance()
        expectation = text or kind
        raise ParseError(f"expected {expectation!r}", self._peek())

    # -- top level ---------------------------------------------------------

    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while not self._check("eof"):
            self._expect("keyword", "int")
            is_pointer = self._match("op", "*") is not None
            name = self._expect("ident").text
            if self._check("op", "("):
                unit.functions.append(self._function_rest(name))
            else:
                if is_pointer:
                    raise ParseError(
                        "global pointers are not supported", self._peek()
                    )
                unit.globals.append(self._global_rest(name))
        return unit

    def _global_rest(self, name: str) -> ast.GlobalVar:
        line = self._peek().line
        array_size = None
        initializer: List[int] = []
        if self._match("op", "["):
            array_size = self._int_literal_value()
            self._expect("op", "]")
        if self._match("op", "="):
            if self._match("op", "{"):
                initializer.append(self._int_literal_value())
                while self._match("op", ","):
                    initializer.append(self._int_literal_value())
                self._expect("op", "}")
            else:
                initializer.append(self._int_literal_value())
        self._expect("op", ";")
        return ast.GlobalVar(
            name=name, array_size=array_size, initializer=initializer, line=line
        )

    def _int_literal_value(self) -> int:
        negative = self._match("op", "-") is not None
        token = self._expect("int_lit")
        value = int(token.text, 0)
        return -value if negative else value

    def _function_rest(self, name: str) -> ast.Function:
        line = self._peek().line
        self._expect("op", "(")
        params: List[ast.Param] = []
        if not self._check("op", ")"):
            while True:
                self._expect("keyword", "int")
                is_pointer = self._match("op", "*") is not None
                param_name = self._expect("ident").text
                params.append(
                    ast.Param(name=param_name, is_pointer=is_pointer, line=line)
                )
                if not self._match("op", ","):
                    break
        self._expect("op", ")")
        body = self._block()
        return ast.Function(name=name, params=params, body=body, line=line)

    # -- statements ---------------------------------------------------------

    def _block(self) -> List[ast.Stmt]:
        self._expect("op", "{")
        statements: List[ast.Stmt] = []
        while not self._check("op", "}"):
            statements.append(self._statement())
        self._expect("op", "}")
        return statements

    def _block_or_statement(self) -> List[ast.Stmt]:
        if self._check("op", "{"):
            return self._block()
        return [self._statement()]

    def _statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind == "keyword":
            if token.text == "int":
                return self._declaration()
            if token.text == "if":
                return self._if_statement()
            if token.text == "while":
                return self._while_statement()
            if token.text == "for":
                return self._for_statement()
            if token.text == "return":
                self._advance()
                value = None
                if not self._check("op", ";"):
                    value = self._expression()
                self._expect("op", ";")
                return ast.Return(value=value, line=token.line)
            if token.text == "break":
                self._advance()
                self._expect("op", ";")
                return ast.Break(line=token.line)
            if token.text == "continue":
                self._advance()
                self._expect("op", ";")
                return ast.Continue(line=token.line)
        statement = self._simple_statement()
        self._expect("op", ";")
        return statement

    def _declaration(self, consume_semi: bool = True) -> ast.Declaration:
        token = self._expect("keyword", "int")
        is_pointer = self._match("op", "*") is not None
        name = self._expect("ident").text
        array_size = None
        initializer = None
        if self._match("op", "["):
            array_size = self._int_literal_value()
            self._expect("op", "]")
        if self._match("op", "="):
            initializer = self._expression()
        if consume_semi:
            self._expect("op", ";")
        return ast.Declaration(
            name=name,
            array_size=array_size,
            is_pointer=is_pointer,
            initializer=initializer,
            line=token.line,
        )

    def _simple_statement(self) -> ast.Stmt:
        """Assignment or expression statement, without the ';'."""
        line = self._peek().line
        expr = self._expression()
        operator = self._peek()
        if operator.kind == "op" and operator.text in _ASSIGN_OPS:
            self._advance()
            value = self._expression()
            if operator.text != "=":
                value = ast.Binary(
                    op=_COMPOUND_BASE[operator.text],
                    left=expr,
                    right=value,
                    line=line,
                )
            return ast.Assign(target=expr, value=value, line=line)
        return ast.ExprStmt(expr=expr, line=line)

    def _if_statement(self) -> ast.If:
        token = self._expect("keyword", "if")
        self._expect("op", "(")
        condition = self._expression()
        self._expect("op", ")")
        then_body = self._block_or_statement()
        else_body: List[ast.Stmt] = []
        if self._match("keyword", "else"):
            if self._check("keyword", "if"):
                else_body = [self._if_statement()]
            else:
                else_body = self._block_or_statement()
        return ast.If(
            condition=condition,
            then_body=then_body,
            else_body=else_body,
            line=token.line,
        )

    def _while_statement(self) -> ast.While:
        token = self._expect("keyword", "while")
        self._expect("op", "(")
        condition = self._expression()
        self._expect("op", ")")
        body = self._block_or_statement()
        return ast.While(condition=condition, body=body, line=token.line)

    def _for_statement(self) -> ast.For:
        token = self._expect("keyword", "for")
        self._expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self._check("op", ";"):
            if self._check("keyword", "int"):
                init = self._declaration(consume_semi=False)
            else:
                init = self._simple_statement()
        self._expect("op", ";")
        condition = None
        if not self._check("op", ";"):
            condition = self._expression()
        self._expect("op", ";")
        step: Optional[ast.Stmt] = None
        if not self._check("op", ")"):
            step = self._simple_statement()
        self._expect("op", ")")
        body = self._block_or_statement()
        return ast.For(
            init=init, condition=condition, step=step, body=body, line=token.line
        )

    # -- expressions ---------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._binary(0)

    def _binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._unary()
        operators = _BINARY_LEVELS[level]
        left = self._binary(level + 1)
        while self._peek().kind == "op" and self._peek().text in operators:
            operator = self._advance()
            right = self._binary(level + 1)
            left = ast.Binary(
                op=operator.text, left=left, right=right, line=operator.line
            )
        return left

    def _unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "op" and token.text in ("-", "!", "~", "*", "&"):
            self._advance()
            operand = self._unary()
            return ast.Unary(op=token.text, operand=operand, line=token.line)
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while self._check("op", "["):
            token = self._advance()
            index = self._expression()
            self._expect("op", "]")
            expr = ast.Index(base=expr, index=index, line=token.line)
        return expr

    def _primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "int_lit":
            self._advance()
            return ast.IntLiteral(value=int(token.text, 0), line=token.line)
        if token.kind == "ident":
            self._advance()
            if self._check("op", "("):
                self._advance()
                args: List[ast.Expr] = []
                if not self._check("op", ")"):
                    args.append(self._expression())
                    while self._match("op", ","):
                        args.append(self._expression())
                self._expect("op", ")")
                return ast.Call(name=token.text, args=args, line=token.line)
            return ast.VarRef(name=token.text, line=token.line)
        if self._match("op", "("):
            expr = self._expression()
            self._expect("op", ")")
            return expr
        raise ParseError("expected expression", token)


def parse(source: str) -> ast.TranslationUnit:
    """Parse MiniC ``source`` into an AST."""
    return Parser(tokenize(source)).parse_unit()
