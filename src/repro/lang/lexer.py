"""Lexer for MiniC, the workload-definition language.

MiniC is a small C subset: 64-bit ints, fixed-size arrays, pointers,
functions with recursion, and the usual statements and operators.  It
exists so the SPECint-style workloads can be written as real programs
and compiled with a real (Alpha-convention) calling sequence — the
stack behaviour the paper exploits then emerges structurally instead of
being synthesized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = {
    "int",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
}

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
    "<", ">", "=", "(", ")", "{", "}", "[", "]", ",", ";",
]


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: str  # 'int_lit' | 'ident' | 'keyword' | 'op' | 'eof'
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


class LexerError(ValueError):
    """Raised on unrecognized input."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"line {line}, col {column}: {message}")
        self.line = line
        self.column = column


def tokenize(source: str) -> List[Token]:
    """Tokenize MiniC source, returning a list ending with an EOF token."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    line = 1
    column = 1
    index = 0
    length = len(source)

    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if source.startswith("//", index):
            end = source.find("\n", index)
            index = length if end < 0 else end
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end < 0:
                raise LexerError("unterminated block comment", line, column)
            skipped = source[index : end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            index = end + 2
            continue
        if char.isdigit():
            start = index
            if source.startswith("0x", index) or source.startswith("0X", index):
                index += 2
                while index < length and source[index] in "0123456789abcdefABCDEF":
                    index += 1
            else:
                while index < length and source[index].isdigit():
                    index += 1
            text = source[start:index]
            yield Token("int_lit", text, line, column)
            column += index - start
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            yield Token(kind, text, line, column)
            column += index - start
            continue
        for operator in _OPERATORS:
            if source.startswith(operator, index):
                yield Token("op", operator, line, column)
                index += len(operator)
                column += len(operator)
                break
        else:
            raise LexerError(f"unexpected character {char!r}", line, column)

    yield Token("eof", "", line, column)
