"""Alpha-like 64-bit RISC instruction set architecture.

This package provides the ISA substrate for the SVF reproduction: the
register conventions (``$sp``/``$fp``/``$gpr`` access paths that the
paper's Figure 1 classifies), the instruction set, and a two-pass
assembler producing :class:`~repro.isa.instructions.Program` objects
that the functional emulator executes.
"""

from repro.isa.assembler import Assembler, AssemblerError, assemble
from repro.isa.encoding import (
    EncodingError,
    decode,
    decode_program,
    encode,
    encode_program,
    is_sp_relative_memory,
)
from repro.isa.instructions import (
    CONDITIONAL_BRANCHES,
    Instruction,
    InstructionError,
    OPCODES,
    OpClass,
    OpSpec,
    Program,
)
from repro.isa.registers import (
    ARG_REGISTERS,
    FP,
    GP,
    NUM_REGISTERS,
    RA,
    RegisterError,
    SAVED_REGISTERS,
    SP,
    TEMP_REGISTERS,
    V0,
    ZERO,
    parse_register,
    register_name,
)

__all__ = [
    "ARG_REGISTERS",
    "Assembler",
    "AssemblerError",
    "CONDITIONAL_BRANCHES",
    "EncodingError",
    "FP",
    "GP",
    "Instruction",
    "InstructionError",
    "NUM_REGISTERS",
    "OPCODES",
    "OpClass",
    "OpSpec",
    "Program",
    "RA",
    "RegisterError",
    "SAVED_REGISTERS",
    "SP",
    "TEMP_REGISTERS",
    "V0",
    "ZERO",
    "assemble",
    "decode",
    "decode_program",
    "encode",
    "encode_program",
    "is_sp_relative_memory",
    "parse_register",
    "register_name",
]
