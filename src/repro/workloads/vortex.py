"""255.vortex — object-oriented database (hashed record store).

Models vortex's transaction mix: insert/lookup/delete of heap-allocated
records through a hash index, with field validation helpers.  Heap
dominated, flat call graph with small frames.
"""

from __future__ import annotations

from repro.workloads.common import rand_source

# Record layout: [key, field_a, field_b, next_ptr]
_TEMPLATE = """
int buckets[{buckets}];
int live_records = 0;

int hash_key(int key) {{
    int h = key * 2654435761;
    return (h >> 8) & {bucket_mask};
}}

int record_checksum(int *record) {{
    return (record[0] * 31 + record[1]) ^ record[2];
}}

int insert_record(int key, int a, int b) {{
    int *record = alloc(4);
    record[0] = key;
    record[1] = a;
    record[2] = b;
    int h = hash_key(key);
    record[3] = buckets[h];
    buckets[h] = record;
    live_records += 1;
    return record_checksum(record);
}}

int lookup_record(int key) {{
    int h = hash_key(key);
    int *record = buckets[h];
    while (record != 0) {{
        if (record[0] == key) {{
            return record_checksum(record);
        }}
        record = record[3];
    }}
    return 0;
}}

int delete_record(int key) {{
    int h = hash_key(key);
    int *record = buckets[h];
    int *previous = 0;
    while (record != 0) {{
        if (record[0] == key) {{
            if (previous == 0) {{
                buckets[h] = record[3];
            }} else {{
                previous[3] = record[3];
            }}
            live_records -= 1;
            return 1;
        }}
        previous = record;
        record = record[3];
    }}
    return 0;
}}

int main() {{
    int checksum = 0;
    for (int txn = 0; txn < {transactions}; txn += 1) {{
        int action = rand31() % 10;
        int key = rand31() % {key_space};
        if (action < 5) {{
            checksum += insert_record(key, rand31() & 65535, txn);
        }} else {{
            if (action < 8) {{
                checksum += lookup_record(key);
            }} else {{
                checksum += delete_record(key);
            }}
        }}
    }}
    print(checksum & 268435455);
    print(live_records);
    return 0;
}}
"""


def make_source(
    transactions: int = 1200,
    buckets: int = 64,
    key_space: int = 128,
    seed: int = 255,
) -> str:
    """Build the vortex workload."""
    return rand_source(seed) + _TEMPLATE.format(
        transactions=transactions,
        buckets=buckets,
        bucket_mask=buckets - 1,
        key_space=key_space,
    )


INPUTS = {"ref": dict(seed=255)}
