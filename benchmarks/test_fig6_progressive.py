"""Figure 6 — progressive performance analysis on the 16-wide machine.

Paper shape: doubling the DL1 gains nothing; removing the address
calculation alone gains ~3% (hidden by out-of-order execution); the
SVF provides the bulk of the improvement; and a dual-ported SVF is
nearly as good as a 16-ported one.
"""

from repro.harness import fig6_progressive


def test_fig6(benchmark, emit, timing_window):
    result = benchmark.pedantic(
        lambda: fig6_progressive(max_instructions=timing_window),
        rounds=1,
        iterations=1,
    )
    emit("fig6_progressive", result.render())

    averages = result.averages()
    # Doubling the L1 is negligible (paper: ~0%).
    assert abs(averages["L1_2x"] - 1.0) < 0.02
    # Address-calc removal alone is small on an out-of-order machine.
    assert averages["no_addr_cal_op"] < 1.15
    # The SVF delivers the bulk of the gain; 2 ports nearly match 16.
    assert averages["svf_16p"] > averages["no_addr_cal_op"]
    assert averages["svf_2p"] > averages["svf_1p"]
    assert averages["svf_16p"] >= averages["svf_2p"]
    gap_2p_16p = averages["svf_16p"] - averages["svf_2p"]
    gap_1p_2p = averages["svf_2p"] - averages["svf_1p"]
    assert gap_2p_16p < gap_1p_2p, (
        "most of the port benefit should come from the second port"
    )
