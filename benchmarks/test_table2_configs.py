"""Table 2 — the processor models."""

from repro.harness import table2_models
from repro.uarch.config import table2_config


def test_table2(benchmark, emit):
    text = benchmark.pedantic(table2_models, rounds=1, iterations=1)
    emit("table2_models", text)
    assert "16" in text and "4-way 64KB" in text


def test_widths_scale_as_in_paper(benchmark):
    configs = benchmark.pedantic(
        lambda: [table2_config(w) for w in (4, 8, 16)],
        rounds=1,
        iterations=1,
    )
    four, eight, sixteen = configs
    assert (four.ruu_size, eight.ruu_size, sixteen.ruu_size) == (64, 128, 256)
    assert (four.lsq_size, eight.lsq_size, sixteen.lsq_size) == (32, 64, 128)
    assert (four.ifq_size, eight.ifq_size, sixteen.ifq_size) == (16, 32, 64)
