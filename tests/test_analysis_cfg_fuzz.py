"""Hypothesis fuzz: CFG + call-graph construction off the happy path.

The generator builds structurally adversarial assembly — unreachable
blocks, irreducible loops (two branch entries into the same loop
body), indirect jumps/calls, cross-function escaping branches, and
functions that fall off their end — and checks that the whole static
stack (CFG reconstruction, call-graph condensation, interprocedural
summaries, certification) never crashes and always upholds its
structural invariants.  PR-1 fuzzing only covered straight-line MiniC
output; this covers the graphs the certifier must survive.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import build_call_graph, build_cfg, summarize_program
from repro.analysis.certify import certify_program
from repro.isa import assemble

_FUNCTION_NAMES = ("main", "alpha", "beta", "gamma")


@st.composite
def _function_body(draw, name, function_names):
    """One function's instruction lines, with local labels L0..L3."""
    lines = [f"{name}:"]
    labels = [f"{name}$l{i}" for i in range(draw(st.integers(1, 3)))]
    defined = set()
    has_frame = draw(st.booleans())
    if has_frame:
        lines.append("    lda   sp, -16(sp)")
        lines.append("    stq   ra, 0(sp)")

    def fresh_label(draw):
        """A local label not yet defined, or None if all are taken."""
        free = [label for label in labels if label not in defined]
        if not free:
            return None
        label = draw(st.sampled_from(free))
        defined.add(label)
        return label

    n_segments = draw(st.integers(1, 3))
    for segment in range(n_segments):
        kind = draw(st.sampled_from(
            ("plain", "branch", "loop", "irreducible", "call",
             "indirect-jump", "indirect-call", "unreachable")
        ))
        if kind == "branch":
            target = draw(st.sampled_from(labels))
            lines.append(f"    beq   t0, {target}")
            lines.append("    addq  t1, 1, t1")
        elif kind == "loop":
            head = fresh_label(draw)
            if head is None:
                kind = "plain"
            else:
                lines.append(f"{head}:")
                lines.append("    subq  t0, 1, t0")
                lines.append(f"    bne   t0, {head}")
        elif kind == "irreducible":
            # Two distinct entries into the same "loop body" label:
            # classic irreducible shape.
            body = fresh_label(draw)
            if body is None:
                kind = "plain"
            else:
                lines.append(f"    beq   t1, {body}")
                lines.append("    addq  t2, 1, t2")
                lines.append(f"    bne   t2, {body}")
                lines.append(f"{body}:")
                lines.append("    addq  t3, 1, t3")
        elif kind == "call":
            callee = draw(st.sampled_from(function_names))
            lines.append(f"    bsr   {callee}")
        elif kind == "indirect-jump":
            lines.append("    lda   t5, 4096(zero)")
            lines.append("    jmp   t5")
        elif kind == "indirect-call":
            lines.append("    lda   t5, 4096(zero)")
            lines.append("    jsr   t5")
        else:  # unreachable block after an unconditional br
            join = fresh_label(draw)
            if join is None:
                kind = "plain"
            else:
                lines.append(f"    br    {join}")
                lines.append("    addq  t4, 1, t4")  # dead
                lines.append(f"{join}:")
        if kind == "plain":
            lines.append("    addq  t0, 1, t0")

    # Define any still-undefined local labels so assembly succeeds.
    for label in labels:
        if label not in defined:
            lines.append(f"{label}:")
    if has_frame:
        lines.append("    ldq   ra, 0(sp)")
        lines.append("    lda   sp, 16(sp)")
    if draw(st.booleans()):
        lines.append("    ret")
    # else: fall through off the end (fallthrough-exit anomaly) or
    # into the next function.
    return lines


@st.composite
def _program_source(draw):
    count = draw(st.integers(1, 3))
    names = list(_FUNCTION_NAMES[:count])
    lines = [".text"]
    for name in names:
        lines.extend(draw(_function_body(name, names)))
    # A final ret so the last function cannot run off the program end.
    lines.append("    ret")
    return "\n".join(lines) + "\n"


@settings(max_examples=120, deadline=None)
@given(_program_source())
def test_static_stack_never_crashes(source):
    program = assemble(source)
    pcfg = build_cfg(program)
    graph = build_call_graph(pcfg)
    summary = summarize_program(pcfg, graph)
    certificate = certify_program(program)

    # --- CFG invariants -------------------------------------------------
    for function in pcfg.functions.values():
        ids = {block.id for block in function.blocks}
        for block in function.blocks:
            # successor/predecessor symmetry, edges stay in-function
            for successor in block.successors:
                assert successor in ids
                successor_block = function.blocks[successor]
                assert block.id in successor_block.predecessors
            for predecessor in block.predecessors:
                assert predecessor in ids
                assert block.id in (
                    function.blocks[predecessor].successors
                )
            # blocks tile the function body without overlap
            assert function.start <= block.start <= block.end
            assert block.end <= function.end
        covered = sorted(
            index
            for block in function.blocks
            for index in block.indices()
        )
        assert covered == list(range(function.start, function.end))
        # reverse postorder covers each reachable block exactly once
        rpo_ids = [block.id for block in function.reverse_postorder()]
        assert len(rpo_ids) == len(set(rpo_ids))
        assert set(rpo_ids) <= ids

    # --- call-graph invariants -----------------------------------------
    all_names = set(pcfg.functions)
    scc_members = [name for component in graph.sccs for name in component]
    assert sorted(scc_members) == sorted(all_names)  # exact partition
    for name, component_id in graph.scc_of.items():
        assert name in graph.sccs[component_id]
    for caller, callees in graph.edges.items():
        assert caller in all_names
        assert callees <= all_names
    # bottom-up: cross-SCC edges always point to earlier components
    for caller, callees in graph.edges.items():
        for callee in callees:
            if graph.scc_of[callee] != graph.scc_of[caller]:
                assert graph.scc_of[callee] < graph.scc_of[caller]
    for name in graph.recursive:
        component = graph.sccs[graph.scc_of[name]]
        assert len(component) > 1 or name in graph.edges.get(name, set())
        cycle = graph.recursion_cycle(name)
        assert cycle is not None and cycle[0] == cycle[-1] == name
        for caller, callee in zip(cycle, cycle[1:]):
            assert callee in graph.callees(caller)
    live = graph.reachable()
    assert live <= all_names
    for name in live:
        path = graph.call_path(name)
        assert path is not None and path[-1] == name
        assert path[0] == graph.root
        for caller, callee in zip(path, path[1:]):
            assert callee in graph.callees(caller)

    # --- summary / certificate invariants ------------------------------
    assert set(summary.functions) == all_names
    for function_summary in summary.functions.values():
        assert function_summary.local_depth >= 0
        if function_summary.worst_depth is not None:
            assert function_summary.worst_depth >= (
                function_summary.local_depth
            )
            assert not function_summary.recursive
    assert set(certificate.verdicts) == all_names
    bound, _reason = summary.program_depth()
    assert bound == certificate.depth_bound
    for flag in certificate.flags:
        assert flag.kind in {
            "lifo-violation", "structural", "unclean-escape",
            "unbounded-depth", "unknown-callee", "untracked-sp",
        }
