"""Differential gate for the batched (columnar) analysis protocol.

Every characterization analysis now has three consumption paths: the
record-at-a-time ``append`` sink (the reference), the pure-python
column walk (``consume_columns`` with the numpy backend disabled) and
the vectorized numpy path (backend enabled).  These tests prove all
three observationally identical — field for field, on every registry
workload plus hypothesis-fuzzed traces — and that chunked ``lo``/``hi``
consumption composes to the same state as one whole-trace pass.

The numpy legs carry a skip-if marker so the suite still gates the
pure-python reference on hosts without numpy installed.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.traffic import TrafficSimulator, simulate_traffic
from repro.emulator import Machine
from repro.emulator.memory import STACK_BASE
from repro.isa import assemble
from repro.trace.analysis import (
    AccessDistribution,
    MultiSink,
    OffsetLocality,
    StackDepthProfile,
    consume_trace,
)
from repro.trace.columnar import (
    ColumnarTrace,
    numpy_available,
    set_numpy_enabled,
)
from repro.trace.first_touch import FirstTouchProfile
from repro.workloads import ALL_BENCHMARKS, workload

from tests.test_trace_columnar import _fuzz_source, _step

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not installed"
)

WINDOW = 2_000


@pytest.fixture
def no_numpy():
    previous = set_numpy_enabled(False)
    yield
    set_numpy_enabled(previous)


def _trace(bench):
    return workload(bench).trace(max_instructions=WINDOW)


def _new_sinks():
    return (
        AccessDistribution(),
        StackDepthProfile(stack_base=STACK_BASE),
        OffsetLocality(),
        FirstTouchProfile(),
    )


def _sink_state(sinks):
    """Every observable field of all four analyses, comparably."""
    distribution, depth, locality, first_touch = sinks
    return (
        distribution.total_instructions,
        distribution.memory_references,
        dict(distribution.counts),
        list(depth.samples),
        depth.max_depth,
        dict(locality.histogram),
        locality.total,
        locality.sum_offsets,
        locality.beyond_tos,
        first_touch.stack_first_stores,
        first_touch.stack_first_loads,
        first_touch.other_first_stores,
        first_touch.other_first_loads,
        first_touch._previous_sp,
        set(first_touch._pending),
        dict(first_touch._seen_other),
    )


def _append_state(trace):
    sinks = _new_sinks()
    for record in trace.records():
        for sink in sinks:
            sink.append(record)
    return _sink_state(sinks)


def _batched_state(trace, numpy_on, chunk=None):
    previous = set_numpy_enabled(numpy_on)
    try:
        sinks = _new_sinks()
        if chunk is None:
            consume_trace(trace, sinks)
        else:
            for lo in range(0, len(trace), chunk):
                consume_trace(
                    trace, sinks, lo, min(lo + chunk, len(trace))
                )
        return _sink_state(sinks)
    finally:
        set_numpy_enabled(previous)


class TestWorkloadDifferential:
    """Batched == record-at-a-time on every registry workload."""

    # (param is named ``bench``: pytest-benchmark owns ``benchmark``.)
    @pytest.mark.parametrize("bench", ALL_BENCHMARKS)
    def test_python_columns_match_append(self, bench):
        trace = _trace(bench)
        assert _batched_state(trace, numpy_on=False) == _append_state(
            trace
        )

    @requires_numpy
    @pytest.mark.parametrize("bench", ALL_BENCHMARKS)
    def test_numpy_columns_match_append(self, bench):
        trace = _trace(bench)
        assert _batched_state(trace, numpy_on=True) == _append_state(
            trace
        )

    @pytest.mark.parametrize("numpy_on", [False, pytest.param(True, marks=requires_numpy)])
    def test_chunked_consumption_composes(self, numpy_on):
        trace = _trace("gzip")
        whole = _batched_state(trace, numpy_on=numpy_on)
        assert _batched_state(trace, numpy_on=numpy_on, chunk=313) == whole


class TestFuzzedDifferential:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(_step, min_size=1, max_size=30))
    def test_all_paths_agree(self, steps):
        program = assemble(_fuzz_source(steps))
        trace = ColumnarTrace()
        Machine(program).run(trace_sink=trace)
        reference = _append_state(trace)
        assert _batched_state(trace, numpy_on=False) == reference
        assert _batched_state(trace, numpy_on=False, chunk=7) == reference
        if numpy_available():
            assert _batched_state(trace, numpy_on=True) == reference
            assert (
                _batched_state(trace, numpy_on=True, chunk=7) == reference
            )


class TestTrafficDifferential:
    """The Table 3/4 consumer: columnar paths == append sink."""

    @pytest.mark.parametrize("period", [None, 333])
    @pytest.mark.parametrize(
        "numpy_on", [False, pytest.param(True, marks=requires_numpy)]
    )
    def test_matches_append(self, period, numpy_on):
        trace = _trace("crafty")
        reference = TrafficSimulator(context_switch_period=period)
        for record in trace.records():
            reference.append(record)
        previous = set_numpy_enabled(numpy_on)
        try:
            batched = simulate_traffic(
                trace, context_switch_period=period
            )
        finally:
            set_numpy_enabled(previous)
        assert batched == reference.result()

    def test_record_list_input_still_works(self):
        trace = _trace("mcf")
        assert simulate_traffic(list(trace.records())) == simulate_traffic(
            trace
        )

    @pytest.mark.parametrize(
        "numpy_on", [False, pytest.param(True, marks=requires_numpy)]
    )
    def test_chunked_consumption_composes(self, numpy_on):
        trace = _trace("gzip")
        previous = set_numpy_enabled(numpy_on)
        try:
            whole = TrafficSimulator(context_switch_period=777)
            whole.consume_columns(trace)
            chunked = TrafficSimulator(context_switch_period=777)
            for lo in range(0, len(trace), 505):
                chunked.consume_columns(
                    trace, lo, min(lo + 505, len(trace))
                )
        finally:
            set_numpy_enabled(previous)
        assert chunked.result() == whole.result()


class TestConsumeTraceDispatcher:
    def test_legacy_append_only_sinks_get_records(self):
        trace = _trace("mcf")
        collected = []
        fed = consume_trace(trace, (collected,))
        assert fed == len(trace)
        assert trace == collected

    def test_multisink_mixes_batched_and_legacy(self):
        trace = _trace("gzip")
        distribution = AccessDistribution()
        collected = []
        sink = MultiSink(distribution, collected, keep=True)
        sink.consume_columns(trace)
        assert distribution.total_instructions == len(trace)
        assert trace == collected
        assert trace == sink.records

    def test_plain_sequence_input(self):
        trace = _trace("mcf")
        records = list(trace.records())
        batched, legacy = AccessDistribution(), AccessDistribution()
        consume_trace(records, (batched,))
        for record in records:
            legacy.append(record)
        assert batched == legacy

    def test_notes_analysis_phase(self):
        from repro import profiling

        trace = _trace("gzip")
        with profiling.profiled() as profiler:
            consume_trace(trace, (AccessDistribution(),))
        stat = profiler.phases["analysis"]
        assert stat.calls == 1
        assert stat.items == len(trace)


class TestNumpyBackendSwitch:
    def test_disable_returns_none_views(self, no_numpy):
        assert _trace("mcf").as_arrays() is None

    @requires_numpy
    def test_views_are_zero_copy(self):
        trace = _trace("mcf")
        arrays = trace.as_arrays()
        assert arrays is not None
        assert len(arrays.pc) == len(trace)
        assert arrays.pc.tolist() == list(trace.pc)
        assert arrays.flags.tolist() == list(trace.flags)
        # Same memory, not a copy.
        import numpy as np

        assert np.shares_memory(
            arrays.addr, np.frombuffer(trace.addr, dtype="uint64")
        )

    @requires_numpy
    def test_empty_trace_views(self):
        arrays = ColumnarTrace().as_arrays()
        assert arrays is not None
        assert arrays.sp.size == 0
