"""Fusion semantics of the batched sweep engine.

The contract (see :func:`repro.harness.sweep.run_sweep_batch_cell`):
fusing timing cells into ``"sweep-batch"`` groups changes submission
shape only — run-table and summary bytes are identical batched vs
unbatched at every ``--jobs``, per-member cell-cache keys stay the
caching unit (a partially-warm group recomputes only its cold
members), and failures degrade exactly the offending member's row.
"""

import pytest

from repro.harness import sweep as sweep_mod
from repro.harness.sweep import SweepOptions, run_sweep
from repro.sweepspec import parse_suite
from repro.uarch import pipeline

WINDOW = 2_000


@pytest.fixture
def submitted_sections(monkeypatch):
    """Record the section of every cell handed to the engine."""
    sections = []
    original = sweep_mod.run_cells

    def wrapper(cells, *args, **kwargs):
        sections.extend(cell.section for cell in cells)
        return original(cells, *args, **kwargs)

    monkeypatch.setattr(sweep_mod, "run_cells", wrapper)
    return sections


def timing_suite(**overrides):
    data = {
        "suite": "unit-batch",
        "kind": "timing",
        "workloads": ["gzip", "mcf"],
        "window": WINDOW,
        "base": {"machine": {"svf_mode": "svf"}},
        "grid": {"svf_ports": [1, 2]},
    }
    data.update(overrides)
    return parse_suite(data)


def _run(spec, tmp_path, name, *, jobs=1, batch=True, use_cache=True):
    return run_sweep(spec, SweepOptions(
        jobs=jobs,
        cache_dir=str(tmp_path / name) if use_cache else None,
        use_cache=use_cache,
        batch=batch,
    ))


@pytest.mark.parametrize("jobs", [1, 4])
def test_run_table_bytes_identical_batched_vs_unbatched(tmp_path, jobs):
    spec = timing_suite()
    batched = _run(spec, tmp_path, f"b{jobs}", jobs=jobs, batch=True)
    plain = _run(spec, tmp_path, f"p{jobs}", jobs=jobs, batch=False)
    assert batched.ok and plain.ok
    assert batched.run_table_json() == plain.run_table_json()
    assert batched.render_summary() == plain.render_summary()


def test_fused_submission_shape(tmp_path, submitted_sections):
    # Two workloads x two ports fuse into one batch cell per workload:
    # 2 submitted cells, 4 run-table rows.
    spec = timing_suite()
    result = _run(spec, tmp_path, "shape")
    assert len(result.rows) == 4
    assert submitted_sections.count("sweep-batch") == 2
    assert "sweep" not in submitted_sections


def test_partially_warm_group_recomputes_only_cold_members(tmp_path):
    cache = tmp_path / "warm"
    # Warm only the ports=1 member of each workload's group (singleton
    # groups run as plain cells, landing under the member cache keys).
    narrow = timing_suite(grid={"svf_ports": [1]})
    first = run_sweep(narrow, SweepOptions(jobs=1, cache_dir=str(cache)))
    assert first.ok and first.cache_hits == 0

    full = timing_suite()
    second = run_sweep(full, SweepOptions(jobs=1, cache_dir=str(cache)))
    assert second.ok and len(second.rows) == 4
    by_ports = {
        (row.workload, row.level("svf_ports")): row.cache_hit
        for row in second.rows
    }
    assert all(hit for key, hit in by_ports.items() if key[1] == 1)
    assert not any(hit for key, hit in by_ports.items() if key[1] == 2)

    # Fully warm third run: every member resumes from the cache.
    third = run_sweep(full, SweepOptions(jobs=1, cache_dir=str(cache)))
    assert third.ok and third.cache_hits == len(third.rows) == 4

    # Warm rows are byte-identical to a cold unbatched run.
    cold = _run(full, tmp_path, "cold", batch=False)
    assert third.run_table_json() == cold.run_table_json()


def test_member_failure_degrades_exactly_one_row(tmp_path):
    # svf_granularity=12 passes spec validation but the simulator
    # rejects it (granularity must be a multiple of 8): the batched
    # pass fails as a whole, falls back to sequential per-member
    # execution, and only the bad member's row degrades — with the
    # same bytes the unbatched run produces.
    spec = timing_suite(
        workloads=["gzip"], grid={"svf_granularity": [8, 12]}
    )
    batched = _run(spec, tmp_path, "deg-b", batch=True)
    plain = _run(spec, tmp_path, "deg-p", batch=False)
    for result in (batched, plain):
        assert not result.ok
        bad = [row for row in result.rows if not row.ok]
        assert len(bad) == 1
        assert bad[0].level("svf_granularity") == 12
        assert "granularity" in bad[0].error
        good = [row for row in result.rows if row.ok]
        assert len(good) == 1 and good[0].metrics["speedup"] > 0
    assert batched.run_table_json() == plain.run_table_json()
    assert batched.render_summary() == plain.render_summary()


def test_batch_engine_failure_falls_back_sequentially(
    tmp_path, monkeypatch
):
    # If the fused pass itself blows up, members recompute one by one
    # through the stock runner; no row degrades.
    def explode(trace, configs):
        raise RuntimeError("batched pass exploded")

    monkeypatch.setattr(pipeline, "simulate_batch", explode)
    spec = timing_suite(workloads=["gzip"])
    result = _run(spec, tmp_path, "fallback")
    assert result.ok and len(result.rows) == 2


def test_no_batch_option_and_gate_produce_plain_cells(
    tmp_path, submitted_sections
):
    spec = timing_suite(workloads=["gzip"])
    _run(spec, tmp_path, "plain", batch=False)
    assert submitted_sections == ["sweep", "sweep"]

    del submitted_sections[:]
    previous = pipeline.set_batch_enabled(False)
    try:
        _run(spec, tmp_path, "gated", batch=True)
    finally:
        pipeline.set_batch_enabled(previous)
    assert submitted_sections == ["sweep", "sweep"]


def test_traffic_sweeps_never_fuse(tmp_path, submitted_sections):
    spec = parse_suite({
        "suite": "unit-traffic",
        "kind": "traffic",
        "workloads": ["gzip"],
        "window": WINDOW,
        "grid": {"svf_capacity": [4096, 8192]},
    })
    result = _run(spec, tmp_path, "traffic")
    assert result.ok
    assert submitted_sections == ["sweep", "sweep"]
