"""Unit tests for memory-region classification (Figure 1 taxonomy)."""

from repro.emulator.memory import DATA_BASE, HEAP_BASE, STACK_BASE, TEXT_BASE
from repro.isa.registers import FP, SP
from repro.trace.regions import (
    AccessMethod,
    Region,
    STACK_REGION_FLOOR,
    classify_access,
    classify_address,
    is_stack_address,
)


class TestClassifyAddress:
    def test_stack_addresses(self):
        assert classify_address(STACK_BASE) is Region.STACK
        assert classify_address(STACK_BASE - 4096) is Region.STACK
        assert classify_address(STACK_REGION_FLOOR) is Region.STACK

    def test_heap_addresses(self):
        assert classify_address(HEAP_BASE) is Region.HEAP
        assert classify_address(STACK_REGION_FLOOR - 8) is Region.HEAP

    def test_global_addresses(self):
        assert classify_address(DATA_BASE) is Region.GLOBAL
        assert classify_address(HEAP_BASE - 8) is Region.GLOBAL

    def test_text_addresses(self):
        assert classify_address(TEXT_BASE) is Region.TEXT

    def test_null_page(self):
        assert classify_address(0) is Region.OTHER


class TestClassifyAccess:
    def test_stack_by_base_register(self):
        addr = STACK_BASE - 64
        assert classify_access(addr, SP) is AccessMethod.STACK_SP
        assert classify_access(addr, FP) is AccessMethod.STACK_FP
        assert classify_access(addr, 4) is AccessMethod.STACK_GPR

    def test_sp_base_to_heap_is_heap(self):
        # Classification is by address region, not just base register.
        assert classify_access(HEAP_BASE + 8, SP) is AccessMethod.HEAP

    def test_global_and_heap(self):
        assert classify_access(DATA_BASE + 8, 3) is AccessMethod.GLOBAL
        assert classify_access(HEAP_BASE + 8, 3) is AccessMethod.HEAP

    def test_is_stack_address(self):
        assert is_stack_address(STACK_BASE - 8)
        assert not is_stack_address(HEAP_BASE)
