"""Tests for the out-of-order timing model."""

import pytest

from repro.uarch.config import table2_config
from repro.uarch.pipeline import simulate


@pytest.fixture(scope="module")
def crafty(crafty_trace):
    return crafty_trace


class TestBasicSanity:
    def test_cycles_positive_and_bounded(self, crafty):
        stats = simulate(crafty, table2_config(16))
        assert 0 < stats.cycles
        # IPC cannot exceed the commit width.
        assert stats.ipc <= 16
        assert stats.instructions == len(crafty)

    def test_deterministic(self, gzip_trace):
        first = simulate(gzip_trace, table2_config(8))
        second = simulate(gzip_trace, table2_config(8))
        assert first.cycles == second.cycles

    def test_wider_machines_are_not_slower(self, crafty):
        cycles = [
            simulate(crafty, table2_config(width)).cycles
            for width in (4, 8, 16)
        ]
        assert cycles[0] >= cycles[1] >= cycles[2]

    def test_ipc_bounded_by_width(self, crafty):
        for width in (4, 8):
            stats = simulate(crafty, table2_config(width))
            assert stats.ipc <= width

    def test_counts_loads_stores_branches(self, crafty):
        stats = simulate(crafty, table2_config(16))
        assert stats.loads == sum(1 for r in crafty if r.is_load)
        assert stats.stores == sum(1 for r in crafty if r.is_store)
        assert stats.branches == sum(1 for r in crafty if r.is_branch)


class TestStructuralHazards:
    def test_smaller_ruu_not_faster(self, crafty):
        big = simulate(crafty, table2_config(16))
        small = simulate(crafty, table2_config(16, ruu_size=16))
        assert small.cycles >= big.cycles

    def test_fewer_dl1_ports_not_faster(self, crafty):
        two = simulate(crafty, table2_config(16, dl1_ports=2))
        one = simulate(crafty, table2_config(16, dl1_ports=1))
        assert one.cycles >= two.cycles

    def test_tiny_ifq_throttles_fetch(self, gzip_trace):
        normal = simulate(gzip_trace, table2_config(16))
        tiny = simulate(gzip_trace, table2_config(16, ifq_size=2))
        assert tiny.cycles >= normal.cycles


class TestBranchPrediction:
    def test_gshare_not_faster_than_perfect(self, crafty):
        perfect = simulate(crafty, table2_config(16))
        gshare = simulate(
            crafty, table2_config(16, branch_predictor="gshare")
        )
        assert gshare.cycles >= perfect.cycles
        assert gshare.mispredictions > 0
        assert perfect.mispredictions == 0


class TestSVFModes:
    def test_ideal_mode_fastest(self, crafty):
        base = table2_config(16)
        baseline = simulate(crafty, base)
        ideal = simulate(crafty, base.with_svf(mode="ideal"))
        svf = simulate(crafty, base.with_svf(mode="svf", ports=2))
        assert ideal.cycles <= svf.cycles
        assert ideal.cycles <= baseline.cycles

    def test_svf_counts_reference_types(self, eon_trace):
        base = table2_config(16)
        stats = simulate(eon_trace, base.with_svf(mode="svf", ports=2))
        assert stats.svf_fast_loads > 0
        assert stats.svf_fast_stores > 0
        assert stats.svf_rerouted > 0  # eon's gpr-heavy accesses

    def test_sp_dominated_workload_mostly_morphs(self, crafty):
        """Paper Figure 8: ~86% of stack refs morph in the front-end."""
        base = table2_config(16)
        stats = simulate(crafty, base.with_svf(mode="svf", ports=2))
        assert stats.svf_fast_fraction > 0.7

    def test_more_svf_ports_not_slower(self, crafty):
        base = table2_config(16)
        cycles = [
            simulate(crafty, base.with_svf(mode="svf", ports=p)).cycles
            for p in (1, 2, 16)
        ]
        assert cycles[0] >= cycles[1] >= cycles[2]

    def test_no_squash_not_slower(self, eon_trace):
        base = table2_config(16)
        with_squash = simulate(
            eon_trace, base.with_svf(mode="svf", ports=2)
        )
        without = simulate(
            eon_trace, base.with_svf(mode="svf", ports=2, no_squash=True)
        )
        assert with_squash.svf_squashes > 0
        assert without.svf_squashes == 0
        assert without.cycles <= with_squash.cycles

    def test_stack_cache_mode_counts_hits(self, crafty):
        base = table2_config(16)
        stats = simulate(
            crafty, base.with_svf(mode="stack_cache", ports=2)
        )
        assert stats.stack_cache_hits > 0

    def test_svf_offloads_dl1(self, crafty):
        """Stack refs leave the DL1 entirely (paper Section 5.1)."""
        base = table2_config(16)
        baseline = simulate(crafty, base)
        svf = simulate(crafty, base.with_svf(mode="svf", ports=2))
        assert svf.dl1_accesses < baseline.dl1_accesses

    def test_no_addr_calc_helps_little_out_of_order(self, crafty):
        """Paper Figure 6: address-calc removal alone gains ~3%."""
        base = table2_config(16)
        baseline = simulate(crafty, base)
        relaxed = simulate(crafty, base.with_(no_addr_calc=True))
        assert relaxed.cycles <= baseline.cycles
        gain = baseline.cycles / relaxed.cycles
        assert gain < 1.25


class TestDeepPipelines:
    def test_agu_depth_slows_baseline(self, crafty):
        shallow = simulate(crafty, table2_config(16, agu_depth=0))
        deep = simulate(crafty, table2_config(16, agu_depth=8))
        assert deep.cycles > shallow.cycles

    def test_svf_value_grows_with_agu_depth(self, crafty):
        """Paper Section 7: deeper pipelines amplify the SVF's gain."""
        gains = []
        for depth in (0, 8):
            base = table2_config(16, agu_depth=depth)
            baseline = simulate(crafty, base)
            svf = simulate(crafty, base.with_svf(mode="svf", ports=2))
            gains.append(svf.speedup_over(baseline))
        assert gains[1] > gains[0]

    def test_morphed_refs_skip_agu_stages(self, crafty):
        """In ideal mode every stack ref morphs; with few non-stack
        refs the deep-AGU penalty mostly disappears."""
        base = table2_config(16, agu_depth=8)
        ideal = simulate(crafty, base.with_svf(mode="ideal"))
        baseline = simulate(crafty, base)
        assert ideal.cycles < baseline.cycles


class TestBanking:
    def test_banks_beat_one_true_port(self, crafty):
        base = table2_config(16)
        one_port = simulate(crafty, base.with_svf(mode="svf", ports=1))
        banked = simulate(
            crafty, base.with_svf(mode="svf", ports=1, banks=4)
        )
        assert banked.cycles < one_port.cycles

    def test_more_banks_not_slower(self, crafty):
        base = table2_config(16)
        cycles = [
            simulate(
                crafty, base.with_svf(mode="svf", ports=1, banks=b)
            ).cycles
            for b in (2, 4, 8)
        ]
        assert cycles[0] >= cycles[1] >= cycles[2]

    def test_banking_is_deterministic(self, gzip_trace):
        base = table2_config(16)
        config = base.with_svf(mode="svf", ports=1, banks=4)
        assert (
            simulate(gzip_trace, config).cycles
            == simulate(gzip_trace, config).cycles
        )


class TestAdaptiveDisable:
    def test_disables_under_squash_storm(self, eon_trace):
        base = table2_config(16)
        adaptive = simulate(
            eon_trace, base.with_svf(mode="svf", ports=2, adaptive=True)
        )
        plain = simulate(eon_trace, base.with_svf(mode="svf", ports=2))
        assert adaptive.extras.get("svf_disables", 0) > 0
        assert adaptive.svf_squashes < plain.svf_squashes
        assert adaptive.cycles <= plain.cycles

    def test_no_trigger_without_squashes(self, crafty):
        base = table2_config(16)
        adaptive = simulate(
            crafty, base.with_svf(mode="svf", ports=2, adaptive=True)
        )
        plain = simulate(crafty, base.with_svf(mode="svf", ports=2))
        assert adaptive.extras.get("svf_disables", 0) == 0
        assert adaptive.cycles == plain.cycles


class TestPaperShapes:
    def test_ideal_speedup_grows_with_width(self, crafty):
        """Paper Figure 5: 11% / 19% / 31% for 4/8/16-wide."""
        speedups = []
        for width in (4, 16):
            base = table2_config(width)
            baseline = simulate(crafty, base)
            ideal = simulate(crafty, base.with_svf(mode="ideal"))
            speedups.append(ideal.speedup_over(baseline))
        assert speedups[1] > speedups[0] > 1.0

    def test_doubling_l1_gains_nothing(self, crafty):
        """Paper Figure 6: 2x DL1 size is negligible."""
        base = table2_config(16)
        from repro.uarch.config import CacheConfig

        doubled = base.with_(
            dl1=CacheConfig(size=128 * 1024, assoc=4, latency=3)
        )
        baseline = simulate(crafty, base)
        bigger = simulate(crafty, doubled)
        assert abs(bigger.cycles - baseline.cycles) / baseline.cycles < 0.02

    def test_speedup_requires_same_window(self, crafty, gzip_trace):
        first = simulate(crafty, table2_config(16))
        second = simulate(gzip_trace[:100], table2_config(16))
        with pytest.raises(ValueError):
            second.speedup_over(first)
