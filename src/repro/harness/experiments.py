"""Experiment drivers — one per table/figure of the paper.

Every driver runs the full workload suite (or a named subset) over
fixed instruction windows and returns structured results; the
``render_*`` helpers in each result class produce the paper-style
table/series as text.  DESIGN.md section 4 maps each driver to its
paper artifact; EXPERIMENTS.md records paper-vs-measured values.

Timing experiments default to modest windows so the whole suite runs
in minutes under Python; pass ``max_instructions`` to scale up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.emulator.memory import STACK_BASE
from repro.harness.report import percent, render_series, render_table
from repro.trace.analysis import (
    AccessDistribution,
    OffsetLocality,
    StackDepthProfile,
    consume_trace,
)
from repro.trace.first_touch import FirstTouchProfile
from repro.trace.regions import AccessMethod
from repro.core.traffic import simulate_traffic
from repro.uarch.config import table2_config
from repro.uarch.pipeline import simulate, simulate_batch
from repro.uarch.stats import SimStats
from repro.workloads import (
    BENCHMARK_ORDER,
    TABLE1_INPUTS,
    all_inputs,
    cached_trace,
    validate_benchmarks,
    workload,
)

DEFAULT_TIMING_WINDOW = 80_000
DEFAULT_FUNCTIONAL_WINDOW = 150_000

# Per-process memo of finished timing runs, keyed by (benchmark,
# window, machine config).  The per-config cell split (one parallel
# cell per machine configuration) re-derives each figure's shared
# baseline in several cells; the memo collapses those repeats within
# one worker process.  Simulation is a pure function of
# (trace, config), so memoized and fresh results are identical.
_SIM_MEMO: Dict[Tuple, SimStats] = {}


def _memo_simulate(name, window, trace, config) -> SimStats:
    key = (name, window, config)
    stats = _SIM_MEMO.get(key)
    if stats is None:
        stats = simulate(trace, config)
        _SIM_MEMO[key] = stats
    return stats


def clear_sim_memo() -> None:
    """Drop all memoized timing runs (used by tests)."""
    _SIM_MEMO.clear()


def _suite(benchmarks: Optional[Sequence[str]]) -> List[str]:
    """Resolve a benchmark subset to canonical full names, validated.

    Unknown names raise one :class:`repro.errors.UsageError` listing
    every offender, so a mistyped ``--benchmarks`` fails before any
    simulation starts instead of as a KeyError deep inside a sweep.
    """
    if benchmarks is None:
        return list(BENCHMARK_ORDER)
    return validate_benchmarks(benchmarks)


def _trace_for(benchmark: str, max_instructions: int) -> list:
    return cached_trace(workload(benchmark), max_instructions)


def _no_benchmarks_table(headers: Sequence[str], title: str) -> str:
    """Placeholder table for an empty suite (never raise StopIteration)."""
    row = ["(no benchmarks selected)"] + [""] * (len(headers) - 1)
    return render_table(headers, [row], title=title)


# ---------------------------------------------------------------------------
# Table 1 / Table 2 — inventories
# ---------------------------------------------------------------------------


def table1_workloads() -> str:
    """Render the benchmark/input inventory (paper Table 1)."""
    rows = [
        (name, TABLE1_INPUTS[name], workload(name).description)
        for name in BENCHMARK_ORDER
    ]
    return render_table(
        ["Benchmark", "Input", "Modeled kernel"], rows,
        title="Table 1: SPEC CPU2000 integer benchmark",
    )


def table2_models() -> str:
    """Render the machine models (paper Table 2)."""
    configs = [table2_config(w) for w in (4, 8, 16)]
    rows = [
        ("Decode width", *[c.decode_width for c in configs]),
        ("Issue width", *[c.issue_width for c in configs]),
        ("Commit width", *[c.commit_width for c in configs]),
        ("IFQ size", *[c.ifq_size for c in configs]),
        ("RUU size", *[c.ruu_size for c in configs]),
        ("LSQ size", *[c.lsq_size for c in configs]),
        ("DL1 cache", *[f"{c.dl1.assoc}-way {c.dl1.size // 1024}KB" for c in configs]),
        ("DL1 hit", *[f"{c.dl1.latency} clks" for c in configs]),
        ("Unified L2", *[f"{c.l2.assoc}-way {c.l2.size // 1024}KB" for c in configs]),
        ("L2 hit", *[f"{c.l2.latency} clks" for c in configs]),
        ("Mem latency", *[f"{c.memory_latency} clks" for c in configs]),
        ("Store forwarding", *[f"{c.store_forward_latency} clks" for c in configs]),
        ("Int ALU / Mult", *[f"{c.int_alus}/{c.int_mults}" for c in configs]),
    ]
    return render_table(
        ["Component", "4-wide", "8-wide", "16-wide"], rows,
        title="Table 2: Processor Models",
    )


# ---------------------------------------------------------------------------
# Figures 1-3 — stack-reference characterization
# ---------------------------------------------------------------------------


@dataclass
class CharacterizationResult:
    """Figures 1-3 for the whole suite."""

    distributions: Dict[str, AccessDistribution] = field(default_factory=dict)
    depth_profiles: Dict[str, StackDepthProfile] = field(default_factory=dict)
    localities: Dict[str, OffsetLocality] = field(default_factory=dict)
    first_touch: Dict[str, FirstTouchProfile] = field(default_factory=dict)

    def render_fig1(self) -> str:
        rows = []
        for name, dist in self.distributions.items():
            rows.append(
                (
                    name,
                    f"{dist.memory_fraction:.2f}",
                    f"{dist.fraction(AccessMethod.STACK_SP):.2f}",
                    f"{dist.fraction(AccessMethod.STACK_FP):.2f}",
                    f"{dist.fraction(AccessMethod.STACK_GPR):.2f}",
                    f"{dist.fraction(AccessMethod.GLOBAL):.2f}",
                    f"{dist.fraction(AccessMethod.HEAP):.2f}",
                )
            )
        return render_table(
            ["Benchmark", "mem/instr", "stack-$sp", "stack-$fp",
             "stack-$gpr", "global", "heap"],
            rows,
            title="Figure 1: Run-time Memory Access Distribution",
        )

    def render_fig2(self, points: int = 60) -> str:
        lines = ["Figure 2: Stack Depth Variation (64-bit units)"]
        for name, profile in self.depth_profiles.items():
            series = [float(v) for v in profile.depth_series(points)]
            lines.append(render_series(f"{name:14s}", series))
        return "\n".join(lines)

    def render_fig3(self) -> str:
        rows = []
        for name, locality in self.localities.items():
            rows.append(
                (
                    name,
                    f"{locality.average_offset:.1f}",
                    f"{locality.fraction_within(300):.3f}",
                    f"{locality.fraction_within(8192):.3f}",
                    locality.beyond_tos,
                )
            )
        return render_table(
            ["Benchmark", "avg offset (B)", "<=300B", "<=8KB", "beyond TOS"],
            rows,
            title="Figure 3: Offset Locality within a Function",
        )

    def render_first_touch(self) -> str:
        """Section 7, contribution 1: first stack touches are stores."""
        rows = []
        for name, profile in self.first_touch.items():
            rows.append(
                (
                    name,
                    f"{profile.stack_first_store_fraction:.2f}",
                    f"{profile.other_first_store_fraction:.2f}",
                    profile.stack_first_stores + profile.stack_first_loads,
                )
            )
        return render_table(
            ["Benchmark", "stack 1st-store frac", "other 1st-store frac",
             "stack allocations touched"],
            rows,
            title="First-touch analysis (why per-word valid bits work)",
        )


def characterize(
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = DEFAULT_FUNCTIONAL_WINDOW,
) -> CharacterizationResult:
    """Run the Figure 1-3 analyses over the suite (one pass each)."""
    result = CharacterizationResult()
    for name in _suite(benchmarks):
        distribution = AccessDistribution()
        depth = StackDepthProfile(stack_base=STACK_BASE)
        locality = OffsetLocality()
        first_touch = FirstTouchProfile()
        consume_trace(
            _trace_for(name, max_instructions),
            (distribution, depth, locality, first_touch),
        )
        result.distributions[name] = distribution
        result.depth_profiles[name] = depth
        result.localities[name] = locality
        result.first_touch[name] = first_touch
    return result


# ---------------------------------------------------------------------------
# Figure 5 — ideal morphing limit study
# ---------------------------------------------------------------------------


@dataclass
class Fig5Result:
    """Speedups of an infinite, fully-ported SVF (paper Figure 5)."""

    #: benchmark -> {"4-wide": speedup, ..., "16-wide gshare": speedup}
    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def averages(self) -> Dict[str, float]:
        columns: Dict[str, List[float]] = {}
        for per_bench in self.speedups.values():
            for column, value in per_bench.items():
                columns.setdefault(column, []).append(value)
        return {
            column: sum(vals) / len(vals) for column, vals in columns.items()
        }

    def render(self) -> str:
        title = (
            "Figure 5: Speedup of Morphing All Stack Accesses "
            "(infinite SVF)"
        )
        if not self.speedups:
            return _no_benchmarks_table(["Benchmark"], title)
        columns = list(next(iter(self.speedups.values())).keys())
        rows = [
            (name, *[percent(per[c]) for c in columns])
            for name, per in self.speedups.items()
        ]
        averages = self.averages()
        rows.append(("average", *[percent(averages[c]) for c in columns]))
        return render_table(["Benchmark", *columns], rows, title=title)


def fig5_ideal_morphing(
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = DEFAULT_TIMING_WINDOW,
    widths: Sequence[int] = (4, 8, 16),
    include_gshare: bool = True,
) -> Fig5Result:
    """Figure 5: infinite SVF on 4/8/16-wide, plus 16-wide gshare.

    All of one benchmark's (baseline, ideal) pairs go through a single
    :func:`simulate_batch` pass — one trace walk per benchmark instead
    of one per column leg.
    """
    result = Fig5Result()
    pairs = []
    for width in widths:
        base = table2_config(width)
        pairs.append((f"{width}-wide", base, base.with_svf(mode="ideal")))
    if include_gshare:
        base = table2_config(16, branch_predictor="gshare")
        pairs.append(("16-wide gshare", base, base.with_svf(mode="ideal")))
    configs = [c for _, b, v in pairs for c in (b, v)]
    for name in _suite(benchmarks):
        trace = _trace_for(name, max_instructions)
        stats = simulate_batch(trace, configs)
        result.speedups[name] = {
            label: stats[2 * slot + 1].speedup_over(stats[2 * slot])
            for slot, (label, _, _) in enumerate(pairs)
        }
    return result


# ---------------------------------------------------------------------------
# Figure 6 — progressive performance analysis
# ---------------------------------------------------------------------------

FIG6_STEPS = ("L1_2x", "no_addr_cal_op", "svf_1p", "svf_2p", "svf_16p")


def _dl1_doubled(base):
    """The Figure 6 "L1_2x" machine: same DL1, twice the capacity."""
    return base.with_(
        dl1=base.dl1.__class__(
            size=base.dl1.size * 2,
            assoc=base.dl1.assoc,
            line_size=base.dl1.line_size,
            latency=base.dl1.latency,
        )
    )


@dataclass
class Fig6Result:
    """Progressive relaxations on the 16-wide machine (paper Figure 6)."""

    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def averages(self) -> Dict[str, float]:
        columns: Dict[str, List[float]] = {}
        for per_bench in self.speedups.values():
            for column, value in per_bench.items():
                columns.setdefault(column, []).append(value)
        return {c: sum(v) / len(v) for c, v in columns.items()}

    def render(self) -> str:
        title = "Figure 6: Progressive Performance Analysis (16-wide)"
        if not self.speedups:
            return _no_benchmarks_table(["Benchmark", *FIG6_STEPS], title)
        rows = [
            (name, *[percent(per[c]) for c in FIG6_STEPS])
            for name, per in self.speedups.items()
        ]
        averages = self.averages()
        rows.append(("average", *[percent(averages[c]) for c in FIG6_STEPS]))
        return render_table(["Benchmark", *FIG6_STEPS], rows, title=title)


def fig6_progressive(
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = DEFAULT_TIMING_WINDOW,
) -> Fig6Result:
    """Figure 6: 2x DL1, removed address calc, then SVF with 1/2/16 ports.

    The shared baseline and all five relaxations run as one batched
    pass per benchmark.
    """
    result = Fig6Result()
    base = table2_config(16)
    variants = [
        ("L1_2x", _dl1_doubled(base)),
        ("no_addr_cal_op", base.with_(no_addr_calc=True)),
    ] + [
        (f"svf_{ports}p", base.with_svf(mode="svf", ports=ports))
        for ports in (1, 2, 16)
    ]
    configs = [base] + [variant for _, variant in variants]
    for name in _suite(benchmarks):
        trace = _trace_for(name, max_instructions)
        stats = simulate_batch(trace, configs)
        baseline = stats[0]
        result.speedups[name] = {
            label: run.speedup_over(baseline)
            for (label, _), run in zip(variants, stats[1:])
        }
    return result


# ---------------------------------------------------------------------------
# Figures 7 & 8 — SVF vs stack cache
# ---------------------------------------------------------------------------

FIG7_CONFIGS = ("(4+0)", "(2+2)$", "(2+2)svf", "(2+2)svf_nosq")


def _fig7_four_port():
    """The Figure 7 "(4+0)" machine: 4 DL1 ports, +1 cycle latency."""
    four_port = table2_config(16, dl1_ports=4)
    return four_port.with_(
        dl1=four_port.dl1.__class__(
            size=four_port.dl1.size,
            assoc=four_port.dl1.assoc,
            line_size=four_port.dl1.line_size,
            latency=four_port.dl1.latency + 1,
        )
    )


@dataclass
class Fig7Result:
    """SVF vs stack cache vs widened baseline (paper Figure 7)."""

    #: benchmark -> config label -> speedup over the (2+0) baseline
    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: benchmark -> SimStats of the (2+2) SVF run (for Figure 8)
    svf_stats: Dict[str, SimStats] = field(default_factory=dict)

    def averages(self) -> Dict[str, float]:
        columns: Dict[str, List[float]] = {}
        for per_bench in self.speedups.values():
            for column, value in per_bench.items():
                columns.setdefault(column, []).append(value)
        return {c: sum(v) / len(v) for c, v in columns.items()}

    def render(self) -> str:
        title = (
            "Figure 7: SVF vs Stack Cache vs Baseline "
            "(speedup over (2+0))"
        )
        if not self.speedups:
            return _no_benchmarks_table(["Benchmark", *FIG7_CONFIGS], title)
        rows = [
            (name, *[percent(per[c]) for c in FIG7_CONFIGS])
            for name, per in self.speedups.items()
        ]
        averages = self.averages()
        rows.append(
            ("average", *[percent(averages[c]) for c in FIG7_CONFIGS])
        )
        return render_table(["Benchmark", *FIG7_CONFIGS], rows, title=title)

    def render_fig8(self) -> str:
        title = "Figure 8: Breakdown of SVF Reference Types"
        if not self.svf_stats:
            return _no_benchmarks_table(
                ["Benchmark", "fast loads", "fast stores", "re-routed",
                 "squashes"],
                title,
            )
        rows = []
        for name, stats in self.svf_stats.items():
            total = (
                stats.svf_fast_loads
                + stats.svf_fast_stores
                + stats.svf_rerouted
            ) or 1
            rows.append(
                (
                    name,
                    f"{stats.svf_fast_loads / total:.2f}",
                    f"{stats.svf_fast_stores / total:.2f}",
                    f"{stats.svf_rerouted / total:.2f}",
                    stats.svf_squashes,
                )
            )
        return render_table(
            ["Benchmark", "fast loads", "fast stores", "re-routed",
             "squashes"],
            rows,
            title=title,
        )


def fig7_svf_vs_stack_cache(
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = DEFAULT_TIMING_WINDOW,
    capacity_bytes: int = 8192,
) -> Fig7Result:
    """Figure 7 (and Figure 8 counters): port-matched comparison.

    (R+S) = R regular DL1 ports plus S SVF/stack-cache ports.  The
    (4+0) configuration pays one extra cycle of DL1 latency for its
    extra ports, as in the paper.
    """
    result = Fig7Result()
    base = table2_config(16, dl1_ports=2)
    configs = [
        base,
        _fig7_four_port(),
        base.with_svf(
            mode="stack_cache", ports=2, capacity_bytes=capacity_bytes
        ),
        base.with_svf(mode="svf", ports=2, capacity_bytes=capacity_bytes),
        base.with_svf(
            mode="svf", ports=2, capacity_bytes=capacity_bytes,
            no_squash=True,
        ),
    ]
    for name in _suite(benchmarks):
        trace = _trace_for(name, max_instructions)
        stats = simulate_batch(trace, configs)
        baseline, svf_stats = stats[0], stats[3]
        result.speedups[name] = {
            "(4+0)": stats[1].speedup_over(baseline),
            "(2+2)$": stats[2].speedup_over(baseline),
            "(2+2)svf": svf_stats.speedup_over(baseline),
            "(2+2)svf_nosq": stats[4].speedup_over(baseline),
        }
        result.svf_stats[name] = svf_stats
    return result


# ---------------------------------------------------------------------------
# Table 3 — memory traffic
# ---------------------------------------------------------------------------


@dataclass
class Table3Result:
    """Quad-word traffic per (benchmark, input) and size (paper Table 3)."""

    sizes: Sequence[int] = (2048, 4096, 8192)
    #: full_name -> {size: TrafficResult}
    traffic: Dict[str, Dict[int, object]] = field(default_factory=dict)

    def render(self) -> str:
        title = (
            "Table 3: Memory Traffic for Stack Cache and SVF (quad-words)"
        )
        headers = ["Benchmark"]
        for size in self.sizes:
            kb = size // 1024
            headers += [
                f"{kb}K $in", f"{kb}K SVFin", f"{kb}K $out", f"{kb}K SVFout",
            ]
        if not self.traffic:
            return _no_benchmarks_table(headers, title)
        rows = []
        for name, per_size in self.traffic.items():
            row = [name]
            for size in self.sizes:
                r = per_size[size]
                row += [
                    r.stack_cache_qw_in,
                    r.svf_qw_in,
                    r.stack_cache_qw_out,
                    r.svf_qw_out,
                ]
            rows.append(row)
        return render_table(headers, rows, title=title)


def table3_memory_traffic(
    max_instructions: int = DEFAULT_FUNCTIONAL_WINDOW,
    sizes: Sequence[int] = (2048, 4096, 8192),
    inputs: Optional[Iterable] = None,
) -> Table3Result:
    """Table 3: traffic of both schemes at 2/4/8 KB over every input."""
    result = Table3Result(sizes=tuple(sizes))
    for work in inputs if inputs is not None else all_inputs():
        trace = cached_trace(work, max_instructions)
        result.traffic[work.full_name] = {
            size: simulate_traffic(trace, capacity_bytes=size)
            for size in sizes
        }
    return result


# ---------------------------------------------------------------------------
# Table 4 — context-switch traffic
# ---------------------------------------------------------------------------


@dataclass
class Table4Result:
    """Average writeback bytes per context switch (paper Table 4)."""

    period: int = 0
    #: benchmark -> (stack cache avg bytes, SVF avg bytes)
    rows: Dict[str, tuple] = field(default_factory=dict)

    def render(self) -> str:
        title = (
            "Table 4: Memory Traffic on Context Switches "
            f"(bytes/switch, period {self.period})"
        )
        headers = ["Benchmark", "Stack Cache", "Stack Value File"]
        if not self.rows:
            return _no_benchmarks_table(headers, title)
        rows = [
            (name, f"{cache_bytes:.0f}", f"{svf_bytes:.0f}")
            for name, (cache_bytes, svf_bytes) in self.rows.items()
        ]
        return render_table(headers, rows, title=title)


def table4_context_switch(
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = DEFAULT_FUNCTIONAL_WINDOW,
    period: int = 25_000,
    capacity_bytes: int = 8192,
) -> Table4Result:
    """Table 4: periodic flush cost of both schemes.

    The paper flushes every 400 000 instructions of a 1-billion run;
    the period is scaled to our window length (same switches-per-
    window ratio).
    """
    result = Table4Result(period=period)
    for name in _suite(benchmarks):
        trace = _trace_for(name, max_instructions)
        traffic = simulate_traffic(
            trace,
            capacity_bytes=capacity_bytes,
            context_switch_period=period,
        )
        result.rows[name] = (
            traffic.stack_cache_switch_bytes_avg,
            traffic.svf_switch_bytes_avg,
        )
    return result


# ---------------------------------------------------------------------------
# Figure 9 — SVF speedups on 1- and 2-ported designs
# ---------------------------------------------------------------------------

FIG9_CONFIGS = ("(1+1)", "(1+2)", "(2+1)", "(2+2)")


@dataclass
class Fig9Result:
    """Speedups of adding an SVF to 1-/2-ported baselines (Figure 9)."""

    #: benchmark -> config label -> speedup over the matching baseline
    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def averages(self) -> Dict[str, float]:
        columns: Dict[str, List[float]] = {}
        for per_bench in self.speedups.values():
            for column, value in per_bench.items():
                columns.setdefault(column, []).append(value)
        return {c: sum(v) / len(v) for c, v in columns.items()}

    def render(self) -> str:
        title = (
            "Figure 9: SVF Speedup over Same-Ported Baseline "
            "((R+S) vs (R+0))"
        )
        if not self.speedups:
            return _no_benchmarks_table(["Benchmark", *FIG9_CONFIGS], title)
        rows = [
            (name, *[percent(per[c]) for c in FIG9_CONFIGS])
            for name, per in self.speedups.items()
        ]
        averages = self.averages()
        rows.append(
            ("average", *[percent(averages[c]) for c in FIG9_CONFIGS])
        )
        return render_table(["Benchmark", *FIG9_CONFIGS], rows, title=title)


def fig9_svf_speedup(
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = DEFAULT_TIMING_WINDOW,
    capacity_bytes: int = 8192,
) -> Fig9Result:
    """Figure 9: (R+S) SVF speedup relative to the (R+0) baseline.

    Each (R+0) baseline appears in two pairs; the batched pass dedups
    it, so one benchmark costs 6 walks' worth of work in one pass
    instead of 8 separate simulations.
    """
    result = Fig9Result()
    pairs = []
    for regular_ports in (1, 2):
        base = table2_config(16, dl1_ports=regular_ports)
        for svf_ports in (1, 2):
            pairs.append((
                f"({regular_ports}+{svf_ports})",
                base,
                base.with_svf(
                    mode="svf",
                    ports=svf_ports,
                    capacity_bytes=capacity_bytes,
                ),
            ))
    configs = [c for _, b, v in pairs for c in (b, v)]
    for name in _suite(benchmarks):
        trace = _trace_for(name, max_instructions)
        stats = simulate_batch(trace, configs)
        result.speedups[name] = {
            label: stats[2 * slot + 1].speedup_over(stats[2 * slot])
            for slot, (label, _, _) in enumerate(pairs)
        }
    return result


# ---------------------------------------------------------------------------
# Per-config cells — one (benchmark, machine config) computation each.
#
# The report engine now plans whole-row cells (one batched trace pass
# per benchmark and figure, see repro.harness.runall._plan_cells), but
# the per-config split stays supported: chaos/fault tooling and tests
# still target individual (benchmark, config) cells, and the machine-
# pair helpers below also feed the section content keys.  Each function
# reproduces exactly one column of the corresponding full driver above
# — same trace, same configs, same arithmetic — so a report assembled
# from per-config cells is bit-identical to one assembled from batched
# whole-row cells.  The shared baselines these cells re-derive are
# collapsed by the per-process _SIM_MEMO.
# ---------------------------------------------------------------------------

FIG5_CONFIGS = ("4-wide", "8-wide", "16-wide", "16-wide gshare")


def _config_error(figure: str, config: str, known: Sequence[str]) -> ValueError:
    return ValueError(
        f"unknown {figure} config {config!r} (have {', '.join(known)})"
    )


def fig5_machine_pair(config: str):
    """(baseline, variant) machine configs of one Figure 5 column."""
    if config == "16-wide gshare":
        base = table2_config(16, branch_predictor="gshare")
    elif config in ("4-wide", "8-wide", "16-wide"):
        base = table2_config(int(config.split("-", 1)[0]))
    else:
        raise _config_error("Figure 5", config, FIG5_CONFIGS)
    return base, base.with_svf(mode="ideal")


def fig6_machine_pair(config: str):
    """(baseline, variant) machine configs of one Figure 6 column."""
    base = table2_config(16)
    if config == "L1_2x":
        variant = _dl1_doubled(base)
    elif config == "no_addr_cal_op":
        variant = base.with_(no_addr_calc=True)
    elif config in ("svf_1p", "svf_2p", "svf_16p"):
        variant = base.with_svf(mode="svf", ports=int(config[4:-1]))
    else:
        raise _config_error("Figure 6", config, FIG6_STEPS)
    return base, variant


def fig7_machine_pair(config: str, capacity_bytes: int = 8192):
    """(baseline, variant) machine configs of one Figure 7 column."""
    base = table2_config(16, dl1_ports=2)
    if config == "(4+0)":
        variant = _fig7_four_port()
    elif config == "(2+2)$":
        variant = base.with_svf(
            mode="stack_cache", ports=2, capacity_bytes=capacity_bytes
        )
    elif config == "(2+2)svf":
        variant = base.with_svf(
            mode="svf", ports=2, capacity_bytes=capacity_bytes
        )
    elif config == "(2+2)svf_nosq":
        variant = base.with_svf(
            mode="svf", ports=2, capacity_bytes=capacity_bytes,
            no_squash=True,
        )
    else:
        raise _config_error("Figure 7", config, FIG7_CONFIGS)
    return base, variant


def fig9_machine_pair(config: str, capacity_bytes: int = 8192):
    """(baseline, variant) machine configs of one Figure 9 column."""
    if config not in FIG9_CONFIGS:
        raise _config_error("Figure 9", config, FIG9_CONFIGS)
    regular_ports, svf_ports = int(config[1]), int(config[3])
    base = table2_config(16, dl1_ports=regular_ports)
    variant = base.with_svf(
        mode="svf", ports=svf_ports, capacity_bytes=capacity_bytes
    )
    return base, variant


def fig5_config_speedup(
    benchmark: str,
    config: str,
    max_instructions: int = DEFAULT_TIMING_WINDOW,
) -> float:
    """One column of Figure 5 for one benchmark."""
    name = _suite([benchmark])[0]
    base, ideal_config = fig5_machine_pair(config)
    trace = _trace_for(name, max_instructions)
    baseline = _memo_simulate(name, max_instructions, trace, base)
    ideal = _memo_simulate(name, max_instructions, trace, ideal_config)
    return ideal.speedup_over(baseline)


def fig6_config_speedup(
    benchmark: str,
    config: str,
    max_instructions: int = DEFAULT_TIMING_WINDOW,
) -> float:
    """One column of Figure 6 for one benchmark."""
    name = _suite([benchmark])[0]
    base, variant = fig6_machine_pair(config)
    trace = _trace_for(name, max_instructions)
    baseline = _memo_simulate(name, max_instructions, trace, base)
    run = _memo_simulate(name, max_instructions, trace, variant)
    return run.speedup_over(baseline)


def fig7_config_result(
    benchmark: str,
    config: str,
    max_instructions: int = DEFAULT_TIMING_WINDOW,
    capacity_bytes: int = 8192,
) -> Tuple[float, Optional[SimStats]]:
    """One column of Figure 7; the "(2+2)svf" column also returns the
    run's :class:`SimStats` (the Figure 8 reference breakdown)."""
    name = _suite([benchmark])[0]
    base, variant = fig7_machine_pair(config, capacity_bytes)
    trace = _trace_for(name, max_instructions)
    baseline = _memo_simulate(name, max_instructions, trace, base)
    run = _memo_simulate(name, max_instructions, trace, variant)
    stats = run if config == "(2+2)svf" else None
    return run.speedup_over(baseline), stats


def fig9_config_speedup(
    benchmark: str,
    config: str,
    max_instructions: int = DEFAULT_TIMING_WINDOW,
    capacity_bytes: int = 8192,
) -> float:
    """One column of Figure 9 for one benchmark."""
    name = _suite([benchmark])[0]
    base, variant = fig9_machine_pair(config, capacity_bytes)
    trace = _trace_for(name, max_instructions)
    baseline = _memo_simulate(name, max_instructions, trace, base)
    run = _memo_simulate(name, max_instructions, trace, variant)
    return run.speedup_over(baseline)
