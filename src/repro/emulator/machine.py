"""Functional emulator for the Alpha-like ISA.

Executes an assembled :class:`~repro.isa.instructions.Program` and, when
given a trace sink, emits one :class:`~repro.trace.records.TraceRecord`
per retired instruction.  The emulator is purely functional (no timing):
the out-of-order timing model in :mod:`repro.uarch` replays the emitted
stream, which carries full register- and memory-dependence information.

Static instructions are pre-decoded once into flat tuples so the
interpretation loop stays cheap even for million-instruction runs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.emulator.memory import (
    DATA_BASE,
    Memory,
    STACK_BASE,
    TEXT_BASE,
)
from repro.isa.instructions import OpClass, Program
from repro.isa.registers import RA, SP, ZERO
from repro.trace.records import TraceRecord

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def _signed(value: int) -> int:
    return value - (1 << 64) if value & _SIGN64 else value


class EmulatorError(Exception):
    """Raised on runtime faults (bad jump, division by zero, ...)."""


class Machine:
    """Functional machine state plus the interpretation loop."""

    def __init__(self, program: Program, stack_base: int = STACK_BASE):
        self.program = program
        self.memory = Memory()
        self.registers: List[int] = [0] * 32
        self.stack_base = stack_base
        self.registers[SP] = stack_base
        self.output: List[int] = []
        self.instruction_count = 0
        self.halted = False
        self.memory.write_bytes(DATA_BASE, bytes(program.data))
        self._decoded = [self._decode(instr) for instr in program.instructions]
        self._pc_index = program.label_index(program.entry)
        # Sentinel return address: returning here halts the machine.
        self._halt_address = TEXT_BASE + 4 * len(program.instructions) + 4
        self.registers[RA] = self._halt_address

    @staticmethod
    def _decode(instr):
        return (
            instr.op,
            instr.op_class,
            instr.source_registers(),
            instr.destination_register(),
            instr.rd,
            instr.ra,
            instr.rb,
            instr.imm if instr.imm is not None else 0,
            instr.target_index,
            instr.spec.mem_size,
            instr.is_conditional,
        )

    @property
    def pc(self) -> int:
        """Current program counter as a byte address."""
        return TEXT_BASE + 4 * self._pc_index

    def run(
        self,
        max_instructions: Optional[int] = None,
        trace_sink=None,
    ) -> int:
        """Run until ``halt`` or ``max_instructions``.

        ``trace_sink`` is any object with ``append`` (e.g. a list, or a
        streaming analysis).  Returns the number of instructions
        retired.
        """
        registers = self.registers
        memory = self.memory
        decoded = self._decoded
        text_base = TEXT_BASE
        count = self.instruction_count
        limit = max_instructions
        emit = trace_sink.append if trace_sink is not None else None
        pc_index = self._pc_index
        num_instructions = len(decoded)

        while not self.halted:
            if limit is not None and count - self.instruction_count >= limit:
                break
            if not 0 <= pc_index < num_instructions:
                raise EmulatorError(
                    f"pc out of range: index {pc_index} "
                    f"(0x{text_base + 4 * pc_index:x})"
                )
            (
                op,
                op_class,
                srcs,
                dst,
                rd,
                ra,
                rb,
                imm,
                target_index,
                mem_size,
                is_conditional,
            ) = decoded[pc_index]
            pc = text_base + 4 * pc_index
            next_index = pc_index + 1
            addr = 0
            taken = False
            is_load = op_class is OpClass.LOAD
            is_store = op_class is OpClass.STORE

            if is_load:
                addr = (registers[rb] + imm) & _MASK64
                value = (
                    memory.load(addr, 8)
                    if mem_size == 8
                    else memory.load_signed(addr, 4)
                )
                if rd != ZERO:
                    registers[rd] = value
            elif is_store:
                addr = (registers[rb] + imm) & _MASK64
                memory.store(addr, registers[rd], mem_size)
            elif op == "lda":
                if rd != ZERO:
                    registers[rd] = (registers[rb] + imm) & _MASK64
            elif op_class is OpClass.IALU or op_class is OpClass.IMULT:
                left = registers[ra]
                right = registers[rb] if rb is not None else imm & _MASK64
                result = self._alu(op, left, right)
                if rd != ZERO:
                    registers[rd] = result
            elif is_conditional:
                value = _signed(registers[ra])
                taken = (
                    (op == "beq" and value == 0)
                    or (op == "bne" and value != 0)
                    or (op == "blt" and value < 0)
                    or (op == "ble" and value <= 0)
                    or (op == "bgt" and value > 0)
                    or (op == "bge" and value >= 0)
                )
                if taken:
                    next_index = target_index
            elif op == "br":
                taken = True
                next_index = target_index
            elif op == "bsr":
                taken = True
                registers[RA] = text_base + 4 * (pc_index + 1)
                next_index = target_index
            elif op == "jsr":
                taken = True
                destination = registers[rb]
                registers[RA] = text_base + 4 * (pc_index + 1)
                next_index = self._index_of(destination)
            elif op == "ret" or op == "jmp":
                taken = True
                destination = registers[rb]
                if destination == self._halt_address:
                    self.halted = True
                    next_index = pc_index
                else:
                    next_index = self._index_of(destination)
            elif op == "print":
                self.output.append(_signed(registers[ra]))
            elif op == "halt":
                self.halted = True
                next_index = pc_index
            elif op == "nop":
                pass
            else:  # pragma: no cover - opcode table is closed
                raise EmulatorError(f"unimplemented opcode {op!r}")

            if emit is not None:
                sp_update = dst == SP
                emit(
                    TraceRecord(
                        count,
                        pc,
                        op,
                        op_class,
                        srcs,
                        dst,
                        is_load=is_load,
                        is_store=is_store,
                        addr=addr,
                        size=mem_size,
                        base_reg=rb if (is_load or is_store) else None,
                        displacement=imm,
                        is_branch=op_class
                        in (OpClass.BRANCH, OpClass.CALL, OpClass.RETURN),
                        is_conditional=is_conditional,
                        taken=taken,
                        next_pc=text_base + 4 * next_index,
                        sp_value=registers[SP],
                        sp_update=sp_update,
                        sp_update_immediate=(
                            imm if sp_update and op == "lda" and rb == SP else 0
                        ),
                    )
                )
            count += 1
            pc_index = next_index

        executed = count - self.instruction_count
        self.instruction_count = count
        self._pc_index = pc_index
        return executed

    def _index_of(self, address: int) -> int:
        if address % 4 != 0 or address < TEXT_BASE:
            raise EmulatorError(f"bad jump target 0x{address:x}")
        return (address - TEXT_BASE) // 4

    @staticmethod
    def _alu(op: str, left: int, right: int) -> int:
        if op == "addq":
            return (left + right) & _MASK64
        if op == "subq":
            return (left - right) & _MASK64
        if op == "mulq":
            return (left * right) & _MASK64
        if op == "divq" or op == "remq":
            divisor = _signed(right)
            if divisor == 0:
                raise EmulatorError("integer division by zero")
            dividend = _signed(left)
            quotient = abs(dividend) // abs(divisor)
            if (dividend < 0) != (divisor < 0):
                quotient = -quotient
            if op == "divq":
                return quotient & _MASK64
            return (dividend - quotient * divisor) & _MASK64
        if op == "and":
            return left & right
        if op == "or":
            return left | right
        if op == "xor":
            return left ^ right
        if op == "bic":
            return left & ~right & _MASK64
        if op == "sll":
            return (left << (right & 63)) & _MASK64
        if op == "srl":
            return (left & _MASK64) >> (right & 63)
        if op == "sra":
            return (_signed(left) >> (right & 63)) & _MASK64
        if op == "cmpeq":
            return 1 if left == right else 0
        if op == "cmplt":
            return 1 if _signed(left) < _signed(right) else 0
        if op == "cmple":
            return 1 if _signed(left) <= _signed(right) else 0
        if op == "cmpult":
            return 1 if left < right else 0
        raise EmulatorError(f"unimplemented ALU op {op!r}")


def run_program(
    program: Program,
    max_instructions: Optional[int] = None,
    collect_trace: bool = True,
):
    """Run ``program`` to completion (or the instruction limit).

    Returns ``(machine, trace)`` where ``trace`` is a list of
    :class:`TraceRecord` (empty when ``collect_trace`` is False).
    """
    machine = Machine(program)
    trace: List[TraceRecord] = []
    machine.run(
        max_instructions=max_instructions,
        trace_sink=trace if collect_trace else None,
    )
    return machine, trace
