"""Unit tests for the MiniC lexer."""

import pytest

from repro.lang.lexer import LexerError, tokenize


def kinds_and_texts(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


class TestTokens:
    def test_keywords_vs_identifiers(self):
        tokens = kinds_and_texts("int x while whilex")
        assert tokens == [
            ("keyword", "int"),
            ("ident", "x"),
            ("keyword", "while"),
            ("ident", "whilex"),
        ]

    def test_decimal_and_hex_literals(self):
        tokens = kinds_and_texts("42 0x1F 0")
        assert tokens == [
            ("int_lit", "42"),
            ("int_lit", "0x1F"),
            ("int_lit", "0"),
        ]

    def test_maximal_munch_operators(self):
        tokens = [t for _, t in kinds_and_texts("a<<=b>>c<=d==e&&f")]
        assert tokens == ["a", "<<=", "b", ">>", "c", "<=", "d", "==",
                          "e", "&&", "f"]

    def test_compound_assign_operators(self):
        tokens = [t for _, t in kinds_and_texts("x+=1; y^=2; z|=3; w&=4;")]
        assert "+=" in tokens and "^=" in tokens
        assert "|=" in tokens and "&=" in tokens

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_is_last(self):
        assert tokenize("x")[-1].kind == "eof"
        assert tokenize("")[-1].kind == "eof"


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds_and_texts("a // rest of line\nb") == [
            ("ident", "a"), ("ident", "b")
        ]

    def test_block_comment_skipped(self):
        assert kinds_and_texts("a /* b\n c */ d") == [
            ("ident", "a"), ("ident", "d")
        ]

    def test_block_comment_tracks_lines(self):
        tokens = tokenize("/* x\ny */ z")
        assert tokens[0].line == 2

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError, match="unterminated"):
            tokenize("a /* never closed")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexerError, match="unexpected"):
            tokenize("a @ b")

    def test_error_carries_position(self):
        with pytest.raises(LexerError, match="line 2"):
            tokenize("ok\n   `")
