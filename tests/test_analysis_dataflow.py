"""The generic worklist solver, exercised on hand-written assembly."""

from repro.analysis import SetProblem, build_cfg, solve
from repro.analysis.dataflow import BACKWARD, UNIVERSE
from repro.isa import assemble

DIAMOND = """
.text
main:
    lda   sp, -32(sp)
    stq   a0, 0(sp)
    beq   a0, main$else
    stq   a0, 8(sp)
    br    main$join
main$else:
    stq   a0, 16(sp)
main$join:
    ldq   t0, 0(sp)
    lda   sp, 32(sp)
    ret
"""

LOOP = """
.text
main:
    lda   sp, -16(sp)
    stq   zero, 0(sp)
main$head:
    ldq   t0, 0(sp)
    beq   t0, main$end
    stq   t0, 8(sp)
    br    main$head
main$end:
    lda   sp, 16(sp)
    ret
"""


class _WrittenOffsets(SetProblem):
    """Must-analysis: sp-displacements definitely stored (test lattice).

    Works on raw displacements (not entry-relative offsets) so the
    test does not depend on the stackcheck canonicalization.
    """

    may = False
    direction = "forward"

    def step(self, cfg, index, value):
        instruction = cfg.instruction(index)
        if instruction.is_store:
            value.add(instruction.imm)


class _LiveOffsets(SetProblem):
    """May-analysis (backward): displacements with a later load."""

    may = True
    direction = BACKWARD

    def step(self, cfg, index, value):
        instruction = cfg.instruction(index)
        if instruction.is_load:
            value.add(instruction.imm)
        elif instruction.is_store:
            value.discard(instruction.imm)


def _main_cfg(source):
    return build_cfg(assemble(source)).functions["main"]


class TestForwardMust:
    def test_intersection_at_join(self):
        cfg = _main_cfg(DIAMOND)
        result = solve(cfg, _WrittenOffsets())
        join = cfg.block_at(cfg.program.labels["main$join"])
        # 0(sp) is written on both paths; 8/16 only on one each.
        assert result.inputs[join.id] == frozenset({0})

    def test_branch_outputs_differ(self):
        cfg = _main_cfg(DIAMOND)
        result = solve(cfg, _WrittenOffsets())
        then_block = cfg.block_at(3)  # the `stq a0, 8(sp)` arm
        else_block = cfg.block_at(cfg.program.labels["main$else"])
        assert result.outputs[then_block.id] == frozenset({0, 8})
        assert result.outputs[else_block.id] == frozenset({0, 16})

    def test_entry_boundary_is_empty(self):
        cfg = _main_cfg(DIAMOND)
        result = solve(cfg, _WrittenOffsets())
        assert result.inputs[cfg.entry.id] == frozenset()


class TestBackwardMay:
    def test_liveness_through_loop(self):
        cfg = _main_cfg(LOOP)
        result = solve(cfg, _LiveOffsets())
        entry = cfg.entry
        # At the end of the entry block, 0(sp) is live (loop reads it).
        assert 0 in result.inputs[entry.id]

    def test_nothing_live_at_exit(self):
        cfg = _main_cfg(LOOP)
        result = solve(cfg, _LiveOffsets())
        (exit_block,) = cfg.exit_blocks()
        assert result.inputs[exit_block.id] == frozenset()

    def test_store_8_is_dead(self):
        cfg = _main_cfg(LOOP)
        result = solve(cfg, _LiveOffsets())
        # 8(sp) is stored in the loop body but never loaded anywhere:
        # it must not be live at any block boundary.
        for block in cfg.blocks:
            assert 8 not in result.inputs[block.id]
            assert 8 not in result.outputs[block.id]


class TestFixpointMechanics:
    def test_loop_converges_quickly(self):
        cfg = _main_cfg(LOOP)
        result = solve(cfg, _WrittenOffsets())
        # Worklist in RPO: a reducible loop needs only a couple of
        # sweeps, far fewer than the naive quadratic bound.
        assert result.iterations <= 4 * len(cfg.blocks)

    def test_loop_head_must_facts(self):
        cfg = _main_cfg(LOOP)
        result = solve(cfg, _WrittenOffsets())
        head = cfg.block_at(cfg.program.labels["main$head"])
        # 0(sp) written before the loop on every path; 8(sp) only
        # inside the body, so it is not a must-fact at the head.
        assert result.inputs[head.id] == frozenset({0})

    def test_universe_sentinel_meets_as_identity(self):
        problem = _WrittenOffsets()
        some = frozenset({1, 2})
        assert problem.meet(UNIVERSE, some) == some
        assert problem.meet(some, UNIVERSE) == some

    def test_may_meet_is_union(self):
        problem = _LiveOffsets()
        assert problem.meet(frozenset({1}), frozenset({2})) == frozenset(
            {1, 2}
        )
