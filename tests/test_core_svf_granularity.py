"""Unit tests for configurable valid/dirty-bit granularity (§3.3)."""

import pytest

from repro.core.svf import StackValueFile

BASE = 0x7FF00000


def svf(granularity, capacity=1024):
    unit = StackValueFile(capacity_bytes=capacity, granularity=granularity)
    unit.update_sp(BASE)
    return unit


class TestValidation:
    def test_granularity_must_be_multiple_of_word(self):
        with pytest.raises(ValueError):
            StackValueFile(1024, granularity=12)
        with pytest.raises(ValueError):
            StackValueFile(1024, granularity=0)

    def test_capacity_must_be_multiple_of_granularity(self):
        with pytest.raises(ValueError):
            StackValueFile(1000, granularity=16)


class TestCoarseGranules:
    def test_quad_word_store_to_coarse_granule_fills(self):
        """The paper's warning: coarser than 64 bits costs traffic —
        an 8-byte store no longer covers a whole granule, so the rest
        must be read in."""
        unit = svf(granularity=32)
        outcome = unit.access(BASE + 8, 8, is_store=True)
        assert outcome.filled == 4  # whole 32-byte granule
        assert unit.qw_in == 4

    def test_fine_granularity_store_free(self):
        unit = svf(granularity=8)
        outcome = unit.access(BASE + 8, 8, is_store=True)
        assert outcome.filled == 0

    def test_neighbors_in_same_granule_share_validity(self):
        unit = svf(granularity=32)
        unit.access(BASE + 0, 8, is_store=True)  # fills granule 0
        outcome = unit.access(BASE + 24, 8, is_store=False)
        assert outcome.hit  # same granule, already valid

    def test_writeback_is_whole_granule(self):
        unit = svf(granularity=16, capacity=256)
        unit.access(BASE + 248, 8, is_store=True)  # dirty top granule
        written = unit.update_sp(BASE - 64)
        assert written == 2  # 16-byte granule = 2 quad-words

    def test_context_switch_flushes_granules(self):
        unit = svf(granularity=32)
        unit.access(BASE, 8, is_store=True)
        flushed = unit.context_switch()
        assert flushed == 32

    def test_valid_words_scale_with_granularity(self):
        unit = svf(granularity=32)
        unit.access(BASE, 8, is_store=True)
        assert unit.valid_words == 4

    @pytest.mark.parametrize("granularity", [8, 16, 32, 64])
    def test_traffic_never_decreases_with_coarseness(self, granularity):
        """Monotonicity on a fixed access pattern."""
        fine = svf(granularity=8, capacity=512)
        coarse = svf(granularity=granularity, capacity=512)
        pattern = [
            ("sp", -128), ("store", 0), ("store", 8), ("load", 16),
            ("sp", +128), ("sp", -256), ("store", 64), ("load", 64),
            ("sp", +256),
        ]
        for unit in (fine, coarse):
            sp = BASE
            for kind, argument in pattern:
                if kind == "sp":
                    sp += argument
                    unit.update_sp(sp)
                else:
                    unit.access(sp + argument, 8, kind == "store")
        assert (
            coarse.qw_in + coarse.qw_out >= fine.qw_in + fine.qw_out
        )


class TestPipelinePlumbing:
    def test_granularity_reaches_the_pipeline_svf(self, gzip_trace):
        from repro.uarch.config import table2_config
        from repro.uarch.pipeline import simulate

        base = table2_config(16)
        fine = simulate(
            gzip_trace, base.with_svf(mode="svf", ports=2, granularity=8)
        )
        coarse = simulate(
            gzip_trace,
            base.with_svf(mode="svf", ports=2, granularity=32),
        )
        # Coarse granularity can only add fills, never remove them.
        assert coarse.svf_fills >= fine.svf_fills
