"""Figure 7 — SVF vs decoupled stack cache vs widened baseline.

Paper shape: the (2+2) SVF outperforms the (2+2) stack cache on
average (~9%, 14% with no_squash), with eon the exception unless the
no_squash code-generation option removes its gpr-store/sp-load
collisions; 253.perlbmk is the stack-cache anomaly (its stack working
set misses in an 8 KB stack cache).
"""

from repro.harness import fig7_svf_vs_stack_cache


def test_fig7(benchmark, emit, timing_window):
    result = benchmark.pedantic(
        lambda: fig7_svf_vs_stack_cache(max_instructions=timing_window),
        rounds=1,
        iterations=1,
    )
    emit("fig7_svf_vs_stackcache", result.render())
    emit("fig8_reference_breakdown", result.render_fig8())

    averages = result.averages()
    # SVF beats the stack cache on average; no_squash widens the gap.
    assert averages["(2+2)svf_nosq"] > averages["(2+2)$"]
    assert averages["(2+2)svf_nosq"] >= averages["(2+2)svf"]

    # eon: squashes make plain SVF lose; no_squash recovers it.
    eon = result.speedups["252.eon"]
    assert eon["(2+2)svf_nosq"] > eon["(2+2)svf"]
    assert result.svf_stats["252.eon"].svf_squashes > 0
