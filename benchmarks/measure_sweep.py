"""Measure the batched sweep engine: one trace walk per workload.

Regenerates ``benchmarks/results/sweep_timing.txt``::

    PYTHONPATH=src python benchmarks/measure_sweep.py [--jobs 1]

For each committed timing suite (``svf_size.yaml``, ``banking.yaml``)
three runs are timed: batched on a cold cache, unbatched
(``--no-batch`` semantics) on a separate cold cache, and batched again
on the warm cache the first run left behind.  Every run's
``run_table.json`` and ``summary.txt`` are compared byte-for-byte, so
the artifact doubles as a determinism check for the batching tentpole:
fusing a workload's grid into one trace pass must not move a single
byte of output.

Each measurement runs in a fresh interpreter (``--run-one`` re-invokes
this script).  A long-lived parent would hand later runs warm
module-level state — decoded programs, in-process trace caches — left
behind by earlier ones, and the "cold" unbatched leg would borrow the
batched leg's warmth (or vice versa).  A subprocess per measurement is
the only reliable cold start.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from bench_json import write_bench_json

RESULTS = Path(__file__).parent / "results" / "sweep_timing.txt"
SUITES_DIR = Path(__file__).parent / "suites"
SUITES = ("svf_size", "banking")


def run_one(args) -> int:
    """Child mode: one timed sweep run, JSON result on stdout."""
    from repro import api

    options = api.SweepOptions(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=args.cache_dir is not None,
        batch=bool(args.batch),
    )
    started = time.perf_counter()
    result = api.sweep(args.run_one, options=options)
    elapsed = time.perf_counter() - started
    out = Path(args.out_prefix)
    out.with_suffix(".run_table.json").write_text(
        result.run_table_json() + "\n"
    )
    out.with_suffix(".summary.txt").write_text(result.render_summary() + "\n")
    print(
        json.dumps(
            {
                "seconds": elapsed,
                "rows": len(result.rows),
                "cache_hits": sum(1 for r in result.rows if r.cache_hit),
            }
        )
    )
    return 0


def timed_run(suite: str, batch: bool, cache_dir: str, args) -> tuple:
    """Time one sweep run in a fresh interpreter."""
    out_prefix = Path(cache_dir) / f"run-{'batch' if batch else 'plain'}"
    proc = subprocess.run(
        [
            sys.executable,
            __file__,
            "--run-one",
            str(SUITES_DIR / f"{suite}.yaml"),
            "--batch",
            str(int(batch)),
            "--jobs",
            str(args.jobs),
            "--cache-dir",
            cache_dir,
            "--out-prefix",
            str(out_prefix),
        ],
        capture_output=True,
        text=True,
        check=True,
    )
    payload = json.loads(proc.stdout.strip().splitlines()[-1])
    texts = tuple(
        out_prefix.with_suffix(suffix).read_text()
        for suffix in (".run_table.json", ".summary.txt")
    )
    return payload, texts


def measure_suite(suite: str, args) -> dict:
    """Cold batched, cold unbatched, warm batched — fresh caches."""
    batched_dir = tempfile.mkdtemp(prefix="repro-measure-sweep-")
    plain_dir = tempfile.mkdtemp(prefix="repro-measure-sweep-")
    try:
        cold, cold_texts = timed_run(suite, True, batched_dir, args)
        plain, plain_texts = timed_run(suite, False, plain_dir, args)
        warm, warm_texts = timed_run(suite, True, batched_dir, args)
    finally:
        shutil.rmtree(batched_dir, ignore_errors=True)
        shutil.rmtree(plain_dir, ignore_errors=True)
    return {
        "rows": cold["rows"],
        "batched_cold_seconds": cold["seconds"],
        "unbatched_cold_seconds": plain["seconds"],
        "batched_warm_seconds": warm["seconds"],
        "warm_cache_hits": warm["cache_hits"],
        "identical": cold_texts == plain_texts == warm_texts,
    }


def main() -> int:
    cli = argparse.ArgumentParser(description=__doc__)
    cli.add_argument("--jobs", type=int, default=1)
    cli.add_argument("--run-one", default=None, help=argparse.SUPPRESS)
    cli.add_argument("--batch", type=int, default=1, help=argparse.SUPPRESS)
    cli.add_argument("--cache-dir", default=None, help=argparse.SUPPRESS)
    cli.add_argument("--out-prefix", default=None, help=argparse.SUPPRESS)
    args = cli.parse_args()
    if args.run_one is not None:
        return run_one(args)

    measured = {suite: measure_suite(suite, args) for suite in SUITES}

    all_identical = all(m["identical"] for m in measured.values())
    lines = [
        "Batched sweep engine: one trace walk per workload",
        f"(--jobs {args.jobs}; host: {os.cpu_count()} CPU(s); "
        "each run in a fresh interpreter)",
        "",
        f"{'suite':10s} {'rows':>4s} {'batched':>9s} {'unbatched':>9s} "
        f"{'speedup':>7s} {'warm':>7s}",
    ]
    for suite, m in measured.items():
        speedup = m["unbatched_cold_seconds"] / m["batched_cold_seconds"]
        lines.append(
            f"{suite:10s} {m['rows']:4d} "
            f"{m['batched_cold_seconds']:8.1f}s "
            f"{m['unbatched_cold_seconds']:8.1f}s "
            f"{speedup:6.2f}x "
            f"{m['batched_warm_seconds']:6.1f}s"
        )
    lines += [
        "",
        "run_table.json + summary.txt byte-identical across "
        f"batched / unbatched / warm runs: {'yes' if all_identical else 'NO'}",
        "",
        "caveat: host-dependent wall clock.  The batched/unbatched ratio",
        "is the honest number — it measures walks saved per workload, not",
        "machine speed.  Warm runs are bounded by cache lookups, so their",
        "absolute times say nothing about the batching win.",
    ]
    if (os.cpu_count() or 1) == 1:
        lines.append(
            "caveat: single-CPU host — --jobs cannot add parallel "
            "speedup on top of batching here."
        )
    text = "\n".join(lines)
    print(text)
    RESULTS.write_text(text + "\n")

    results = {"jobs": args.jobs, "suites": {}}
    for suite, m in measured.items():
        results["suites"][suite] = {
            "rows": m["rows"],
            "batched_cold_seconds": round(m["batched_cold_seconds"], 3),
            "unbatched_cold_seconds": round(m["unbatched_cold_seconds"], 3),
            "batched_warm_seconds": round(m["batched_warm_seconds"], 3),
            "warm_cache_hits": m["warm_cache_hits"],
            "cold_speedup": round(
                m["unbatched_cold_seconds"] / m["batched_cold_seconds"], 3
            ),
            "outputs_byte_identical": m["identical"],
        }
    json_path = write_bench_json("sweep", results)
    print(f"\nwrote {RESULTS}")
    print(f"wrote {json_path}")
    return 0 if all_identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
