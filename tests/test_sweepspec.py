"""Sweep suite descriptor validation and deterministic expansion.

Every malformation must surface as :class:`repro.errors.UsageError`
*before* any cell runs (the CLI maps it to exit 2), and expansion must
be a pure function of the descriptor — same text, same run table.
"""

import json

import pytest

from repro.errors import UsageError
from repro.sweepspec import SweepSpec, load_suite, parse_suite


def suite_data(**overrides):
    """A minimal valid descriptor, overridable per test."""
    data = {
        "suite": "unit",
        "kind": "timing",
        "workloads": ["gzip", "mcf"],
        "window": 2000,
        "repetitions": 1,
        "base": {"machine": {"svf_mode": "svf"}},
        "grid": {"svf_ports": [1, 2]},
    }
    data.update(overrides)
    return data


# ---------------------------------------------------------------------------
# Validation errors (all UsageError, all before anything runs)
# ---------------------------------------------------------------------------


def test_unknown_workload_rejected_with_offender_named():
    with pytest.raises(UsageError, match="nosuchbench"):
        parse_suite(suite_data(workloads=["gzip", "nosuchbench"]))


def test_unknown_grid_axis_rejected():
    with pytest.raises(UsageError, match="unknown grid axis 'frobnicate'"):
        parse_suite(suite_data(grid={"frobnicate": [1, 2]}))


def test_zero_repetitions_rejected():
    with pytest.raises(UsageError, match="repetitions"):
        parse_suite(suite_data(repetitions=0))


def test_unknown_kind_rejected():
    with pytest.raises(UsageError, match="unknown kind 'parametric'"):
        parse_suite(suite_data(kind="parametric"))


def test_unknown_top_level_key_rejected():
    with pytest.raises(UsageError, match="unknown keys: sweeps"):
        parse_suite(suite_data(sweeps={}))


def test_suite_name_must_be_filename_safe():
    with pytest.raises(UsageError, match="filename-safe"):
        parse_suite(suite_data(suite="has spaces/slash"))


def test_grid_levels_must_be_nonempty_lists():
    with pytest.raises(UsageError, match="needs a list of levels"):
        parse_suite(suite_data(grid={"svf_ports": 2}))
    with pytest.raises(UsageError, match="has no levels"):
        parse_suite(suite_data(grid={"svf_ports": []}))
    with pytest.raises(UsageError, match="repeats a level"):
        parse_suite(suite_data(grid={"svf_ports": [2, 2]}))


def test_opt_level_is_not_a_grid_axis():
    with pytest.raises(UsageError, match="top-level opt_levels"):
        parse_suite(suite_data(grid={"opt_level": [0, 1]}))


def test_traffic_sweeps_reject_machine_level_axes():
    with pytest.raises(UsageError, match="no effect on a traffic sweep"):
        parse_suite(suite_data(
            kind="traffic", grid={"svf_ports": [1, 2]}
        ))
    # The SVF-structure axes are fine.
    spec = parse_suite(suite_data(
        kind="traffic", base=None, grid={"svf_granularity": [8, 16]}
    ))
    assert spec.total_cells() == 4


def test_invalid_machine_point_caught_eagerly():
    # width 12 is not a Table-2 column; must fail at parse time with
    # the offending combo named, not mid-sweep inside a worker.
    with pytest.raises(UsageError, match="width=12"):
        parse_suite(suite_data(grid={"width": [8, 12]}))


def test_bad_opt_levels_rejected():
    with pytest.raises(UsageError, match="0 or 1"):
        parse_suite(suite_data(opt_levels=[0, 3]))
    with pytest.raises(UsageError, match="repeats"):
        parse_suite(suite_data(opt_levels=[0, 0]))


# ---------------------------------------------------------------------------
# Expansion: deterministic, canonical, deduplicated
# ---------------------------------------------------------------------------


def test_expansion_counts_and_canonical_order():
    spec = parse_suite(suite_data(repetitions=2))
    points = spec.expand()
    assert len(points) == spec.total_cells() == 2 * 1 * 2 * 2
    # Workload-major, then combo, then repetition.
    assert [
        (p.workload, p.level("svf_ports"), p.repetition)
        for p in points
    ] == [
        ("164.gzip", 1, 0), ("164.gzip", 1, 1),
        ("164.gzip", 2, 0), ("164.gzip", 2, 1),
        ("181.mcf", 1, 0), ("181.mcf", 1, 1),
        ("181.mcf", 2, 0), ("181.mcf", 2, 1),
    ]
    # Expansion is a pure function of the descriptor.
    again = parse_suite(suite_data(repetitions=2))
    assert again.expand() == points


def test_union_grids_dedupe_on_resolved_machine():
    spec = parse_suite(suite_data(grid=[
        {"svf_ports": [1, 2]},
        {"svf_ports": [1], "svf_banks": [0, 4]},
    ]))
    combos = spec.combos()
    # (ports=1, banks=0) from block 2 resolves to the same machine as
    # (ports=1) from block 1 — first occurrence wins.
    assert combos == [
        (("svf_ports", 1),),
        (("svf_ports", 2),),
        (("svf_ports", 1), ("svf_banks", 4)),
    ]
    assert spec.factor_names == ("svf_ports", "svf_banks")


def test_base_overrides_merge_under_every_combo():
    spec = parse_suite(suite_data(
        base={"machine": {"svf_mode": "svf", "no_squash": True}}
    ))
    for point in spec.expand():
        machine = dict(point.machine)
        assert machine["svf_mode"] == "svf"
        assert machine["no_squash"] is True
        config = point.machine_spec().config()
        assert config.svf.ports == point.level("svf_ports")


def test_gridless_suite_is_a_single_base_point():
    spec = parse_suite(suite_data(grid=None))
    assert spec.combos() == [()]
    assert spec.total_cells() == len(spec.workloads)


# ---------------------------------------------------------------------------
# File loading (JSON via stdlib; YAML errors become usage errors)
# ---------------------------------------------------------------------------


def test_load_json_descriptor(tmp_path):
    path = tmp_path / "unit.json"
    path.write_text(json.dumps(suite_data()))
    spec = load_suite(str(path))
    assert isinstance(spec, SweepSpec)
    assert spec.name == "unit"
    assert spec.source == str(path)
    # source is provenance only: equal to the in-memory parse.
    assert spec == parse_suite(suite_data())


def test_load_missing_and_invalid_descriptors(tmp_path):
    with pytest.raises(UsageError, match="no such suite descriptor"):
        load_suite(str(tmp_path / "absent.yaml"))
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(UsageError, match="invalid JSON"):
        load_suite(str(bad))


def test_load_yaml_descriptor(tmp_path):
    yaml = pytest.importorskip("yaml")
    path = tmp_path / "unit.yaml"
    path.write_text(yaml.safe_dump(suite_data()))
    assert load_suite(str(path)) == parse_suite(suite_data())
    bad = tmp_path / "bad.yaml"
    bad.write_text("suite: [unclosed")
    with pytest.raises(UsageError, match="invalid YAML"):
        load_suite(str(bad))
