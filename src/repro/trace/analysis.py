"""Streaming trace analyses reproducing the paper's Figures 1-3.

Each analysis implements the trace-sink protocol (an ``append`` method)
so it can be attached directly to :meth:`repro.emulator.Machine.run`
and consume the dynamic instruction stream without storing it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.trace.records import TraceRecord
from repro.trace.regions import AccessMethod, classify_access


@dataclass
class AccessDistribution:
    """Figure 1: run-time memory-access distribution.

    Counts data references by region and access method, normalized to
    total memory references, plus the fraction of all instructions that
    access memory.
    """

    total_instructions: int = 0
    memory_references: int = 0
    counts: Dict[AccessMethod, int] = field(
        default_factory=lambda: {method: 0 for method in AccessMethod}
    )

    def append(self, record: TraceRecord) -> None:
        self.total_instructions += 1
        if not (record.is_load or record.is_store):
            return
        self.memory_references += 1
        self.counts[classify_access(record.addr, record.base_reg)] += 1

    @property
    def memory_fraction(self) -> float:
        """Fraction of executed instructions that reference memory."""
        if self.total_instructions == 0:
            return 0.0
        return self.memory_references / self.total_instructions

    def fraction(self, method: AccessMethod) -> float:
        """Fraction of memory references with the given classification."""
        if self.memory_references == 0:
            return 0.0
        return self.counts[method] / self.memory_references

    @property
    def stack_fraction(self) -> float:
        """Fraction of memory references that touch the stack."""
        return (
            self.fraction(AccessMethod.STACK_SP)
            + self.fraction(AccessMethod.STACK_FP)
            + self.fraction(AccessMethod.STACK_GPR)
        )

    @property
    def sp_fraction_of_stack(self) -> float:
        """Fraction of *stack* references that are $sp-relative."""
        stack_total = (
            self.counts[AccessMethod.STACK_SP]
            + self.counts[AccessMethod.STACK_FP]
            + self.counts[AccessMethod.STACK_GPR]
        )
        if stack_total == 0:
            return 0.0
        return self.counts[AccessMethod.STACK_SP] / stack_total


@dataclass
class StackDepthProfile:
    """Figure 2: stack-depth variation over time.

    Logs the TOS depth (in 64-bit units below the stack base, matching
    the paper's y-axis) at every ``$sp`` update.
    """

    stack_base: int
    samples: List[Tuple[int, int]] = field(default_factory=list)
    max_depth: int = 0

    def append(self, record: TraceRecord) -> None:
        if not record.sp_update:
            return
        depth = (self.stack_base - record.sp_value) // 8
        self.samples.append((record.index, depth))
        if depth > self.max_depth:
            self.max_depth = depth

    def depth_series(self, points: int = 100) -> List[int]:
        """Resample the depth curve to a fixed number of points."""
        if not self.samples or points <= 0:
            return []
        if len(self.samples) <= points:
            return [depth for _, depth in self.samples]
        step = len(self.samples) / points
        return [
            self.samples[int(i * step)][1] for i in range(points)
        ]

    def stable_range(self, skip_fraction: float = 0.2) -> Tuple[int, int]:
        """(min, max) depth after the initialization phase."""
        if not self.samples:
            return (0, 0)
        start = int(len(self.samples) * skip_fraction)
        depths = [depth for _, depth in self.samples[start:]] or [
            self.samples[-1][1]
        ]
        return (min(depths), max(depths))


@dataclass
class OffsetLocality:
    """Figure 3: cumulative distribution of offsets from the TOS.

    For each stack reference, the offset is ``addr - $sp`` (the stack
    grows down, so live data sits at addresses >= ``$sp``).  The paper
    plots the within-function CDF on a log10 x-axis and reports the
    average distance and the fraction within 8 KB.
    """

    histogram: Dict[int, int] = field(default_factory=dict)
    total: int = 0
    sum_offsets: int = 0
    beyond_tos: int = 0

    def append(self, record: TraceRecord) -> None:
        if not (record.is_load or record.is_store):
            return
        from repro.trace.regions import is_stack_address

        if not is_stack_address(record.addr):
            return
        offset = record.addr - record.sp_value
        if offset < 0:
            self.beyond_tos += 1
            return
        self.total += 1
        self.sum_offsets += offset
        self.histogram[offset] = self.histogram.get(offset, 0) + 1

    @property
    def average_offset(self) -> float:
        """Average distance (bytes) of a stack reference from the TOS."""
        if self.total == 0:
            return 0.0
        return self.sum_offsets / self.total

    def fraction_within(self, limit_bytes: int) -> float:
        """Fraction of stack references within ``limit_bytes`` of TOS."""
        if self.total == 0:
            return 0.0
        covered = sum(
            count
            for offset, count in self.histogram.items()
            if offset <= limit_bytes
        )
        return covered / self.total

    def cdf(self) -> List[Tuple[int, float]]:
        """The cumulative distribution as (offset, fraction) pairs."""
        cumulative = 0
        points = []
        for offset in sorted(self.histogram):
            cumulative += self.histogram[offset]
            points.append((offset, cumulative / self.total))
        return points

    def log_cdf(self, buckets: int = 32) -> List[Tuple[float, float]]:
        """CDF resampled onto a log10 grid (the paper's x-axis)."""
        if self.total == 0:
            return []
        max_offset = max(self.histogram)
        top = math.log10(max(max_offset, 1) + 1)
        grid = [10 ** (top * (i + 1) / buckets) - 1 for i in range(buckets)]
        grid[-1] = float(max_offset)  # guard against float rounding
        cdf_points = self.cdf()
        out = []
        position = 0
        cumulative = 0.0
        for edge in grid:
            while position < len(cdf_points) and cdf_points[position][0] <= edge:
                cumulative = cdf_points[position][1]
                position += 1
            out.append((edge, cumulative))
        return out


class MultiSink:
    """Fan a trace stream out to several sinks (and optionally keep it)."""

    def __init__(self, *sinks, keep: bool = False):
        self.sinks = list(sinks)
        self.records: List[TraceRecord] = []
        self._keep = keep

    def append(self, record: TraceRecord) -> None:
        for sink in self.sinks:
            sink.append(record)
        if self._keep:
            self.records.append(record)
