"""Golden-output regression tests for the workload suite.

Each case pins the exact printed output AND dynamic instruction count
of a reduced-scale run.  The emulator is deterministic, so any change
here means the compiler, the ISA semantics, or the workload source
changed behaviour — which must be a deliberate decision, because it
invalidates recorded experiment numbers.
"""

import pytest

from repro.workloads import workload

GOLDENS = [
    ("bzip2", "graphic", {"blocks": 2, "block": 96}, [305, 265], 39136),
    ("bzip2", "program", {"blocks": 2, "block": 96}, [2351, 786], 107172),
    ("crafty", None, {"positions": 2, "depth": 5}, [1084, 129], 24521),
    ("eon", "cook",
     {"width": 4, "height": 4, "spheres": 3, "bounces": 1},
     [390, 4], 34890),
    ("eon", "kajiya",
     {"width": 4, "height": 4, "spheres": 3, "bounces": 2},
     [455, 14], 55618),
    ("gap", None, {"degree": 16, "rounds": 3}, [3], 9842),
    ("gcc", "cp-decl", {"units": 2, "depth": 5}, [0, 49, 96], 26904),
    ("gcc", "integrate", {"units": 2, "depth": 5}, [8, 46, 90], 25662),
    ("gzip", "graphic", {"window": 128, "passes": 2}, [1920], 50464),
    ("gzip", "log", {"window": 128, "passes": 2}, [1680], 46036),
    ("mcf", None, {"nodes": 24, "arcs": 72, "sources": 3},
     [20311, 210], 50816),
    ("parser", None, {"sentences": 4, "depth": 7, "min_depth": 4},
     [32, 0], 100150),
    ("twolf", None, {"cells": 10, "nets": 16, "steps": 6},
     [2408, 4], 21497),
    ("vortex", None, {"transactions": 80}, [1078777, 32], 11455),
    ("perlbmk", None, {"scripts": 3, "loop_count": 10, "vm_stack": 96},
     [-15, 42], 11601),
    ("vpr", None, {"width": 8, "height": 8, "nets": 4},
     [76, 4, 0], 151728),
    ("x86mix", None, {"records": 24, "batches": 2}, [953276, 96], 8166),
]


@pytest.mark.parametrize(
    "bench,input_name,params,expected_output,expected_instructions",
    GOLDENS,
    ids=[
        f"{case[0]}.{case[1] or 'default'}" for case in GOLDENS
    ],
)
def test_golden(bench, input_name, params, expected_output,
                expected_instructions):
    machine = workload(bench, input_name).run(
        max_instructions=5_000_000, **params
    )
    assert machine.halted
    assert machine.output == expected_output
    assert machine.instruction_count == expected_instructions


def test_goldens_cover_every_benchmark():
    covered = {case[0] for case in GOLDENS}
    from repro.workloads import BENCHMARK_ORDER

    expected = {name.split(".", 1)[1] for name in BENCHMARK_ORDER}
    expected.add("x86mix")  # the future-work extension workload
    assert covered == expected
