"""MiniC code generator targeting the Alpha-like ISA.

The generated code follows the Compaq Alpha calling convention the
paper assumes (Section 2):

* the stack grows down; each function's prologue is a single
  ``lda $sp, -FRAME($sp)`` adjustment and its epilogue the matching
  positive adjustment — exactly the ``$sp`` updates the SVF tracks;
* incoming arguments arrive in ``a0..a5`` and are *spilled to frame
  slots* at entry; scalar locals also live in frame slots.  All those
  slots are addressed ``±IMM($sp)`` — the access method that dominates
  Figure 1 and that the SVF morphs into register moves;
* local arrays live in the frame and are addressed through computed
  temporaries — the ``$gpr`` stack accesses that must be re-routed
  into the SVF (Section 3.2);
* in functions that contain arrays the spilled parameters are
  addressed through ``$fp`` (frame base), reproducing the smaller
  ``$fp`` slice of Figure 1.

Expression evaluation is stack-machine style over a pool of caller-
saved temporaries, spilling to frame slots across calls — the memory
traffic profile of unoptimized compiled code, which is what gives the
stack its outsized share of references.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.emulator.memory import HEAP_BASE
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.lang.semantics import Symbol, analyze

_TEMP_POOL = ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9",
              "t10", "t11", "t12", "t13"]
_ARG_REGS = ["a0", "a1", "a2", "a3", "a4", "a5"]
_SAVED_REGS = ["s0", "s1", "s2", "s3", "s4", "s5"]

_HEAP_PTR_SYMBOL = "__heap_ptr"

#: comparison operators mapped to (opcode, swap_operands, negate_result)
_COMPARISONS = {
    "<": ("cmplt", False, False),
    "<=": ("cmple", False, False),
    ">": ("cmplt", True, False),
    ">=": ("cmple", True, False),
    "==": ("cmpeq", False, False),
    "!=": ("cmpeq", False, True),
}

_ARITHMETIC = {
    "+": "addq",
    "-": "subq",
    "*": "mulq",
    "/": "divq",
    "%": "remq",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "sll",
    ">>": "sra",
}


class CodegenError(ValueError):
    """Raised on conditions the code generator cannot handle."""


@dataclass
class CodegenOptions:
    """Knobs that shape the generated stack-reference mix.

    ``fp_frames`` — when True, functions whose frames contain arrays
    address their spilled parameters through ``$fp`` instead of
    ``$sp``, producing the paper's ``$fp`` access-method slice.

    ``promoted_locals`` — number of hot scalar locals per function kept
    in callee-saved registers instead of frame slots (a lightweight
    register allocator).  The Compaq compiler the paper used promotes
    hot scalars the same way; without promotion the stack share of
    memory references is unrealistically high.  Set to 0 for the
    -O0-style ablation.

    ``opt_level`` — 0 emits the naive stack-machine code unchanged (the
    default; all goldens pin this level); 1 additionally runs the
    dataflow optimizer pipeline of :mod:`repro.lang.opt` (redundant
    $sp-relative load forwarding, frame dead-store elimination,
    register DCE, frame-slot coalescing) over the assembled program.
    """

    fp_frames: bool = True
    promoted_locals: int = 4
    opt_level: int = 0


def _count_uses(body, depth: int = 0, weights=None):
    """Weighted static use counts per symbol uid (loops weigh 8x/level)."""
    if weights is None:
        weights = {}
    factor = 8 ** min(depth, 4)

    def visit_expr(expr):
        if expr is None:
            return
        if isinstance(expr, ast.VarRef):
            symbol = getattr(expr, "symbol", None)
            if symbol is not None and symbol.kind != "global":
                weights[symbol.uid] = weights.get(symbol.uid, 0) + factor
            return
        if isinstance(expr, ast.Unary):
            visit_expr(expr.operand)
        elif isinstance(expr, ast.Binary):
            visit_expr(expr.left)
            visit_expr(expr.right)
        elif isinstance(expr, ast.Index):
            visit_expr(expr.base)
            visit_expr(expr.index)
        elif isinstance(expr, ast.Call):
            for argument in expr.args:
                visit_expr(argument)

    for statement in body:
        if isinstance(statement, ast.Declaration):
            symbol = getattr(statement, "symbol", None)
            if symbol is not None:
                weights[symbol.uid] = weights.get(symbol.uid, 0) + factor
            visit_expr(statement.initializer)
        elif isinstance(statement, ast.Assign):
            visit_expr(statement.target)
            visit_expr(statement.value)
        elif isinstance(statement, ast.ExprStmt):
            visit_expr(statement.expr)
        elif isinstance(statement, ast.If):
            visit_expr(statement.condition)
            _count_uses(statement.then_body, depth, weights)
            _count_uses(statement.else_body, depth, weights)
        elif isinstance(statement, ast.While):
            visit_expr(statement.condition)
            _count_uses(statement.body, depth + 1, weights)
        elif isinstance(statement, ast.For):
            if statement.init is not None:
                _count_uses([statement.init], depth, weights)
            visit_expr(statement.condition)
            if statement.step is not None:
                _count_uses([statement.step], depth + 1, weights)
            _count_uses(statement.body, depth + 1, weights)
        elif isinstance(statement, ast.Return):
            visit_expr(statement.value)
    return weights


class _TempEntry:
    __slots__ = ("reg", "slot", "pinned", "alias")

    def __init__(self, reg: Optional[str], alias: bool = False):
        self.reg = reg
        self.slot: Optional[int] = None
        self.pinned = False
        #: alias entries reference a callee-saved register directly (a
        #: promoted local read); they are never spilled or freed.
        self.alias = alias


class _FunctionEmitter:
    """Emits one function; owns labels, temps, spill slots and the frame."""

    def __init__(self, generator: "CodeGenerator", function: ast.Function):
        self.generator = generator
        self.function = function
        self.info = function.info  # type: ignore[attr-defined]
        self.options = generator.options
        self.lines: List[str] = []
        self.label_counter = 0
        self.loop_stack: List[Dict[str, str]] = []
        # Temp-register stack machine state.
        self.free_regs = list(_TEMP_POOL)
        self.stack: List[_TempEntry] = []
        self.spill_slots_used = 0
        self.free_spill_slots: List[int] = []
        # Frame layout (scalar slots assigned up front; spills patched later).
        self.fp_framed = bool(self.options.fp_frames and self.info.has_arrays)
        self.promoted: Dict[int, str] = {}
        self._promote_locals()
        self.offsets: Dict[int, int] = {}
        self._assign_slots()

    # -- frame layout -------------------------------------------------------

    def _promote_locals(self) -> None:
        """Keep the hottest scalar locals in callee-saved registers.

        Eligible symbols are non-array, non-address-taken scalars.
        Uses are weighted by loop-nesting depth so induction variables
        win, mirroring what a real allocator does.
        """
        budget = min(self.options.promoted_locals, len(_SAVED_REGS))
        if budget <= 0:
            return
        weights = _count_uses(self.function.body)
        candidates = [
            symbol
            for symbol in self.info.params + self.info.locals
            if not symbol.is_array
            and not symbol.address_taken
            and weights.get(symbol.uid, 0) > 0
        ]
        candidates.sort(key=lambda s: weights[s.uid], reverse=True)
        for index, symbol in enumerate(candidates[:budget]):
            self.promoted[symbol.uid] = _SAVED_REGS[index]

    def _assign_slots(self) -> None:
        """Assign frame offsets.

        Scalars (and spill slots, patched in later) sit nearest ``$sp``
        — they are the hot slots and must stay close to the TOS.
        Arrays stack above them; their final offsets depend on the
        spill count, so array references are emitted with ``@A...@``
        placeholder displacements and resolved in :meth:`_patch_frame`.
        """
        cursor = 0
        for symbol in self.info.params:
            if symbol.uid in self.promoted:
                continue
            self.offsets[symbol.uid] = cursor
            symbol.frame_offset = cursor
            cursor += 8
        for symbol in self.info.locals:
            if symbol.is_array or symbol.uid in self.promoted:
                continue
            self.offsets[symbol.uid] = cursor
            symbol.frame_offset = cursor
            cursor += 8
        self.scalar_end = cursor
        # Arrays: relative offsets within the array area.
        self.array_rel: Dict[int, int] = {}
        array_cursor = 0
        for symbol in self.info.locals:
            if symbol.is_array:
                self.array_rel[symbol.uid] = array_cursor
                array_cursor += 8 * symbol.array_size
        self.array_total = array_cursor

    def slot_ref(self, symbol: Symbol, delta: int = 0) -> str:
        """Displacement text for one frame slot (may be a placeholder)."""
        if symbol.is_array:
            return f"@A{symbol.uid}_{delta}@"
        return str(self.offsets[symbol.uid] + delta)

    def frame_base_reg(self, symbol: Symbol) -> str:
        """Register used to address one frame slot directly."""
        if self.fp_framed and symbol.kind == "param":
            return "fp"
        return "sp"

    # -- low-level emission ---------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " + line)

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def new_label(self, hint: str) -> str:
        self.label_counter += 1
        return f"{self.function.name}${hint}{self.label_counter}"

    # -- temp stack -------------------------------------------------------------

    def _alloc_reg(self, avoid=()) -> str:
        for position in range(len(self.free_regs) - 1, -1, -1):
            if self.free_regs[position] not in avoid:
                return self.free_regs.pop(position)
        # Spill the oldest unpinned in-register entry.
        for entry in self.stack:
            if entry.reg is not None and not entry.pinned and not entry.alias:
                slot = self._alloc_spill_slot()
                self.emit(f"stq {entry.reg}, @S{slot}@(sp)")
                reg = entry.reg
                entry.reg = None
                entry.slot = slot
                return reg
        raise CodegenError("temporary registers exhausted")

    def _alloc_spill_slot(self) -> int:
        if self.free_spill_slots:
            return self.free_spill_slots.pop()
        slot = self.spill_slots_used
        self.spill_slots_used += 1
        return slot

    def push(self, avoid=()) -> str:
        """Allocate a register for a new value on the temp stack.

        ``avoid`` lists registers that must stay readable until the
        multi-instruction sequence consuming them has been emitted.
        """
        reg = self._alloc_reg(avoid)
        self.stack.append(_TempEntry(reg))
        return reg

    def push_alias(self, reg: str) -> None:
        """Push a read-only alias of a callee-saved register.

        Alias entries cost no move instruction and are never spilled:
        the aliased register is only written at statement level, and
        expression evaluation completes within a statement.
        """
        self.stack.append(_TempEntry(reg, alias=True))

    def pop(self) -> str:
        """Pop the top value; returns the register holding it.

        The register is returned to the free pool immediately, so the
        value must be consumed by the very next emitted instruction.
        """
        entry = self.stack.pop()
        if entry.alias:
            return entry.reg
        if entry.reg is None:
            reg = self._alloc_reg()
            self.emit(f"ldq {reg}, @S{entry.slot}@(sp)")
            self.free_spill_slots.append(entry.slot)
            entry.reg = reg
        self.free_regs.append(entry.reg)
        return entry.reg

    def pop_many(self, count: int) -> List[str]:
        """Pop ``count`` values at once, returning registers top-first.

        Unlike repeated :meth:`pop` calls, all values are materialized
        into registers *before* any register is freed, so reloads of
        spilled entries can never clobber one another.  The registers
        must all be consumed by the immediately following emitted
        instruction(s), before any further push.
        """
        group = self.stack[-count:]
        for entry in group:
            entry.pinned = True
        for entry in group:
            if entry.reg is None and not entry.alias:
                reg = self._alloc_reg()
                self.emit(f"ldq {reg}, @S{entry.slot}@(sp)")
                self.free_spill_slots.append(entry.slot)
                entry.reg = reg
        registers = []
        freeable = []
        for _ in range(count):
            entry = self.stack.pop()
            entry.pinned = False
            registers.append(entry.reg)
            if not entry.alias:
                freeable.append(entry.reg)
        # Free bottom-up so a subsequent push() reuses the *top* value's
        # register first — writing the result over the top operand is
        # always safe for "op left, right, result" sequences.
        self.free_regs.extend(reversed(freeable))
        return registers

    def spill_all(self) -> None:
        """Spill every live temp to the frame (before a call).

        Alias entries stay put: they reference callee-saved registers,
        which survive the call by convention.
        """
        for entry in self.stack:
            if entry.reg is not None and not entry.alias:
                slot = self._alloc_spill_slot()
                self.emit(f"stq {entry.reg}, @S{slot}@(sp)")
                self.free_regs.append(entry.reg)
                entry.reg = None
                entry.slot = slot

    # -- function ---------------------------------------------------------------

    def generate(self) -> List[str]:
        info = self.info
        self.emit_label(self.function.name)
        self.epilogue_label = self.new_label("epilogue")
        self.used_sregs = sorted(
            set(self.promoted.values()), key=_SAVED_REGS.index
        )
        self.emit("lda sp, -@FRAME@(sp)")
        if info.makes_calls:
            self.emit("stq ra, @RA@(sp)")
        if self.fp_framed:
            self.emit("stq fp, @FP@(sp)")
            self.emit("lda fp, 0(sp)")
        for index, sreg in enumerate(self.used_sregs):
            self.emit(f"stq {sreg}, @SV{index}@(sp)")
        for index, symbol in enumerate(info.params):
            if symbol.uid in self.promoted:
                self.emit(f"addq {_ARG_REGS[index]}, 0, {self.promoted[symbol.uid]}")
            else:
                base = self.frame_base_reg(symbol)
                self.emit(
                    f"stq {_ARG_REGS[index]}, {self.offsets[symbol.uid]}({base})"
                )
        for statement in self.function.body:
            self.gen_statement(statement)
        self.emit_label(self.epilogue_label)
        for index, sreg in enumerate(self.used_sregs):
            self.emit(f"ldq {sreg}, @SV{index}@(sp)")
        if self.fp_framed:
            self.emit("ldq fp, @FP@(sp)")
        if info.makes_calls:
            self.emit("ldq ra, @RA@(sp)")
        self.emit("lda sp, @FRAME@(sp)")
        self.emit("ret")
        return self._patch_frame()

    _ARRAY_TOKEN = re.compile(r"@A(\d+)_(-?\d+)@")

    def _patch_frame(self) -> List[str]:
        spill_base = self.scalar_end
        array_base = spill_base + 8 * self.spill_slots_used
        sreg_base = array_base + self.array_total
        saved_base = sreg_base + 8 * len(self.used_sregs)
        fp_offset = saved_base
        ra_offset = saved_base + (8 if self.fp_framed else 0)
        frame = ra_offset + (8 if self.info.makes_calls else 0)
        frame = max(16, (frame + 15) & ~15)
        array_rel = self.array_rel

        def resolve_array(match: "re.Match") -> str:
            uid = int(match.group(1))
            delta = int(match.group(2))
            return str(array_base + array_rel[uid] + delta)

        patched = []
        for line in self.lines:
            if "@" in line:
                line = line.replace("@FRAME@", str(frame))
                line = line.replace("@RA@", str(ra_offset))
                line = line.replace("@FP@", str(fp_offset))
                line = self._ARRAY_TOKEN.sub(resolve_array, line)
                for index in range(len(self.used_sregs)):
                    token = f"@SV{index}@"
                    if token in line:
                        line = line.replace(token, str(sreg_base + 8 * index))
                for slot in range(self.spill_slots_used):
                    token = f"@S{slot}@"
                    if token in line:
                        line = line.replace(token, str(spill_base + 8 * slot))
            patched.append(line)
        return patched

    # -- statements ----------------------------------------------------------------

    def gen_statement(self, statement: ast.Stmt) -> None:
        if isinstance(statement, ast.Declaration):
            self.gen_declaration(statement)
        elif isinstance(statement, ast.Assign):
            self.gen_assign(statement)
        elif isinstance(statement, ast.ExprStmt):
            if statement.expr is not None:
                self.gen_expression(statement.expr)
                self.pop()
        elif isinstance(statement, ast.If):
            self.gen_if(statement)
        elif isinstance(statement, ast.While):
            self.gen_while(statement)
        elif isinstance(statement, ast.For):
            self.gen_for(statement)
        elif isinstance(statement, ast.Return):
            if statement.value is not None:
                self.gen_expression(statement.value)
                reg = self.pop()
                self.emit(f"addq {reg}, 0, v0")
            else:
                self.emit("lda v0, 0(zero)")
            self.emit(f"br {self.epilogue_label}")
        elif isinstance(statement, ast.Break):
            self.emit(f"br {self.loop_stack[-1]['break']}")
        elif isinstance(statement, ast.Continue):
            self.emit(f"br {self.loop_stack[-1]['continue']}")
        else:  # pragma: no cover - statement set is closed
            raise CodegenError(f"unknown statement {type(statement).__name__}")

    def gen_declaration(self, declaration: ast.Declaration) -> None:
        symbol = declaration.symbol  # type: ignore[attr-defined]
        if declaration.initializer is not None:
            self.gen_expression(declaration.initializer)
            reg = self.pop()
            if symbol.uid in self.promoted:
                self.emit(f"addq {reg}, 0, {self.promoted[symbol.uid]}")
            else:
                base = self.frame_base_reg(symbol)
                self.emit(f"stq {reg}, {self.offsets[symbol.uid]}({base})")

    def gen_assign(self, assign: ast.Assign) -> None:
        target = assign.target
        if isinstance(target, ast.VarRef):
            symbol = target.symbol  # type: ignore[attr-defined]
            if symbol.kind == "global":
                address = self.push()
                self.emit(f"lda {address}, {symbol.name}")
                self.gen_expression(assign.value)
                value = self.pop()
                address = self.pop()
                self.emit(f"stq {value}, 0({address})")
            elif symbol.uid in self.promoted:
                self.gen_expression(assign.value)
                value = self.pop()
                self.emit(f"addq {value}, 0, {self.promoted[symbol.uid]}")
            else:
                self.gen_expression(assign.value)
                value = self.pop()
                base = self.frame_base_reg(symbol)
                self.emit(f"stq {value}, {self.offsets[symbol.uid]}({base})")
            return
        if isinstance(target, ast.Index):
            slot = self.constant_slot(target)
            if slot is not None:
                base, offset = slot
                self.gen_expression(assign.value)
                value = self.pop()
                self.emit(f"stq {value}, {offset}({base})")
                return
            self.gen_address_of_index(target)
            self.gen_expression(assign.value)
            value, address = self.pop_many(2)
            self.emit(f"stq {value}, 0({address})")
            return
        if isinstance(target, ast.Unary) and target.op == "*":
            self.gen_expression(target.operand)
            self.gen_expression(assign.value)
            value, address = self.pop_many(2)
            self.emit(f"stq {value}, 0({address})")
            return
        raise CodegenError("invalid assignment target")  # pragma: no cover

    def gen_if(self, statement: ast.If) -> None:
        else_label = self.new_label("else")
        end_label = self.new_label("endif")
        self.gen_expression(statement.condition)
        reg = self.pop()
        self.emit(f"beq {reg}, {else_label}")
        for inner in statement.then_body:
            self.gen_statement(inner)
        if statement.else_body:
            self.emit(f"br {end_label}")
            self.emit_label(else_label)
            for inner in statement.else_body:
                self.gen_statement(inner)
            self.emit_label(end_label)
        else:
            self.emit_label(else_label)

    def gen_while(self, statement: ast.While) -> None:
        head = self.new_label("while")
        end = self.new_label("endwhile")
        self.loop_stack.append({"break": end, "continue": head})
        self.emit_label(head)
        self.gen_expression(statement.condition)
        reg = self.pop()
        self.emit(f"beq {reg}, {end}")
        for inner in statement.body:
            self.gen_statement(inner)
        self.emit(f"br {head}")
        self.emit_label(end)
        self.loop_stack.pop()

    def gen_for(self, statement: ast.For) -> None:
        head = self.new_label("for")
        step_label = self.new_label("forstep")
        end = self.new_label("endfor")
        if statement.init is not None:
            self.gen_statement(statement.init)
        self.loop_stack.append({"break": end, "continue": step_label})
        self.emit_label(head)
        if statement.condition is not None:
            self.gen_expression(statement.condition)
            reg = self.pop()
            self.emit(f"beq {reg}, {end}")
        for inner in statement.body:
            self.gen_statement(inner)
        self.emit_label(step_label)
        if statement.step is not None:
            self.gen_statement(statement.step)
        self.emit(f"br {head}")
        self.emit_label(end)
        self.loop_stack.pop()

    # -- expressions ------------------------------------------------------------------

    def gen_expression(self, expr: ast.Expr) -> None:
        """Evaluate ``expr``, leaving its value on the temp stack."""
        if isinstance(expr, ast.IntLiteral):
            reg = self.push()
            self.emit(f"lda {reg}, {expr.value}(zero)")
            return
        if isinstance(expr, ast.VarRef):
            self.gen_varref(expr)
            return
        if isinstance(expr, ast.Unary):
            self.gen_unary(expr)
            return
        if isinstance(expr, ast.Binary):
            self.gen_binary(expr)
            return
        if isinstance(expr, ast.Index):
            slot = self.constant_slot(expr)
            if slot is not None:
                base, offset = slot
                reg = self.push()
                self.emit(f"ldq {reg}, {offset}({base})")
                return
            self.gen_address_of_index(expr)
            address = self.pop()
            reg = self.push()
            self.emit(f"ldq {reg}, 0({address})")
            return
        if isinstance(expr, ast.Call):
            self.gen_call(expr)
            return
        raise CodegenError(  # pragma: no cover - expression set is closed
            f"unknown expression {type(expr).__name__}"
        )

    def gen_varref(self, expr: ast.VarRef) -> None:
        symbol = expr.symbol  # type: ignore[attr-defined]
        if symbol.kind != "global" and symbol.uid in self.promoted:
            self.push_alias(self.promoted[symbol.uid])
            return
        reg = self.push()
        if symbol.kind == "global":
            if symbol.is_array:
                self.emit(f"lda {reg}, {symbol.name}")
            else:
                self.emit(f"lda {reg}, {symbol.name}")
                self.emit(f"ldq {reg}, 0({reg})")
            return
        base = self.frame_base_reg(symbol)
        if symbol.is_array:
            self.emit(f"lda {reg}, {self.slot_ref(symbol)}({base})")
        else:
            self.emit(f"ldq {reg}, {self.slot_ref(symbol)}({base})")

    def gen_unary(self, expr: ast.Unary) -> None:
        if expr.op == "&":
            target = expr.operand
            if isinstance(target, ast.VarRef):
                symbol = target.symbol  # type: ignore[attr-defined]
                reg = self.push()
                if symbol.kind == "global":
                    self.emit(f"lda {reg}, {symbol.name}")
                else:
                    base = self.frame_base_reg(symbol)
                    self.emit(f"lda {reg}, {self.slot_ref(symbol)}({base})")
                return
            if isinstance(target, ast.Index):
                self.gen_address_of_index(target)
                return
            raise CodegenError("'&' needs a variable or element")
        if expr.op == "*":
            self.gen_expression(expr.operand)
            address = self.pop()
            reg = self.push()
            self.emit(f"ldq {reg}, 0({address})")
            return
        self.gen_expression(expr.operand)
        operand = self.pop()
        reg = self.push()
        if expr.op == "-":
            self.emit(f"subq zero, {operand}, {reg}")
        elif expr.op == "!":
            self.emit(f"cmpeq {operand}, 0, {reg}")
        elif expr.op == "~":
            self.emit(f"xor {operand}, -1, {reg}")
        else:  # pragma: no cover - operator set is closed
            raise CodegenError(f"unknown unary operator {expr.op!r}")

    def gen_binary(self, expr: ast.Binary) -> None:
        if expr.op in ("&&", "||"):
            self.gen_logical(expr)
            return
        self.gen_expression(expr.left)
        self.gen_expression(expr.right)
        right, left = self.pop_many(2)
        reg = self.push()
        if expr.op in _ARITHMETIC:
            self.emit(f"{_ARITHMETIC[expr.op]} {left}, {right}, {reg}")
            return
        if expr.op in _COMPARISONS:
            opcode, swap, negate = _COMPARISONS[expr.op]
            first, second = (right, left) if swap else (left, right)
            self.emit(f"{opcode} {first}, {second}, {reg}")
            if negate:
                self.emit(f"cmpeq {reg}, 0, {reg}")
            return
        raise CodegenError(  # pragma: no cover - operator set is closed
            f"unknown binary operator {expr.op!r}"
        )

    def gen_logical(self, expr: ast.Binary) -> None:
        """Short-circuit &&/|| with a frame-slot join (memory result)."""
        slot = self._alloc_spill_slot()
        end = self.new_label("logic")
        self.gen_expression(expr.left)
        left = self.pop()
        normalized = self.push()
        self.emit(f"cmpeq {left}, 0, {normalized}")
        self.emit(f"cmpeq {normalized}, 0, {normalized}")
        self.emit(f"stq {normalized}, @S{slot}@(sp)")
        branch = "beq" if expr.op == "&&" else "bne"
        self.emit(f"{branch} {normalized}, {end}")
        self.pop()
        self.gen_expression(expr.right)
        right = self.pop()
        renormalized = self.push()
        self.emit(f"cmpeq {right}, 0, {renormalized}")
        self.emit(f"cmpeq {renormalized}, 0, {renormalized}")
        self.emit(f"stq {renormalized}, @S{slot}@(sp)")
        self.pop()
        self.emit_label(end)
        result = self.push()
        self.emit(f"ldq {result}, @S{slot}@(sp)")
        self.free_spill_slots.append(slot)

    def constant_slot(self, expr: ast.Index):
        """(base_reg, offset) for a constant index into a frame array.

        Real compilers fold constant indices into the ``±IMM($sp)``
        addressing mode; this keeps e.g. unrolled table initialization
        ``$sp``-relative (morphable) instead of address-computed.
        Returns None when the access needs dynamic address arithmetic.
        """
        if not isinstance(expr.index, ast.IntLiteral):
            return None
        if not isinstance(expr.base, ast.VarRef):
            return None
        symbol = getattr(expr.base, "symbol", None)
        if symbol is None or symbol.kind == "global" or not symbol.is_array:
            return None
        if not 0 <= expr.index.value < symbol.array_size:
            return None
        offset = self.slot_ref(symbol, 8 * expr.index.value)
        return self.frame_base_reg(symbol), offset

    def gen_address_of_index(self, expr: ast.Index) -> None:
        """Push the address of ``base[index]``."""
        slot = self.constant_slot(expr)
        if slot is not None:
            base, offset = slot
            reg = self.push()
            self.emit(f"lda {reg}, {offset}({base})")
            return
        self.gen_expression(expr.base)
        self.gen_expression(expr.index)
        index, base = self.pop_many(2)
        reg = self.push(avoid=(base,))
        self.emit(f"sll {index}, 3, {reg}")
        self.emit(f"addq {base}, {reg}, {reg}")

    def gen_call(self, expr: ast.Call) -> None:
        if expr.name == "print":
            self.gen_expression(expr.args[0])
            reg = self.pop()
            self.emit(f"print {reg}")
            result = self.push()
            self.emit(f"lda {result}, 0(zero)")
            return
        if expr.name == "alloc":
            self.gen_alloc(expr)
            return
        if expr.name == "load32":
            # 32-bit partial-word load: ldl from pointer + byte offset.
            self.gen_expression(expr.args[0])
            self.gen_expression(expr.args[1])
            offset, base = self.pop_many(2)
            reg = self.push(avoid=(base,))
            self.emit(f"addq {base}, {offset}, {reg}")
            self.emit(f"ldl {reg}, 0({reg})")
            return
        if expr.name == "store32":
            # 32-bit partial-word store: stl to pointer + byte offset.
            self.gen_expression(expr.args[0])
            self.gen_expression(expr.args[1])
            self.gen_expression(expr.args[2])
            value, offset, base = self.pop_many(3)
            address = self.push(avoid=(base, value))
            self.emit(f"addq {base}, {offset}, {address}")
            self.emit(f"stl {value}, 0({address})")
            self.pop()
            result = self.push()
            self.emit(f"lda {result}, 0(zero)")
            return
        for argument in expr.args:
            self.gen_expression(argument)
        for index in reversed(range(len(expr.args))):
            reg = self.pop()
            self.emit(f"addq {reg}, 0, {_ARG_REGS[index]}")
        self.spill_all()
        self.emit(f"bsr {expr.name}")
        result = self.push()
        self.emit(f"addq v0, 0, {result}")

    def gen_alloc(self, expr: ast.Call) -> None:
        """Bump-allocate ``n`` quad-words from the heap region."""
        self.gen_expression(expr.args[0])
        count = self.pop()
        size = self.push()
        self.stack[-1].pinned = True
        self.emit(f"sll {count}, 3, {size}")
        pointer = self.push()
        self.stack[-1].pinned = True
        self.emit(f"lda {pointer}, {_HEAP_PTR_SYMBOL}")
        old = self.push()
        self.stack[-1].pinned = True
        self.emit(f"ldq {old}, 0({pointer})")
        self.push()  # scratch for the bumped heap pointer
        bump, old_r, pointer_r, size_r = self.pop_many(4)
        self.emit(f"addq {old_r}, {size_r}, {bump}")
        self.emit(f"stq {bump}, 0({pointer_r})")
        result = self.push()
        self.emit(f"addq {old_r}, 0, {result}")


class CodeGenerator:
    """Compile a MiniC translation unit into assembler text."""

    def __init__(self, options: Optional[CodegenOptions] = None):
        self.options = options or CodegenOptions()

    def generate(self, unit: ast.TranslationUnit) -> str:
        analyze(unit)
        sections: List[str] = [".data"]
        sections.append(f"{_HEAP_PTR_SYMBOL}: .quad 0")
        for global_var in unit.globals:
            sections.append(self._global_directive(global_var))
        sections.append("")
        sections.append(".text")
        sections.append("__start:")
        sections.append(f"    lda t0, {_HEAP_PTR_SYMBOL}")
        sections.append(f"    lda t1, {HEAP_BASE}(zero)")
        sections.append("    stq t1, 0(t0)")
        sections.append("    bsr main")
        sections.append("    halt")
        for function in unit.functions:
            emitter = _FunctionEmitter(self, function)
            sections.extend(emitter.generate())
        return "\n".join(sections) + "\n"

    @staticmethod
    def _global_directive(global_var: ast.GlobalVar) -> str:
        size = global_var.array_size or 1
        values = list(global_var.initializer[:size])
        if values:
            values.extend([0] * (size - len(values)))
            rendered = ", ".join(str(v) for v in values)
            return f"{global_var.name}: .quad {rendered}"
        return f"{global_var.name}: .space {8 * size}"


def compile_to_assembly(
    source: str, options: Optional[CodegenOptions] = None
) -> str:
    """Compile MiniC ``source`` to assembler text.

    At ``opt_level >= 1`` the text is the rendering of the *optimized*
    program, so what this returns always assembles to exactly what
    :func:`compile_program` executes.
    """
    unit = parse(source)
    text = CodeGenerator(options).generate(unit)
    if options is not None and options.opt_level >= 1:
        from repro.isa.assembler import assemble
        from repro.isa.printer import render_program
        from repro.lang.opt import optimize_program

        optimized, _stats = optimize_program(
            assemble(text, entry="__start")
        )
        text = render_program(optimized)
    return text


def compile_program(source: str, options: Optional[CodegenOptions] = None):
    """Compile MiniC ``source`` all the way to an executable Program."""
    from repro.isa.assembler import assemble

    unit = parse(source)
    text = CodeGenerator(options).generate(unit)
    program = assemble(text, entry="__start")
    if options is not None and options.opt_level >= 1:
        from repro.lang.opt import optimize_program

        program, _stats = optimize_program(program)
    return program
