"""Stable typed facade over the reproduction toolkit.

Every entry point external callers (and the CLI) need, behind frozen
option objects with explicit defaults:

* :class:`CompileOptions` — MiniC compilation knobs, including the
  ``opt_level`` gate for the dataflow optimizer of
  :mod:`repro.lang.opt`;
* :class:`MachineSpec` — a declarative wrapper over the Table-2
  machine models and their stack-unit steering;
* :func:`compile_source`, :func:`run_workload`, :func:`characterize`,
  :func:`simulate`, :func:`lint`, :func:`experiment`, :func:`sweep`,
  :func:`predict` — the verbs.

The facade is the *stability boundary*: subsystem modules underneath
may reshuffle freely, but signatures here only grow.  Machine-readable
outputs derived from these calls carry ``schema_version`` (see
:data:`SCHEMA_VERSION`) so downstream consumers can detect payload
changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.lint import lint_all, lint_program, lint_workload
from repro.errors import UsageError
from repro.analysis.report import LintReport
from repro.harness.experiments import (
    CharacterizationResult,
    characterize as _characterize,
    fig5_ideal_morphing,
    fig6_progressive,
    fig7_svf_vs_stack_cache,
    fig9_svf_speedup,
    table1_workloads,
    table2_models,
    table3_memory_traffic,
    table4_context_switch,
)
from repro.harness.chaos import ChaosOptions, ChaosResult
from repro.harness.sweep import (
    SweepOptions,
    SweepResult,
    run_sweep as _run_sweep,
)
from repro.isa.instructions import Program
from repro.lang.codegen import (
    CodegenOptions,
    compile_program,
    compile_to_assembly,
)
from repro.uarch.config import MachineConfig, table2_config
from repro.uarch.pipeline import (
    SimStats,
    simulate as _simulate,
    simulate_batch as _simulate_batch,
)
from repro.workloads.registry import workload as _workload

#: Version stamped into every machine-readable (JSON) payload the
#: toolkit emits, and pinned into the on-disk trace-cache directory
#: name (``<cache>/v<SCHEMA_VERSION>/``).  Bump on any breaking change
#: to a payload shape or persisted trace format.  v2: columnar binary
#: trace files replaced pickled record lists — v1 caches are stale and
#: are simply never read again.  v3: the declarative sweep engine —
#: every JSON envelope (lint/certify/experiment/characterize/sweep)
#: now uniformly carries ``kind`` + ``schema_version``, sweep
#: run-table artifacts joined the payload family, and ``MachineSpec``
#: grew the ablation knobs (banks, granularity, adaptive, AGU depth)
#: that feed sweep cell-cache keys.  Migration: there is nothing to
#: convert — v2 caches live under ``v2/`` and are simply never read
#: again (delete the directory to reclaim disk); consumers of v2 JSON
#: payloads only need to accept the new ``kind`` field on payloads
#: that previously lacked it.  v4: the chaos-hardening pass — cached
#: traces gained a CRC32 (``SVFT\\x04`` header) so a bit-flipped
#: ``.trace.bin`` is rejected instead of silently timed, and cell
#: cache keys escape param separators so values containing ``.``/``-``
#: can no longer collide.  Migration: nothing to convert — v3 caches
#: live under ``v3/`` and are never read again; JSON payload shapes
#: are unchanged apart from the version field.  v5: the batched timing
#: engine — report timing figures cache one whole-row payload per
#: (figure, benchmark) cell instead of one scalar per machine config,
#: and pickled cell/section cache entries gained a SHA-256 integrity
#: prefix (a bit flip inside a pickled payload used to be served when
#: it still unpickled; traces already carried a CRC since v4).
#: Migration: nothing to convert — v4 caches live under ``v4/`` and
#: are never read again; JSON payload shapes are unchanged apart from
#: the version field.
SCHEMA_VERSION = 5

#: Valid ``experiment`` names (paper tables and figures).
EXPERIMENT_NAMES = (
    "table1", "table2", "fig1", "fig2", "fig3", "fig5", "fig6",
    "fig7", "fig8", "fig9", "table3", "table4",
)


def versioned(payload: Dict) -> Dict:
    """Return ``payload`` with the ``schema_version`` envelope field."""
    return {"schema_version": SCHEMA_VERSION, **payload}


@dataclass(frozen=True)
class CompileOptions:
    """Frozen MiniC compilation options (facade form of codegen knobs).

    ``fp_frames`` and ``promoted_locals`` shape the stack-reference
    mix exactly as :class:`repro.lang.codegen.CodegenOptions`
    documents; ``opt_level`` gates the dataflow optimizer pipeline
    (0 = naive stack-machine code, the golden default; 1 = run
    :func:`repro.lang.opt.optimize_program` over the assembled
    program).
    """

    fp_frames: bool = True
    promoted_locals: int = 4
    opt_level: int = 0

    def __post_init__(self):
        if self.opt_level not in (0, 1):
            raise ValueError(
                f"opt_level must be 0 or 1, not {self.opt_level!r}"
            )

    def codegen(self) -> CodegenOptions:
        """The equivalent low-level :class:`CodegenOptions`."""
        return CodegenOptions(
            fp_frames=self.fp_frames,
            promoted_locals=self.promoted_locals,
            opt_level=self.opt_level,
        )


@dataclass(frozen=True)
class MachineSpec:
    """Frozen declarative machine description (Table 2 + stack unit).

    Wraps the ``table2_config(width, **overrides)`` /
    ``config.with_svf(...)`` construction idiom in one flat record:
    ``width`` picks the Table-2 column, ``svf_mode`` attaches a stack
    unit (``"none"``, ``"svf"``, ``"ideal"``, ``"stack_cache"``), and
    the remaining fields are the knobs experiments actually vary.
    """

    width: int = 16
    dl1_ports: int = 2
    branch_predictor: str = "perfect"
    #: extra pipeline stages between dispatch and address generation
    #: (the deep-pipeline ablation knob; morphed SVF refs skip them)
    agu_depth: int = 0
    svf_mode: str = "none"
    svf_ports: int = 2
    svf_capacity: int = 8192
    #: single-ported banks instead of true multiporting (0 = off)
    svf_banks: int = 0
    #: valid/dirty-bit granule size in bytes (Section 3.3)
    svf_granularity: int = 8
    #: dynamically disable the SVF under squash storms (Section 3.3)
    svf_adaptive: bool = False
    no_squash: bool = False

    def config(self) -> MachineConfig:
        """Materialize the equivalent :class:`MachineConfig`."""
        base = table2_config(
            self.width,
            dl1_ports=self.dl1_ports,
            branch_predictor=self.branch_predictor,
            agu_depth=self.agu_depth,
        )
        if self.svf_mode == "none":
            return base
        return base.with_svf(
            mode=self.svf_mode,
            ports=self.svf_ports,
            capacity_bytes=self.svf_capacity,
            banks=self.svf_banks,
            granularity=self.svf_granularity,
            adaptive=self.svf_adaptive,
            no_squash=self.no_squash,
        )


@dataclass(frozen=True)
class RunResult:
    """Outcome of one functional-emulator run of a workload."""

    workload: str
    instructions: int
    halted: bool
    #: values printed by the program (the emulator's ``print`` channel)
    output: Sequence[int]
    return_value: int


@dataclass(frozen=True)
class ExperimentResult:
    """One rendered paper artifact (table/figure) with its provenance."""

    name: str
    window: Optional[int]
    text: str

    def render(self) -> str:
        """The human-readable artifact text."""
        return self.text

    def to_json(self, indent: int = 2) -> str:
        """Versioned machine-readable envelope of the artifact."""
        return json.dumps(versioned({
            "kind": "experiment",
            "experiment": self.name,
            "window": self.window,
            "text": self.text,
        }), indent=indent)


@dataclass(frozen=True)
class ReportOptions:
    """Frozen knobs for the full-report sweep (``repro report``).

    ``jobs`` is the parallel-engine worker count (``None`` means
    ``os.cpu_count()``, ``1`` runs inline); the report text is
    byte-identical for every value.  ``use_cache`` gates the shared
    on-disk trace cache — ``cache_dir=None`` with ``use_cache=True``
    resolves to the default per-user cache directory.

    ``incremental`` re-renders only report sections whose content keys
    (workload sources × compile options × machine specs × analysis
    version × window) changed since the cached run; it needs the disk
    cache, so it is ignored when ``use_cache`` is off.  The document
    stays byte-identical to a full run.
    """

    timing_window: int = 40_000
    functional_window: int = 80_000
    benchmarks: Optional[Tuple[str, ...]] = None
    jobs: Optional[int] = None
    cache_dir: Optional[str] = None
    use_cache: bool = True
    task_timeout: float = 600.0
    incremental: bool = False

    def __post_init__(self):
        if self.benchmarks is not None and not isinstance(
            self.benchmarks, tuple
        ):
            object.__setattr__(self, "benchmarks", tuple(self.benchmarks))
        if self.jobs is not None and self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, not {self.jobs!r}")

    def resolved_cache_dir(self) -> Optional[str]:
        """The effective cache root, or ``None`` when caching is off."""
        if not self.use_cache:
            return None
        if self.cache_dir is not None:
            return self.cache_dir
        from repro.harness.parallel import default_cache_dir

        return default_cache_dir()


def generate_report(
    options: Optional[ReportOptions] = None,
    progress: Optional[Callable[[str], None]] = None,
    profiler=None,
) -> str:
    """Run the full experiment battery; returns one markdown document.

    Unknown benchmark names raise :class:`repro.errors.UsageError`
    before any simulation starts; a cell that fails inside the sweep
    degrades to an annotated gap in its section.  ``profiler`` is an
    optional :class:`repro.profiling.PhaseProfiler` that accumulates
    the sweep's per-phase wall-time breakdown (``repro report
    --profile``); the document itself is unaffected.
    """
    from repro.harness.runall import generate_report as _generate_report

    options = options if options is not None else ReportOptions()
    benchmarks = (
        list(options.benchmarks) if options.benchmarks is not None else None
    )
    return _generate_report(
        timing_window=options.timing_window,
        functional_window=options.functional_window,
        benchmarks=benchmarks,
        progress=progress,
        jobs=options.jobs,
        cache_dir=options.resolved_cache_dir(),
        task_timeout=options.task_timeout,
        profiler=profiler,
        incremental=options.incremental,
    )


def _codegen_options(
    options: Optional[Union[CompileOptions, CodegenOptions]]
) -> Optional[CodegenOptions]:
    if options is None or isinstance(options, CodegenOptions):
        return options
    return options.codegen()


def compile_source(
    source: str,
    options: Optional[Union[CompileOptions, CodegenOptions]] = None,
    emit: str = "program",
) -> Union[Program, str]:
    """Compile MiniC source; ``emit`` picks ``"program"`` or ``"asm"``."""
    if emit not in ("program", "asm"):
        raise ValueError(f"emit must be 'program' or 'asm', not {emit!r}")
    resolved = _codegen_options(options)
    if emit == "asm":
        return compile_to_assembly(source, resolved)
    return compile_program(source, resolved)


def run_workload(
    benchmark: str,
    input_name: Optional[str] = None,
    options: Optional[Union[CompileOptions, CodegenOptions]] = None,
    max_instructions: Optional[int] = None,
    trace_sink=None,
) -> RunResult:
    """Compile and execute one registry workload on the emulator."""
    from repro.isa.registers import V0

    work = _workload(benchmark, input_name)
    machine = work.run(
        max_instructions=max_instructions,
        trace_sink=trace_sink,
        options=_codegen_options(options),
    )
    return RunResult(
        workload=work.full_name,
        instructions=machine.instruction_count,
        halted=machine.halted,
        output=tuple(machine.output),
        return_value=machine.registers[V0],
    )


def characterize(
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: int = 100_000,
) -> CharacterizationResult:
    """Run the Figure 1-3 characterization over (part of) the suite.

    Unknown names raise :class:`repro.errors.UsageError` listing every
    offender (validated by the suite resolver before any run starts).
    """
    return _characterize(
        benchmarks=list(benchmarks) if benchmarks else None,
        max_instructions=max_instructions,
    )


def simulate(
    trace: Union[str, Sequence],
    machine: Optional[Union[MachineSpec, MachineConfig]] = None,
    input_name: Optional[str] = None,
    max_instructions: int = 60_000,
    options: Optional[Union[CompileOptions, CodegenOptions]] = None,
) -> SimStats:
    """Time a trace (or a workload named by string) on a machine.

    ``trace`` is either a finished record sequence or a workload name
    to compile, execute and trace first; ``machine`` is a
    :class:`MachineSpec`, a raw :class:`MachineConfig` (so the
    long-standing ``simulate(trace, table2_config(16))`` idiom keeps
    working), or ``None`` for the default 16-wide baseline.
    """
    if isinstance(trace, str):
        trace = _workload(trace, input_name).trace(
            max_instructions=max_instructions,
            options=_codegen_options(options),
        )
    if machine is None:
        machine = MachineSpec()
    if isinstance(machine, MachineSpec):
        machine = machine.config()
    return _simulate(trace, machine)


def simulate_batch(
    trace: Union[str, Sequence],
    machines: Sequence[Union[MachineSpec, MachineConfig]],
    input_name: Optional[str] = None,
    max_instructions: int = 60_000,
    options: Optional[Union[CompileOptions, CodegenOptions]] = None,
) -> List[SimStats]:
    """Time one trace on many machines in a single batched pass.

    Accepts the same trace/machine forms as :func:`simulate` and
    returns one :class:`SimStats` per machine, in order — bit-for-bit
    identical to sequential :func:`simulate` calls, but the trace is
    walked once for all distinct configurations (duplicates are
    deduplicated).  ``REPRO_BATCH=0`` falls back to sequential runs.
    """
    if isinstance(trace, str):
        trace = _workload(trace, input_name).trace(
            max_instructions=max_instructions,
            options=_codegen_options(options),
        )
    configs = [
        machine.config() if isinstance(machine, MachineSpec) else machine
        for machine in machines
    ]
    return _simulate_batch(trace, configs)


def lint(
    target: Optional[Union[str, Program]] = None,
    input_name: Optional[str] = None,
    options: Optional[Union[CompileOptions, CodegenOptions]] = None,
    jobs: Optional[int] = None,
) -> List[LintReport]:
    """Stack-discipline lint; always returns a list of reports.

    ``target`` is a workload name, an assembled :class:`Program`, or
    ``None`` to lint the entire registry suite; ``jobs`` fans the
    suite sweep over the parallel engine (``None``/``1`` = inline).
    """
    if jobs is not None and jobs < 1:
        raise UsageError(f"jobs must be >= 1, not {jobs!r}")
    resolved = _codegen_options(options)
    if target is None:
        return lint_all(options=resolved, jobs=jobs)
    if isinstance(target, Program):
        return [lint_program(target)]
    return [lint_workload(target, input_name, options=resolved)]


def lint_json(reports: List[LintReport], indent: int = 2) -> str:
    """Versioned JSON payload for a list of lint reports."""
    return json.dumps(versioned({
        "kind": "lint",
        "ok": all(report.ok for report in reports),
        "workloads": [report.to_dict() for report in reports],
    }), indent=indent)


@dataclass(frozen=True)
class CertifyResult:
    """One certified (and optionally trace-validated) program."""

    certificate: "ProgramCertificate"
    validation: Optional["ValidationResult"] = None

    @property
    def name(self) -> str:
        return self.certificate.name

    @property
    def ok(self) -> bool:
        """No hard flag, and the dynamic run (if any) stayed sound."""
        if not self.certificate.ok:
            return False
        return self.validation is None or self.validation.ok


def certify(
    target: Optional[Union[str, Program]] = None,
    input_name: Optional[str] = None,
    options: Optional[Union[CompileOptions, CodegenOptions]] = None,
    validate: bool = False,
    adversarial: bool = False,
    max_instructions: Optional[int] = None,
) -> List[CertifyResult]:
    """Whole-program stack-safety certification (``repro certify``).

    ``target`` is a workload name, an assembled :class:`Program`, or
    ``None`` for the entire registry suite; ``adversarial=True``
    instead certifies the contract-violating family of
    :mod:`repro.workloads.adversarial` (mutually exclusive with a
    target).  ``validate=True`` additionally executes each program on
    the emulator and cross-checks observed depth and escapes against
    the certificate.
    """
    from repro.analysis.certify import certify_program
    from repro.harness.certification import (
        certify_adversarial,
        certify_workload,
        validate_adversarial,
        validate_certificate,
        validate_workload,
    )
    from repro.trace.columnar import ColumnarTrace
    from repro.workloads import ALL_BENCHMARKS
    from repro.workloads.adversarial import ADVERSARIAL

    if adversarial and target is not None:
        raise UsageError("certify: adversarial excludes naming a target")
    resolved = _codegen_options(options)

    results: List[CertifyResult] = []
    if adversarial:
        for member in ADVERSARIAL:
            if validate:
                certificate, validation = validate_adversarial(
                    member, max_instructions=max_instructions or 1_000_000
                )
            else:
                certificate, validation = certify_adversarial(member), None
            results.append(CertifyResult(certificate, validation))
        return results

    if isinstance(target, Program):
        certificate = certify_program(target)
        validation = None
        if validate:
            from repro.emulator.machine import Machine

            trace = ColumnarTrace()
            machine = Machine(target)
            machine.run(max_instructions=max_instructions,
                        trace_sink=trace)
            validation = validate_certificate(
                certificate, trace, halted=machine.halted
            )
        return [CertifyResult(certificate, validation)]

    names = ALL_BENCHMARKS if target is None else [target]
    for name in names:
        work = _workload(name, input_name if target is not None else None)
        if validate:
            certificate, validation = validate_workload(
                work, options=resolved, max_instructions=max_instructions
            )
        else:
            certificate, validation = certify_workload(work, resolved), None
        results.append(CertifyResult(certificate, validation))
    return results


def certify_json(results: List[CertifyResult], indent: int = 2) -> str:
    """Versioned JSON payload for a list of certify results."""
    return json.dumps(versioned({
        "kind": "certify",
        "ok": all(result.ok for result in results),
        "programs": [
            {
                **result.certificate.to_dict(),
                "validation": (
                    result.validation.to_dict()
                    if result.validation is not None else None
                ),
            }
            for result in results
        ],
    }), indent=indent)


def sweep(
    suite: Union[str, "SweepSpec"],
    options: Optional[SweepOptions] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Run a declarative design-space sweep (``repro sweep``).

    ``suite`` is a descriptor path (YAML/JSON) or an already-validated
    :class:`repro.sweepspec.SweepSpec`.  A malformed descriptor raises
    :class:`repro.errors.UsageError` before any cell runs; a cell that
    fails after its retry degrades to an annotated gap row.  The run
    table (:meth:`SweepResult.run_table_json` and the rendered
    summary) is byte-identical across ``jobs`` values and across warm
    re-runs; with the disk cache on, completed cells are skipped, so
    interrupted sweeps resume.
    """
    from repro.sweepspec import SweepSpec, load_suite

    if isinstance(suite, str):
        suite = load_suite(suite)
    elif not isinstance(suite, SweepSpec):
        raise UsageError(
            f"sweep: expected a descriptor path or SweepSpec, "
            f"not {type(suite).__name__}"
        )
    return _run_sweep(suite, options=options, progress=progress)


def sweep_json(result: SweepResult, indent: int = 2) -> str:
    """Versioned JSON run-table payload for a finished sweep."""
    return result.run_table_json(indent=indent)


def chaos_check(
    options: Optional["ChaosOptions"] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> "ChaosResult":
    """Drive a report or sweep under injected faults (``repro chaos``).

    Kills workers mid-cell, hangs and fails cells, corrupts cache
    entries, and races two runs on one cache directory — then checks
    the invariants the harness documents: output byte-identical or
    explicitly annotated, the cache never poisoned, no orphan worker
    processes.  Returns a :class:`repro.harness.chaos.ChaosResult`;
    ``result.ok`` is the verdict the CLI maps to its exit code.
    """
    from repro.harness.chaos import run_chaos

    return run_chaos(options, progress=progress)


def chaos_json(result: "ChaosResult", indent: int = 2) -> str:
    """Versioned JSON verdict payload for a finished chaos run."""
    return json.dumps(versioned(result.to_dict()), indent=indent)


def load_suite(path: str) -> "SweepSpec":
    """Read and validate a sweep suite descriptor (YAML or JSON).

    Facade re-export of :func:`repro.sweepspec.load_suite`: raises
    :class:`UsageError` on unknown workloads, unknown grid axes, zero
    repetitions or any other malformation — before anything runs.
    """
    from repro.sweepspec import load_suite as _load_suite

    return _load_suite(path)


def predict(
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    capacity_bytes: int = 8192,
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
):
    """Static-vs-dynamic SVF traffic bounds (``repro predict``).

    Returns a :class:`repro.harness.prediction.PredictionReport`;
    unknown benchmark names raise :class:`UsageError` before any run
    starts, and ``jobs`` fans the measurement over the parallel
    engine.
    """
    from repro.harness.prediction import traffic_prediction_report
    from repro.workloads import validate_benchmarks

    if jobs is not None and jobs < 1:
        raise UsageError(f"jobs must be >= 1, not {jobs!r}")
    resolved = validate_benchmarks(benchmarks) if benchmarks else None
    return traffic_prediction_report(
        benchmarks=resolved,
        max_instructions=max_instructions,
        capacity_bytes=capacity_bytes,
        jobs=jobs,
        progress=progress,
    )


def experiment(name: str, window: Optional[int] = None) -> ExperimentResult:
    """Regenerate one paper artifact by name (see EXPERIMENT_NAMES).

    An unknown name raises :class:`UsageError` (CLI exit code 2),
    matching the behaviour of benchmark-subset validation.
    """
    if name not in EXPERIMENT_NAMES:
        raise UsageError(
            f"unknown experiment {name!r} (have {', '.join(EXPERIMENT_NAMES)})"
        )
    if name == "table1":
        text = table1_workloads()
    elif name == "table2":
        text = table2_models()
    elif name in ("fig1", "fig2", "fig3"):
        result = _characterize(max_instructions=window or 120_000)
        text = {
            "fig1": result.render_fig1,
            "fig2": result.render_fig2,
            "fig3": result.render_fig3,
        }[name]()
    elif name == "fig5":
        text = fig5_ideal_morphing(max_instructions=window or 60_000).render()
    elif name == "fig6":
        text = fig6_progressive(max_instructions=window or 60_000).render()
    elif name in ("fig7", "fig8"):
        result = fig7_svf_vs_stack_cache(max_instructions=window or 60_000)
        text = result.render() if name == "fig7" else result.render_fig8()
    elif name == "fig9":
        text = fig9_svf_speedup(max_instructions=window or 60_000).render()
    elif name == "table3":
        text = table3_memory_traffic(max_instructions=window or 120_000).render()
    else:  # table4
        text = table4_context_switch(max_instructions=window or 120_000).render()
    return ExperimentResult(name=name, window=window, text=text)


__all__ = [
    "CertifyResult",
    "ChaosOptions",
    "ChaosResult",
    "CompileOptions",
    "EXPERIMENT_NAMES",
    "ExperimentResult",
    "MachineSpec",
    "ReportOptions",
    "RunResult",
    "SCHEMA_VERSION",
    "SweepOptions",
    "SweepResult",
    "UsageError",
    "certify",
    "certify_json",
    "chaos_check",
    "chaos_json",
    "characterize",
    "compile_source",
    "experiment",
    "generate_report",
    "lint",
    "lint_json",
    "load_suite",
    "predict",
    "run_workload",
    "simulate",
    "simulate_batch",
    "sweep",
    "sweep_json",
    "versioned",
]
