"""Parallel experiment engine: picklable task cells over a process pool.

The report/prediction sweeps decompose into independent
(benchmark × experiment × window) :class:`TaskCell` units.  The engine
fans cells out over a ``ProcessPoolExecutor`` (``jobs`` workers,
default ``os.cpu_count()``), then the caller merges the picklable
payloads back **in suite order**, so the rendered document is
byte-identical to a serial (``jobs=1``) run — worker scheduling can
reorder execution but never the merge.

Failure semantics: a cell that raises inside a worker is retried once
(``EngineOptions.retries``); a cell that exhausts its retries or its
per-cell timeout degrades to a :class:`CellOutcome` with ``error`` set,
which the report renders as an annotated gap instead of crashing the
whole sweep.  ``task_timeout`` is a **per-attempt deadline measured
from submission**: each worker slot is a single-process executor, so
a submitted cell starts immediately and the deadline bounds its real
runtime; a cell that blows its deadline (or whose worker dies) has
its worker killed and replaced, so one hung cell can never hold a
pool slot hostage, and ``elapsed`` always reports real wall time.
``EngineOptions.fault_plan`` installs a :mod:`repro.harness.chaos`
fault plan in every worker, which is how the chaos harness proves all
of the above deterministically.

The engine is backed by :class:`TraceCache`, a shared on-disk
compile/trace cache keyed by (benchmark, input, opt level, window) and
versioned by :data:`repro.api.SCHEMA_VERSION`: worker processes and
repeated invocations reuse each functional trace instead of
re-emulating it.  The cache installs itself as the second level behind
the per-process cache of :func:`repro.workloads.cached_trace`, and it
also memoizes finished cell payloads, so a warm re-run skips the
timing model as well.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro import profiling
from repro.harness import chaos
from repro.trace.columnar import SharedColumnarTrace
from repro.trace.serialization import (
    TraceFormatError,
    load_trace,
    pack_shared,
    shared_payload_size,
    write_trace,
)
from repro.workloads import (
    get_disk_trace_cache,
    input_names,
    set_disk_trace_cache,
    set_shm_trace_cache,
    workload,
)

try:  # unavailable on exotic platforms; the engine degrades to pickle
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - all CI hosts have it
    _shared_memory = None


# ---------------------------------------------------------------------------
# Shared on-disk trace cache
# ---------------------------------------------------------------------------


def default_cache_dir() -> str:
    """``$XDG_CACHE_HOME``/repro-svf (or ~/.cache/repro-svf)."""
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-svf")


@dataclass
class CacheStats:
    """Per-namespace cache traffic.

    ``hits``/``misses``/``stores`` count functional-trace operations
    (the historical meaning); cell payloads and report sections have
    their own counters so ``--profile`` can attribute a warm run to
    the level that actually absorbed it.

    ``corrupt_dropped`` and ``transient_errors`` split the two ways a
    read can go wrong, across all namespaces: a **corrupt** entry
    (truncated/bit-flipped payload) is unlinked so it can never be
    served, while a **transient** I/O error (EINTR, a permission blip,
    a reader racing a writer) leaves the entry on disk — it may be
    perfectly valid for the next reader.  Both degrade to a miss.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    cell_hits: int = 0
    cell_misses: int = 0
    cell_stores: int = 0
    section_hits: int = 0
    section_misses: int = 0
    section_stores: int = 0
    corrupt_dropped: int = 0
    transient_errors: int = 0


#: distinguishes "entry absent" from a legitimately-None payload.
_MISS = object()


def _escape_key_part(value: Any) -> str:
    """Escape the structural separators of cell-cache file names.

    Cell keys join parts with ``.`` and bind names to values with
    ``-``; a param value containing either (a float machine field, a
    dotted label) could otherwise make two distinct cells share one
    path and serve each other's payloads.  Escaping only the three
    special characters keeps every existing key for plain values
    byte-identical, so warm caches stay warm.
    """
    return (
        str(value)
        .replace("%", "%25")
        .replace(".", "%2E")
        .replace("-", "%2D")
    )


class TraceCache:
    """On-disk store under ``<root>/v<SCHEMA_VERSION>/``, two namespaces:

    * functional traces, one ``.trace.bin`` file per (benchmark,
      input, opt level, window) key in the columnar binary format of
      :mod:`repro.trace.serialization` — shared by every section that
      replays the same trace, and loaded straight into the packed
      columns the hot loops consume (no per-record unpickling);
    * finished cell payloads (pickled) under ``cells/`` — a warm
      report skips the timing model entirely, not just emulation;
    * rendered report sections (pickled) under ``sections/``, keyed by
      a content digest of everything that feeds the section (see
      :func:`repro.harness.runall.section_content_key`) — the
      ``--incremental`` report mode reuses these without touching the
      cells at all.

    Writes are atomic (temp file + ``os.replace``) so concurrent
    workers can race on the same key safely — worst case both compute
    and one wins.  A corrupt or truncated entry is dropped and treated
    as a miss.  Invalidation is by schema version only: the directory
    name pins ``SCHEMA_VERSION``, which any payload- or
    trace-affecting change must bump (the columnar format itself
    bumped it to 2, so stale pickled caches are simply never seen).
    """

    def __init__(self, root: str):
        # Imported lazily: repro.api imports the harness package, so a
        # module-level import here would be circular.
        from repro.api import SCHEMA_VERSION

        self.root = Path(root) / f"v{SCHEMA_VERSION}"
        self.root.mkdir(parents=True, exist_ok=True)
        self.cells_root = self.root / "cells"
        self.sections_root = self.root / "sections"
        self.stats = CacheStats()

    def path_for(self, key) -> Path:
        benchmark, input_name, opt_level, window = key
        window_tag = "full" if window is None else str(window)
        return self.root / (
            f"{benchmark}.{input_name}.O{opt_level}.w{window_tag}.trace.bin"
        )

    def cell_path_for(self, cell: "TaskCell") -> Path:
        window_tag = "full" if cell.window is None else str(cell.window)
        parts = [cell.section, cell.benchmark, f"w{window_tag}"]
        parts += [
            f"{_escape_key_part(name)}-{_escape_key_part(value)}"
            for name, value in cell.params
        ]
        return self.cells_root / (".".join(parts) + ".cell.pkl")

    def _read(self, path: Path, kind: str) -> Any:
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self._bump(kind, "misses")
            return _MISS
        except OSError:
            # Transient I/O error (EINTR, permission blip, reader
            # racing a writer): the entry may be perfectly valid, so
            # it must survive for the next reader.
            self.stats.transient_errors += 1
            self._bump(kind, "misses")
            return _MISS
        try:
            # The digest prefix catches what unpickling alone cannot:
            # a flipped bit inside a pickled str/int often still
            # unpickles — to the wrong value.
            digest, payload = blob[:32], blob[32:]
            if hashlib.sha256(payload).digest() != digest:
                raise ValueError("cache entry digest mismatch")
            value = pickle.loads(payload)
        except Exception:
            # Genuine corruption (truncated/bit-flipped payload): drop
            # the entry so it can never be served.
            self.stats.corrupt_dropped += 1
            try:
                path.unlink()
            except OSError:
                pass
            self._bump(kind, "misses")
            return _MISS
        self._bump(kind, "hits")
        return value

    def _write(self, path: Path, value: Any, kind: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp"
        )
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(hashlib.sha256(blob).digest())
                handle.write(blob)
            os.replace(temp_path, path)
        except Exception:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            return
        self._bump(kind, "stores")

    def _bump(self, kind: str, event: str) -> None:
        setattr(
            self.stats,
            f"{kind}_{event}",
            getattr(self.stats, f"{kind}_{event}") + 1,
        )

    def load(self, key):
        """Columnar trace for ``key``, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            trace = load_trace(str(path))
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (TraceFormatError, ValueError):
            # Corrupt format: unlink so the entry is never served.
            self.stats.corrupt_dropped += 1
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.misses += 1
            return None
        except OSError:
            # Transient I/O error: a valid entry must not be lost.
            self.stats.transient_errors += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return trace

    def store(self, key, trace) -> None:
        """Atomically persist a trace in the columnar binary format."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                write_trace(handle, trace)
            os.replace(temp_path, path)
        except Exception:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            return
        self.stats.stores += 1

    def load_cell(self, cell: "TaskCell") -> Any:
        """Finished payload for ``cell``, or the ``_MISS`` sentinel."""
        return self._read(self.cell_path_for(cell), "cell")

    def store_cell(self, cell: "TaskCell", payload: Any) -> None:
        self._write(self.cell_path_for(cell), payload, "cell")

    def section_path_for(self, section: str, key: str) -> Path:
        return self.sections_root / f"{section}.{key}.section.pkl"

    def load_section(self, section: str, key: str) -> Any:
        """Rendered payload for a section content key, or ``_MISS``.

        The content key bakes in every input of the section (workload
        sources, compile options, machine specs, windows, analysis
        version), so a stale entry is simply never addressed — there
        is no in-place invalidation to get wrong.
        """
        return self._read(self.section_path_for(section, key), "section")

    def store_section(self, section: str, key: str, payload: Any) -> None:
        self._write(self.section_path_for(section, key), payload, "section")


# ---------------------------------------------------------------------------
# Shared-memory trace fan-out
# ---------------------------------------------------------------------------

#: where POSIX shared memory shows up as files (Linux); the prefix
#: sweep and the chaos leak check both scan it.
_SHM_DIR = Path("/dev/shm")


def shm_available() -> bool:
    """True when the shared-memory fan-out path can work on this host.

    Needs :mod:`multiprocessing.shared_memory` *and* a scannable
    ``/dev/shm`` — the engine guarantees cleanup by sweeping its
    run-scoped name prefix, which requires segments to be enumerable.
    Anything else falls back to the pickle/disk path.
    """
    return _shared_memory is not None and _SHM_DIR.is_dir()


def _untrack_shm(segment) -> None:
    """Opt this process's resource tracker out of managing ``segment``.

    Every worker maps the same segments; the default per-process
    tracker would unlink them when the first worker exits (and warn
    about double unlinks).  Ownership belongs to the engine run: the
    parent's prefix sweep in :func:`run_cells` is the only unlink.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker layout changed
        pass


class ShmTraceCache:
    """Zero-copy trace fan-out over ``multiprocessing.shared_memory``.

    The first worker to materialize a functional trace (from the
    emulator or the disk cache) *publishes* the packed columns into a
    named segment; every other worker *attaches* a read-only
    :class:`~repro.trace.columnar.SharedColumnarTrace` view in O(1),
    so fan-out cost stops scaling with trace size.  Segment names are
    a pure function of (run prefix, trace key), so workers need no
    coordination channel; the payload's commit-record magic (see
    ``repro.trace.serialization.pack_shared``) makes a segment left
    torn by a killed worker read as a miss, never as a wrong trace.

    Registered in workers via ``repro.workloads.set_shm_trace_cache``;
    the engine's parent process sweeps ``/dev/shm`` for the run prefix
    when the run ends, so no segment outlives :func:`run_cells`.
    """

    def __init__(self, prefix: str):
        self.prefix = prefix
        self.attaches = 0
        self.publishes = 0
        self.fanout_bytes = 0

    def segment_name(self, key) -> str:
        import hashlib

        digest = hashlib.sha1(repr(key).encode()).hexdigest()[:16]
        return f"{self.prefix}{digest}"

    def load(self, key) -> Optional[SharedColumnarTrace]:
        """Attach the published trace for ``key``, or None on miss."""
        if _shared_memory is None:
            return None
        try:
            segment = _shared_memory.SharedMemory(
                name=self.segment_name(key), create=False
            )
        except (FileNotFoundError, OSError, ValueError):
            return None
        _untrack_shm(segment)
        trace = SharedColumnarTrace.from_buffer(segment.buf, owner=segment)
        if trace is None:
            # Uncommitted payload (writer raced or was killed mid-pack).
            segment.close()
            return None
        self.attaches += 1
        self.fanout_bytes += trace.nbytes
        profiler = profiling.active()
        if profiler is not None:
            profiler.count("shm_trace_attaches")
            profiler.count("shm_fanout_bytes", trace.nbytes)
        return trace

    def publish(self, key, trace) -> None:
        """Export a trace for the other workers; never raises."""
        if _shared_memory is None or isinstance(trace, SharedColumnarTrace):
            return
        size = shared_payload_size(len(trace))
        try:
            segment = _shared_memory.SharedMemory(
                name=self.segment_name(key), create=True, size=size
            )
        except FileExistsError:
            return  # another worker won the race; its copy is identical
        except (OSError, ValueError):
            return  # /dev/shm full or unusable: pickle path still works
        _untrack_shm(segment)
        try:
            pack_shared(segment.buf, trace)
        finally:
            segment.close()
        self.publishes += 1
        profiler = profiling.active()
        if profiler is not None:
            profiler.count("shm_trace_publishes")


def sweep_shm_segments(prefix: str) -> List[Tuple[str, int]]:
    """Unlink every segment with ``prefix``; returns (name, bytes)."""
    removed: List[Tuple[str, int]] = []
    if not prefix or not shm_available():
        return removed
    for path in _SHM_DIR.glob(prefix + "*"):
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            continue
        removed.append((path.name, size))
    return removed


def leaked_shm_segments(prefix: str) -> List[str]:
    """Segments with ``prefix`` still present (chaos leak check)."""
    if not prefix or not shm_available():
        return []
    return sorted(path.name for path in _SHM_DIR.glob(prefix + "*"))


# ---------------------------------------------------------------------------
# Task cells
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TaskCell:
    """One picklable unit of sweep work: section × benchmark × window."""

    section: str
    benchmark: str
    window: Optional[int]
    #: extra hashable keyword parameters, e.g. (("period", 3200),)
    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def label(self) -> str:
        config = dict(self.params).get("config")
        if config is None:
            return f"{self.section}×{self.benchmark}"
        return f"{self.section}×{self.benchmark}[{config}]"

    def param(self, name: str, default: Any = None) -> Any:
        return dict(self.params).get(name, default)


def _cell_characterize(cell: TaskCell) -> Dict[str, Any]:
    from repro.harness.experiments import characterize

    result = characterize([cell.benchmark], max_instructions=cell.window)
    name = cell.benchmark
    return {
        "distribution": result.distributions[name],
        "depth": result.depth_profiles[name],
        "locality": result.localities[name],
        "first_touch": result.first_touch[name],
    }


def _cell_fig5(cell: TaskCell) -> Any:
    """Fig 5: one column per cell (``config`` param), or the whole
    benchmark row for legacy cells that carry no ``config``."""
    from repro.harness.experiments import (
        fig5_config_speedup,
        fig5_ideal_morphing,
    )

    config = cell.param("config")
    if config is None:
        result = fig5_ideal_morphing(
            [cell.benchmark], max_instructions=cell.window
        )
        return result.speedups[cell.benchmark]
    return fig5_config_speedup(
        cell.benchmark, config, max_instructions=cell.window
    )


def _cell_fig6(cell: TaskCell) -> Any:
    from repro.harness.experiments import (
        fig6_config_speedup,
        fig6_progressive,
    )

    config = cell.param("config")
    if config is None:
        result = fig6_progressive(
            [cell.benchmark], max_instructions=cell.window
        )
        return result.speedups[cell.benchmark]
    return fig6_config_speedup(
        cell.benchmark, config, max_instructions=cell.window
    )


def _cell_fig7(cell: TaskCell) -> Dict[str, Any]:
    from repro.harness.experiments import (
        fig7_config_result,
        fig7_svf_vs_stack_cache,
    )

    config = cell.param("config")
    if config is None:
        result = fig7_svf_vs_stack_cache(
            [cell.benchmark], max_instructions=cell.window
        )
        return {
            "speedups": result.speedups[cell.benchmark],
            "svf_stats": result.svf_stats[cell.benchmark],
        }
    speedup, svf_stats = fig7_config_result(
        cell.benchmark, config, max_instructions=cell.window
    )
    payload: Dict[str, Any] = {"speedup": speedup}
    if svf_stats is not None:
        payload["svf_stats"] = svf_stats
    return payload


def _cell_fig9(cell: TaskCell) -> Any:
    from repro.harness.experiments import (
        fig9_config_speedup,
        fig9_svf_speedup,
    )

    config = cell.param("config")
    if config is None:
        result = fig9_svf_speedup(
            [cell.benchmark], max_instructions=cell.window
        )
        return result.speedups[cell.benchmark]
    return fig9_config_speedup(
        cell.benchmark, config, max_instructions=cell.window
    )


def _cell_table3(cell: TaskCell) -> Dict[str, Dict[int, Any]]:
    from repro.harness.experiments import table3_memory_traffic

    inputs = [
        workload(cell.benchmark, input_name)
        for input_name in input_names(cell.benchmark)
    ]
    result = table3_memory_traffic(
        max_instructions=cell.window, inputs=inputs
    )
    return result.traffic


def _cell_table4(cell: TaskCell) -> Tuple[float, float]:
    from repro.harness.experiments import table4_context_switch

    result = table4_context_switch(
        [cell.benchmark],
        max_instructions=cell.window,
        period=cell.param("period", 25_000),
    )
    return result.rows[cell.benchmark]


def _cell_prediction(cell: TaskCell):
    from repro.harness.prediction import check_workload

    return check_workload(
        cell.benchmark,
        max_instructions=cell.window,
        capacity_bytes=cell.param("capacity_bytes", 8192),
    )


def _cell_lint(cell: TaskCell):
    from repro.analysis.lint import lint_workload
    from repro.lang.codegen import CodegenOptions

    options = None
    opt_level = cell.param("opt_level")
    if opt_level is not None:
        options = CodegenOptions(opt_level=opt_level)
    return lint_workload(cell.benchmark, options=options)


def _cell_sweep(cell: TaskCell):
    """One declarative-sweep run-table row (see repro.harness.sweep)."""
    from repro.harness.sweep import run_sweep_cell

    return run_sweep_cell(cell)


def _cell_sweep_batch(cell: TaskCell):
    """One fused group of timing sweep rows (see repro.harness.sweep)."""
    from repro.harness.sweep import run_sweep_batch_cell

    return run_sweep_batch_cell(cell)


_CELL_RUNNERS: Dict[str, Callable[[TaskCell], Any]] = {
    "characterize": _cell_characterize,
    "lint": _cell_lint,
    "sweep": _cell_sweep,
    "sweep-batch": _cell_sweep_batch,
    "fig5": _cell_fig5,
    "fig6": _cell_fig6,
    "fig7": _cell_fig7,
    "fig9": _cell_fig9,
    "table3": _cell_table3,
    "table4": _cell_table4,
    "prediction": _cell_prediction,
}

#: Sections whose runners manage the cell cache themselves, per
#: member: a fused cell's identity enumerates every member, so an
#: engine-level entry would duplicate the members' entries under an
#: unbounded key (and defeat per-member warm resume).  The engine
#: skips its own load/store for these and lets the runner count the
#: per-member hits and misses.
_SELF_CACHING_SECTIONS = frozenset({"sweep-batch"})


def _execute_cell(
    cell: TaskCell,
) -> Tuple[str, Any, float, profiling.Snapshot]:
    """Worker entry: never raises — failures travel back as payloads.

    Each cell runs under its own phase profiler (saved/restored, so
    inline runs nest inside any caller-scoped profiler) and ships the
    picklable snapshot back as the fourth tuple element; a cache hit
    ships no phases (none ran), only the hit counter, so warm-run
    breakdowns explain themselves without inventing wall time.
    """
    started = time.perf_counter()
    profiler = profiling.PhaseProfiler()
    previous = profiling.swap(profiler)
    cache = get_disk_trace_cache()
    corrupt_before = cache.stats.corrupt_dropped if cache is not None else 0
    transient_before = (
        cache.stats.transient_errors if cache is not None else 0
    )

    def _cache_health_counters() -> None:
        if cache is None:
            return
        profiler.count(
            "cache_corrupt_dropped",
            cache.stats.corrupt_dropped - corrupt_before,
        )
        profiler.count(
            "cache_transient_errors",
            cache.stats.transient_errors - transient_before,
        )

    try:
        # The chaos hook may sleep, raise, or SIGKILL this process —
        # after the profiler swap so fault counters ship back in the
        # snapshot, before the cache lookup so a killed cell's retry
        # exercises the full lookup-or-compute path.
        chaos.on_cell_start(cell)
        self_caching = cell.section in _SELF_CACHING_SECTIONS
        if cache is not None and not self_caching:
            payload = cache.load_cell(cell)
            if payload is not _MISS:
                profiler.count("cell_cache_hits")
                _cache_health_counters()
                return (
                    "ok",
                    payload,
                    time.perf_counter() - started,
                    profiler.snapshot(),
                )
            profiler.count("cell_cache_misses")
        runner = _CELL_RUNNERS.get(cell.section)
        if runner is None:
            raise KeyError(f"unknown cell section {cell.section!r}")
        trace_hits = cache.stats.hits if cache is not None else 0
        trace_misses = cache.stats.misses if cache is not None else 0
        payload = runner(cell)
        if cache is not None:
            if not self_caching:
                cache.store_cell(cell, payload)
            profiler.count("trace_cache_hits", cache.stats.hits - trace_hits)
            profiler.count(
                "trace_cache_misses", cache.stats.misses - trace_misses
            )
        _cache_health_counters()
        return (
            "ok",
            payload,
            time.perf_counter() - started,
            profiler.snapshot(),
        )
    except Exception as exc:
        message = f"{type(exc).__name__}: {exc}"
        _cache_health_counters()
        return (
            "error",
            message,
            time.perf_counter() - started,
            profiler.snapshot(),
        )
    finally:
        profiling.swap(previous)


def _init_worker(
    cache_dir: Optional[str],
    fault_plan: Optional[chaos.FaultPlan] = None,
    shm_prefix: Optional[str] = None,
) -> None:
    if cache_dir:
        set_disk_trace_cache(TraceCache(cache_dir))
    if shm_prefix:
        set_shm_trace_cache(ShmTraceCache(shm_prefix))
    if fault_plan is not None:
        # Real workers take real SIGKILLs — the engine must survive
        # losing the process, not a polite exception.
        chaos.install(fault_plan, simulate_kill=False)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EngineOptions:
    """Scheduler knobs: parallelism, cache location, failure policy."""

    #: worker processes; None means ``os.cpu_count()``; 1 runs inline.
    jobs: Optional[int] = None
    #: on-disk trace cache root; None disables the disk level entirely.
    cache_dir: Optional[str] = None
    #: per-attempt deadline in seconds, measured from submission.
    task_timeout: float = 600.0
    #: extra attempts after the first failure/timeout of a cell.
    retries: int = 1
    #: deterministic fault plan installed in every worker (chaos runs).
    fault_plan: Optional[chaos.FaultPlan] = None
    #: fan traces out to workers over POSIX shared memory (zero-copy
    #: attach instead of per-worker disk reads); silently degrades to
    #: the pickle/disk path when the host has no usable /dev/shm.
    shared_memory: bool = True

    def effective_jobs(self) -> int:
        if self.jobs is None:
            return max(1, os.cpu_count() or 1)
        return max(1, self.jobs)


@dataclass
class EngineReport:
    """Post-run health facts the chaos invariant checker asserts on.

    Recorded by both the serial and the pool path after every
    :func:`run_cells` call (:func:`last_engine_report` returns the most
    recent one).  ``worker_pids`` is every worker process the run ever
    spawned — including ones that were killed and replaced — so "no
    orphan workers" is checkable from the outside without scanning the
    process table.
    """

    #: pid of every worker process spawned over the run's lifetime.
    worker_pids: Set[int] = field(default_factory=set)
    #: workers killed and replaced (timeout or broken process).
    recycled: int = 0
    #: attempts that blew their per-attempt deadline.
    timeouts: int = 0
    #: attempts lost to a dead worker (SIGKILL, crash).
    broken: int = 0
    #: run-scoped shared-memory segment name prefix (None = shm off).
    shm_prefix: Optional[str] = None
    #: segments the end-of-run sweep unlinked, and their total bytes.
    shm_segments: int = 0
    shm_bytes: int = 0


@dataclass
class CellOutcome:
    """What happened to one cell: payload on success, error on failure."""

    cell: TaskCell
    payload: Any = None
    error: Optional[str] = None
    elapsed: float = 0.0
    attempts: int = 1
    #: per-phase (calls, seconds, items) measured inside the worker;
    #: empty when the payload came from the cell cache.
    phases: profiling.Snapshot = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.phases is None:
            self.phases = {}

    @property
    def ok(self) -> bool:
        return self.error is None


#: the :class:`EngineReport` of the most recent :func:`run_cells`.
_LAST_REPORT: Optional[EngineReport] = None


def last_engine_report() -> Optional[EngineReport]:
    """Health report of the most recent :func:`run_cells` call."""
    return _LAST_REPORT


def run_cells(
    cells: Sequence[TaskCell],
    options: EngineOptions = EngineOptions(),
    progress: Optional[Callable[[str], None]] = None,
) -> List[CellOutcome]:
    """Execute every cell; outcomes come back in the order given.

    ``jobs == 1`` (or a single cell) runs inline in this process —
    the exact code path the workers run, so parallel and serial sweeps
    produce identical payloads.
    """
    cells = list(cells)
    note = progress if progress is not None else (lambda message: None)
    if options.effective_jobs() == 1 or len(cells) <= 1:
        return _run_serial(cells, options, note)
    return _run_pool(cells, options, note)


def _note_outcome(
    note: Callable[[str], None], outcome: CellOutcome, done: int, total: int
) -> None:
    status = "ok" if outcome.ok else f"FAILED ({outcome.error})"
    retried = f", attempt {outcome.attempts}" if outcome.attempts > 1 else ""
    note(
        f"[{done}/{total}] {outcome.cell.label} {status} "
        f"({outcome.elapsed:.1f}s{retried})"
    )


def _run_serial(
    cells: List[TaskCell],
    options: EngineOptions,
    note: Callable[[str], None],
) -> List[CellOutcome]:
    global _LAST_REPORT
    previous_cache = get_disk_trace_cache()
    if options.cache_dir:
        set_disk_trace_cache(TraceCache(options.cache_dir))
    previous_plan = None
    if options.fault_plan is not None:
        # Inline runs can't SIGKILL the caller's own process, so
        # ``kill`` faults surface as a ChaosKill error and ride the
        # same retry path a dead worker does.
        previous_plan = chaos.install(options.fault_plan,
                                      simulate_kill=True)
    try:
        outcomes = []
        for index, cell in enumerate(cells):
            attempts = 0
            while True:
                attempts += 1
                status, payload, elapsed, phases = _execute_cell(cell)
                if status == "ok" or attempts > options.retries:
                    break
                note(f"retrying {cell.label} ({payload})")
            outcome = CellOutcome(
                cell=cell,
                payload=payload if status == "ok" else None,
                error=None if status == "ok" else str(payload),
                elapsed=elapsed,
                attempts=attempts,
                phases=phases,
            )
            outcomes.append(outcome)
            _note_outcome(note, outcome, index + 1, len(cells))
        _LAST_REPORT = EngineReport()
        return outcomes
    finally:
        if options.cache_dir:
            set_disk_trace_cache(previous_cache)
        if options.fault_plan is not None:
            chaos.install(previous_plan)


class _WorkerSlot:
    """One pool slot: a single-process executor plus its in-flight cell.

    Each slot owns a one-worker ``ProcessPoolExecutor``, so a submitted
    cell starts immediately and the per-attempt deadline measured from
    submission bounds the cell's *real* runtime — a shared executor
    would start queued cells whenever a worker freed up, making any
    submission-anchored deadline meaningless.  Killing a hung or dead
    worker breaks only this slot's executor; :meth:`recycle` replaces
    it and the rest of the pool never notices.
    """

    def __init__(
        self,
        options: EngineOptions,
        report: EngineReport,
        shm_prefix: Optional[str] = None,
    ):
        self._options = options
        self._report = report
        self._shm_prefix = shm_prefix
        self._executor: Optional[ProcessPoolExecutor] = None
        self.future = None
        self.index = -1
        self.attempt = 0
        self.started = 0.0
        self.deadline = float("inf")

    def submit(self, index: int, attempt: int, cell: TaskCell) -> None:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=1,
                initializer=_init_worker,
                initargs=(self._options.cache_dir,
                          self._options.fault_plan,
                          self._shm_prefix),
            )
        self.index = index
        self.attempt = attempt
        self.started = time.monotonic()
        self.deadline = self.started + self._options.task_timeout
        self.future = self._executor.submit(_execute_cell, cell)
        # Submission spawns the worker; record its pid so the chaos
        # checker can assert nothing outlives the run.
        for proc in list(self._executor._processes.values()):
            self._report.worker_pids.add(proc.pid)

    def recycle(self) -> None:
        """Kill this slot's worker, reap it, and drop the executor."""
        executor, self._executor = self._executor, None
        self.future = None
        self.deadline = float("inf")
        if executor is None:
            return
        processes = list(executor._processes.values())
        for proc in processes:
            proc.kill()
        for proc in processes:
            proc.join()
        executor.shutdown(wait=False, cancel_futures=True)
        self._report.recycled += 1

    def close(self) -> None:
        """Graceful shutdown of a healthy, idle slot."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)


def _run_pool(
    cells: List[TaskCell],
    options: EngineOptions,
    note: Callable[[str], None],
) -> List[CellOutcome]:
    global _LAST_REPORT
    total = len(cells)
    outcomes: List[Optional[CellOutcome]] = [None] * total
    report = EngineReport()
    shm_prefix = None
    if options.shared_memory and shm_available():
        # Run-scoped prefix: workers derive segment names from it, and
        # the end-of-run sweep below unlinks exactly this namespace —
        # even segments published by a worker that was later SIGKILLed.
        shm_prefix = f"svf-{os.getpid()}-{os.urandom(4).hex()}-"
        report.shm_prefix = shm_prefix
    pending = deque((index, 1) for index in range(total))
    slots = [
        _WorkerSlot(options, report, shm_prefix)
        for _ in range(min(options.effective_jobs(), total))
    ]
    done = 0

    def finish(index: int, attempt: int, status: str, payload: Any,
               elapsed: float, phases: profiling.Snapshot) -> None:
        nonlocal done
        if status != "ok" and attempt <= options.retries:
            note(f"retrying {cells[index].label} ({payload})")
            pending.append((index, attempt + 1))
            return
        outcome = CellOutcome(
            cell=cells[index],
            payload=payload if status == "ok" else None,
            error=None if status == "ok" else str(payload),
            elapsed=elapsed,
            attempts=attempt,
            phases=phases,
        )
        outcomes[index] = outcome
        done += 1
        _note_outcome(note, outcome, done, total)

    try:
        while done < total:
            for slot in slots:
                if slot.future is None and pending:
                    index, attempt = pending.popleft()
                    try:
                        slot.submit(index, attempt, cells[index])
                    except Exception as exc:
                        finish(index, attempt, "error",
                               f"{type(exc).__name__}: {exc}", 0.0, {})
            busy = [slot for slot in slots if slot.future is not None]
            if not busy:
                continue
            slack = min(slot.deadline for slot in busy) - time.monotonic()
            completed, _ = wait(
                {slot.future for slot in busy},
                timeout=max(0.0, slack),
                return_when=FIRST_COMPLETED,
            )
            now = time.monotonic()
            for slot in busy:
                if slot.future in completed:
                    index, attempt = slot.index, slot.attempt
                    started, future = slot.started, slot.future
                    slot.future = None
                    slot.deadline = float("inf")
                    try:
                        status, payload, elapsed, phases = future.result()
                    except Exception as exc:
                        # The worker died mid-cell (SIGKILL, crash):
                        # the executor is broken, so replace it.
                        report.broken += 1
                        slot.recycle()
                        status = "error"
                        payload = (
                            f"worker died: {type(exc).__name__}: {exc}"
                        )
                        elapsed = now - started
                        phases = {}
                    finish(index, attempt, status, payload, elapsed,
                           phases)
                elif now >= slot.deadline:
                    index, attempt = slot.index, slot.attempt
                    elapsed = now - slot.started
                    report.timeouts += 1
                    slot.recycle()
                    finish(
                        index, attempt, "error",
                        f"timed out after {elapsed:.1f}s (deadline "
                        f"{options.task_timeout:.0f}s)",
                        elapsed, {},
                    )
    finally:
        for slot in slots:
            if slot.future is not None:
                # Interrupted mid-run: never leave a worker running.
                slot.recycle()
            else:
                slot.close()
        # Workers never unlink (they may not be last); the run owns the
        # namespace, so sweeping the prefix here is the single point of
        # cleanup and makes "no leaked segments" checkable afterwards.
        removed = sweep_shm_segments(shm_prefix) if shm_prefix else []
        report.shm_segments = len(removed)
        report.shm_bytes = sum(size for _, size in removed)
        _LAST_REPORT = report
    return outcomes  # type: ignore[return-value]


__all__ = [
    "CacheStats",
    "CellOutcome",
    "EngineOptions",
    "EngineReport",
    "ShmTraceCache",
    "TaskCell",
    "TraceCache",
    "default_cache_dir",
    "last_engine_report",
    "leaked_shm_segments",
    "run_cells",
    "shm_available",
    "sweep_shm_segments",
]
