"""Built-in phase profiler for the trace pipeline.

The end-to-end cost of every experiment decomposes into a handful of
phases — ``compile`` (MiniC → assembled program), ``emulate`` (the
functional emulator filling trace columns), ``timing`` (the
out-of-order model), ``traffic`` (the Table 3/4 traffic model) and
``render`` (report text generation).  Each hot loop notes its own
wall time and instruction count into the *active* profiler, if one is
installed; with no profiler active the per-call overhead is one
module-global ``None`` check per phase invocation (not per
instruction), so production runs pay nothing measurable.

Snapshots are plain dicts, so they pickle across the parallel
engine's process boundary: each worker profiles its own cell and
ships the snapshot back with the payload (see
:class:`repro.harness.parallel.CellOutcome`), and the caller merges
them into one suite-wide breakdown.  ``repro report --profile`` and
``repro profile <benchmark>`` render that breakdown; it never enters
the report document itself, which stays byte-comparable across runs.

Besides timed phases the profiler carries named *counters* — cache
hit/miss/section-reuse tallies from :mod:`repro.harness.parallel` —
so a ``--profile`` run explains *why* a warm report was fast, not
just that it was.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

#: Canonical rendering order; unknown phases sort after these.
PHASE_ORDER = (
    "compile", "emulate", "timing", "traffic", "analysis", "render"
)

#: Picklable form of a profiler.  The current shape is
#: ``{"phases": {phase: (calls, seconds, items)}, "counters": {...}}``;
#: :meth:`PhaseProfiler.merge` also still folds the legacy flat
#: ``{phase: (calls, seconds, items)}`` shape (pre-counter snapshots).
Snapshot = Dict[str, Tuple[int, float, int]]


@dataclass
class PhaseStat:
    """Accumulated cost of one phase."""

    calls: int = 0
    seconds: float = 0.0
    #: instructions (or records) processed — 0 when not meaningful.
    items: int = 0

    @property
    def mips(self) -> float:
        """Millions of items per second (0.0 when unmeasured)."""
        if self.seconds <= 0.0 or self.items == 0:
            return 0.0
        return self.items / self.seconds / 1e6


class PhaseProfiler:
    """Accumulates :class:`PhaseStat` per phase; mergeable, renderable."""

    def __init__(self) -> None:
        self.phases: Dict[str, PhaseStat] = {}
        self.counters: Dict[str, int] = {}

    def note(self, phase: str, seconds: float, items: int = 0) -> None:
        stat = self.phases.get(phase)
        if stat is None:
            stat = self.phases[phase] = PhaseStat()
        stat.calls += 1
        stat.seconds += seconds
        stat.items += items

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named event counter (cache hits, sections reused...)."""
        if n:
            self.counters[name] = self.counters.get(name, 0) + n

    def merge(self, snapshot: Optional[Snapshot]) -> None:
        """Fold a picklable snapshot (e.g. from a worker) into this one.

        Accepts both the current ``{"phases": ..., "counters": ...}``
        shape and the legacy flat ``{phase: (calls, seconds, items)}``
        shape shipped by pre-counter caches.
        """
        if not snapshot:
            return
        if set(snapshot) <= {"phases", "counters"} and all(
            isinstance(value, dict) for value in snapshot.values()
        ):
            phases = snapshot.get("phases", {})
            for name, n in snapshot.get("counters", {}).items():
                self.count(name, n)
        else:
            phases = snapshot
        for phase, (calls, seconds, items) in phases.items():
            stat = self.phases.get(phase)
            if stat is None:
                stat = self.phases[phase] = PhaseStat()
            stat.calls += calls
            stat.seconds += seconds
            stat.items += items

    def snapshot(self) -> Snapshot:
        return {
            "phases": {
                phase: (stat.calls, stat.seconds, stat.items)
                for phase, stat in self.phases.items()
            },
            "counters": dict(self.counters),
        }

    @property
    def total_seconds(self) -> float:
        return sum(stat.seconds for stat in self.phases.values())

    def render(self, title: str = "Phase profile") -> str:
        """Human-readable per-phase wall-time / throughput table."""
        total = self.total_seconds
        lines = [
            f"{title} (phase total {total:.3f}s)",
            f"{'phase':10s} {'calls':>6s} {'seconds':>9s} {'share':>7s} "
            f"{'Minstr':>9s} {'MIPS':>8s}",
        ]
        ordered = [p for p in PHASE_ORDER if p in self.phases]
        ordered += sorted(p for p in self.phases if p not in PHASE_ORDER)
        for phase in ordered:
            stat = self.phases[phase]
            share = 100.0 * stat.seconds / total if total > 0 else 0.0
            mips = f"{stat.mips:8.2f}" if stat.items else f"{'-':>8s}"
            lines.append(
                f"{phase:10s} {stat.calls:6d} {stat.seconds:9.3f} "
                f"{share:6.1f}% {stat.items / 1e6:9.2f} {mips}"
            )
        if self.counters:
            lines.append("cache counters:")
            # Width fits the longest name (the superblock and shm
            # counters outgrew the old fixed column).
            width = max(24, max(len(name) for name in self.counters))
            for name in sorted(self.counters):
                lines.append(
                    f"  {name:{width}s} {self.counters[name]:10d}"
                )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The active profiler (per process)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[PhaseProfiler] = None


def active() -> Optional[PhaseProfiler]:
    """The currently installed profiler, or None (profiling off)."""
    return _ACTIVE


def swap(profiler: Optional[PhaseProfiler]) -> Optional[PhaseProfiler]:
    """Install ``profiler`` (or None) and return the previous one.

    Save/restore semantics rather than a flat on/off switch: the
    parallel engine's inline path runs cells in the caller's process,
    where a cell-scoped profiler must nest inside (and not clobber)
    any caller-scoped one.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profiler
    return previous


def note(phase: str, seconds: float, items: int = 0) -> None:
    """Accumulate into the active profiler; no-op when none installed."""
    if _ACTIVE is not None:
        _ACTIVE.note(phase, seconds, items)


def note_counter(name: str, n: int = 1) -> None:
    """Bump a named counter on the active profiler; no-op when none.

    Used by layers that count events rather than time phases — e.g.
    the chaos fault injector tallying ``chaos_*_faults`` so a chaos
    run's profile shows exactly which faults actually fired.
    """
    if _ACTIVE is not None:
        _ACTIVE.count(name, n)


@contextmanager
def profiled(
    profiler: Optional[PhaseProfiler] = None,
) -> Iterator[PhaseProfiler]:
    """Context manager: install a profiler for the dynamic extent."""
    if profiler is None:
        profiler = PhaseProfiler()
    previous = swap(profiler)
    try:
        yield profiler
    finally:
        swap(previous)


__all__ = [
    "PHASE_ORDER",
    "PhaseProfiler",
    "PhaseStat",
    "Snapshot",
    "active",
    "note",
    "note_counter",
    "profiled",
    "swap",
]
