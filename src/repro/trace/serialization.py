"""Binary trace serialization.

Traces are expensive to produce (functional emulation) and cheap to
replay (the timing model), so persisting them pays off when sweeping
many machine configurations — the same split SimpleScalar users make
with EIO traces.  The format is a fixed 44-byte little-endian record:

``<I``  pc
``<B``  opcode number (see :mod:`repro.isa.encoding`)
``<B``  flags (load/store/branch/conditional/taken/sp-update bits)
``<B``  size, ``<b`` base_reg (-1 = none), ``<b`` dst (-1 = none),
``<b``  src count, ``<BB`` srcs,
``<q``  displacement (a full immediate for ALU records),
``<i``  sp_update_immediate,
``<Q``  addr, ``<I`` next_pc, ``<Q`` sp_value.

A magic header guards against version skew.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, List

from repro.isa.encoding import OPCODE_NAMES, OPCODE_NUMBERS
from repro.isa.instructions import OPCODES
from repro.trace.records import TraceRecord

MAGIC = b"SVFT\x02\x00"

_RECORD = struct.Struct("<IBBBbbbBBqiQIQ")

_FLAG_LOAD = 1
_FLAG_STORE = 2
_FLAG_BRANCH = 4
_FLAG_CONDITIONAL = 8
_FLAG_TAKEN = 16
_FLAG_SP_UPDATE = 32


class TraceFormatError(ValueError):
    """Raised when a file is not a valid serialized trace."""


def _flags_of(record: TraceRecord) -> int:
    flags = 0
    if record.is_load:
        flags |= _FLAG_LOAD
    if record.is_store:
        flags |= _FLAG_STORE
    if record.is_branch:
        flags |= _FLAG_BRANCH
    if record.is_conditional:
        flags |= _FLAG_CONDITIONAL
    if record.taken:
        flags |= _FLAG_TAKEN
    if record.sp_update:
        flags |= _FLAG_SP_UPDATE
    return flags


def _pack(record: TraceRecord) -> bytes:
    srcs = record.srcs[:2]
    return _RECORD.pack(
        record.pc,
        OPCODE_NUMBERS[record.op],
        _flags_of(record),
        record.size,
        record.base_reg if record.base_reg is not None else -1,
        record.dst if record.dst is not None else -1,
        len(srcs),
        srcs[0] if len(srcs) > 0 else 0,
        srcs[1] if len(srcs) > 1 else 0,
        record.displacement,
        record.sp_update_immediate,
        record.addr,
        record.next_pc,
        record.sp_value,
    )


def _unpack(blob: bytes, index: int) -> TraceRecord:
    (
        pc,
        opcode,
        flags,
        size,
        base_reg,
        dst,
        src_count,
        src0,
        src1,
        displacement,
        sp_update_immediate,
        addr,
        next_pc,
        sp_value,
    ) = _RECORD.unpack(blob)
    name = OPCODE_NAMES.get(opcode)
    if name is None:
        raise TraceFormatError(f"bad opcode {opcode} at record {index}")
    srcs = tuple((src0, src1)[:src_count])
    return TraceRecord(
        index=index,
        pc=pc,
        op=name,
        op_class=OPCODES[name].op_class,
        srcs=srcs,
        dst=dst if dst >= 0 else None,
        is_load=bool(flags & _FLAG_LOAD),
        is_store=bool(flags & _FLAG_STORE),
        addr=addr,
        size=size,
        base_reg=base_reg if base_reg >= 0 else None,
        displacement=displacement,
        is_branch=bool(flags & _FLAG_BRANCH),
        is_conditional=bool(flags & _FLAG_CONDITIONAL),
        taken=bool(flags & _FLAG_TAKEN),
        next_pc=next_pc,
        sp_value=sp_value,
        sp_update=bool(flags & _FLAG_SP_UPDATE),
        sp_update_immediate=sp_update_immediate,
    )


class TraceWriter:
    """Streaming sink: attach to ``Machine.run(trace_sink=...)``."""

    def __init__(self, stream: BinaryIO):
        self._stream = stream
        self.count = 0
        stream.write(MAGIC)

    def append(self, record: TraceRecord) -> None:
        self._stream.write(_pack(record))
        self.count += 1


def save_trace(trace: Iterable[TraceRecord], path: str) -> int:
    """Write a trace to ``path``; returns the record count."""
    with open(path, "wb") as stream:
        writer = TraceWriter(stream)
        for record in trace:
            writer.append(record)
        return writer.count


def load_trace(path: str) -> List[TraceRecord]:
    """Read a trace written by :func:`save_trace` / :class:`TraceWriter`."""
    with open(path, "rb") as stream:
        header = stream.read(len(MAGIC))
        if header != MAGIC:
            raise TraceFormatError(f"bad trace header in {path!r}")
        out: List[TraceRecord] = []
        index = 0
        record_size = _RECORD.size
        while True:
            blob = stream.read(record_size)
            if not blob:
                return out
            if len(blob) != record_size:
                raise TraceFormatError(f"truncated trace file {path!r}")
            out.append(_unpack(blob, index))
            index += 1
