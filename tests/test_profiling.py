"""Tests for the phase profiler and the versioned trace cache.

Covers the profiler's accumulate/merge/snapshot/render API, the
save/restore semantics of the active-profiler slot (cell-scoped
profilers must nest inside caller-scoped ones), the hot loops'
phase instrumentation, and the cache-invalidation contract: the
on-disk :class:`TraceCache` lives under ``v<SCHEMA_VERSION>/``, so
entries written by any older schema are never read again.
"""

import pytest

from repro import profiling
from repro.profiling import PhaseProfiler, profiled


@pytest.fixture(autouse=True)
def _no_leaked_profiler():
    assert profiling.active() is None
    yield
    assert profiling.active() is None


class TestPhaseProfiler:
    def test_note_accumulates(self):
        profiler = PhaseProfiler()
        profiler.note("emulate", 0.5, 1_000)
        profiler.note("emulate", 0.25, 500)
        profiler.note("render", 0.1)
        stat = profiler.phases["emulate"]
        assert stat.calls == 2
        assert stat.seconds == pytest.approx(0.75)
        assert stat.items == 1_500
        assert profiler.total_seconds == pytest.approx(0.85)

    def test_mips(self):
        profiler = PhaseProfiler()
        profiler.note("timing", 2.0, 4_000_000)
        assert profiler.phases["timing"].mips == pytest.approx(2.0)
        profiler.note("render", 0.1)
        assert profiler.phases["render"].mips == 0.0

    def test_snapshot_merge_round_trip(self):
        worker = PhaseProfiler()
        worker.note("compile", 0.1, 200)
        worker.note("timing", 1.0, 10_000)
        caller = PhaseProfiler()
        caller.note("timing", 0.5, 5_000)
        caller.merge(worker.snapshot())
        caller.merge(None)  # tolerated: cache hits ship no snapshot
        caller.merge({})
        assert caller.phases["timing"].calls == 2
        assert caller.phases["timing"].items == 15_000
        assert caller.phases["compile"].seconds == pytest.approx(0.1)

    def test_render_orders_phases_canonically(self):
        profiler = PhaseProfiler()
        profiler.note("render", 0.1)
        profiler.note("emulate", 0.2, 100)
        profiler.note("compile", 0.3, 50)
        text = profiler.render(title="T")
        assert text.startswith("T (phase total 0.600s)")
        positions = [text.index(p) for p in ("compile", "emulate", "render")]
        assert positions == sorted(positions)
        # Unknown phases sort after the canonical ones.
        profiler.note("zz-custom", 0.1)
        assert "zz-custom" in profiler.render().splitlines()[-1]

    def test_render_empty(self):
        text = PhaseProfiler().render()
        assert "phase total 0.000s" in text


class TestActiveProfilerSlot:
    def test_swap_save_restore(self):
        outer = PhaseProfiler()
        previous = profiling.swap(outer)
        assert previous is None
        assert profiling.active() is outer
        inner = PhaseProfiler()
        saved = profiling.swap(inner)
        assert saved is outer
        assert profiling.active() is inner
        profiling.swap(saved)
        assert profiling.active() is outer
        profiling.swap(None)

    def test_profiled_context_manager_nests(self):
        with profiled() as outer:
            profiling.note("render", 1.0)
            with profiled() as inner:
                profiling.note("render", 2.0)
            assert inner.phases["render"].seconds == pytest.approx(2.0)
            assert outer.phases["render"].seconds == pytest.approx(1.0)
        assert profiling.active() is None

    def test_module_note_without_profiler_is_noop(self):
        profiling.note("emulate", 1.0, 10)  # must not raise


class TestHotLoopInstrumentation:
    def test_phases_observed_end_to_end(self):
        from repro.core.traffic import simulate_traffic
        from repro.uarch.config import table2_config
        from repro.uarch.pipeline import simulate
        from repro.workloads import workload

        with profiled() as profiler:
            work = workload("gzip")
            trace = work.trace(max_instructions=2_000)
            simulate(trace, table2_config(4))
            simulate_traffic(trace)
        phases = profiler.phases
        assert set(phases) >= {"compile", "emulate", "timing", "traffic"}
        assert phases["emulate"].items == 2_000
        assert phases["timing"].items == 2_000
        assert phases["traffic"].items == 2_000
        assert all(stat.seconds >= 0.0 for stat in phases.values())

    def test_no_profiler_no_contamination(self):
        from repro.workloads import workload

        with profiled() as profiler:
            pass  # nothing runs inside
        workload("mcf").trace(max_instructions=500)
        assert profiler.phases == {}


class TestCacheSchemaInvalidation:
    KEY = ("164.gzip", "graphic", 0, 1_500)

    def test_cache_root_pins_schema_version(self, tmp_path):
        from repro.api import SCHEMA_VERSION
        from repro.harness.parallel import TraceCache

        cache = TraceCache(str(tmp_path))
        assert cache.root == tmp_path / f"v{SCHEMA_VERSION}"
        assert SCHEMA_VERSION == 5

    def test_stale_v1_entries_never_read(self, tmp_path):
        from repro.harness.parallel import TraceCache

        # A leftover cache from schema v1 (pickled record lists).
        v1 = tmp_path / "v1"
        v1.mkdir()
        stale = v1 / "164.gzip.graphic.O0.w1500.trace.pkl"
        stale.write_bytes(b"\x80\x04N.")  # pickle of None
        cache = TraceCache(str(tmp_path))
        assert cache.load(self.KEY) is None
        assert cache.stats.misses == 1
        assert stale.exists()  # invalidation is by directory, not deletion

    def test_round_trip_through_cache(self, tmp_path):
        from repro.harness.parallel import TraceCache
        from repro.trace.columnar import ColumnarTrace, record_fields
        from repro.workloads import workload

        trace = workload("gzip").trace(max_instructions=1_500)
        cache = TraceCache(str(tmp_path))
        cache.store(self.KEY, trace)
        assert cache.path_for(self.KEY).name.endswith(".trace.bin")
        loaded = cache.load(self.KEY)
        assert isinstance(loaded, ColumnarTrace)
        assert len(loaded) == len(trace)
        assert record_fields(loaded[0]) == record_fields(trace[0])
        assert record_fields(loaded[-1]) == record_fields(trace[-1])

    def test_corrupt_binary_entry_is_a_miss(self, tmp_path):
        from repro.harness.parallel import TraceCache

        cache = TraceCache(str(tmp_path))
        cache.path_for(self.KEY).write_bytes(b"SVFT\x03\x00garbage")
        assert cache.load(self.KEY) is None
        assert not cache.path_for(self.KEY).exists()  # dropped


class TestWriteTrace:
    def test_write_trace_matches_save_trace(self, tmp_path):
        import io

        from repro.trace import save_trace, write_trace
        from repro.workloads import workload

        trace = workload("mcf").trace(max_instructions=1_000)
        buffer = io.BytesIO()
        assert write_trace(buffer, trace) == 1_000
        path = tmp_path / "ref.svft"
        save_trace(trace, str(path))
        assert buffer.getvalue() == path.read_bytes()
