"""Figure 2 — stack-depth variation over time.

Paper shape: an 8KB (1000-unit) window covers the maximum stack depth
for most applications, and the depth is stable after initialization.
"""

from repro.harness import characterize


def test_fig2(benchmark, emit, functional_window):
    result = benchmark.pedantic(
        lambda: characterize(max_instructions=functional_window),
        rounds=1,
        iterations=1,
    )
    emit("fig2_stack_depth", result.render_fig2())

    profiles = result.depth_profiles
    # Most applications stay within ~1000 64-bit units (8 KB).
    within_1000 = sum(1 for p in profiles.values() if p.max_depth <= 1100)
    assert within_1000 >= len(profiles) - 2

    # crafty's representative active region is a few hundred units.
    crafty = profiles["186.crafty"]
    low, high = crafty.stable_range()
    assert 50 <= high <= 1100
    assert high - low >= 50  # visible oscillation

    # gcc / perlbmk are the deep ones in our suite.
    assert profiles["176.gcc"].max_depth > profiles["164.gzip"].max_depth
