"""Command-line interface: ``python -m repro <command>``.

Commands:

``list``
    list the workload suite (benchmarks, inputs, descriptions).
``run <workload> [--input NAME] [--max-instructions N]``
    compile and execute a workload on the functional emulator.
``characterize [<workload> ...] [--max-instructions N]``
    Figures 1-3 for the chosen workloads (default: whole suite).
``simulate <workload> [--width W] [--svf MODE] [--ports P] ...``
    time one workload on a Table-2 machine, optionally with a stack
    unit attached, and report cycles/IPC (plus speedup vs baseline).
``compile <file.mc> [--emit asm|trace]``
    compile a MiniC source file; print assembly or run and trace.
``experiment <name> [--window N]``
    regenerate one paper artifact: table1, table2, fig1, fig2, fig3,
    fig5, fig6, fig7, fig8, fig9, table3, table4.
``lint <workload> | --all [--format text|json]``
    statically verify stack discipline (balanced ``$sp``, frame
    bounds, first-read, dead stores, address escapes) on compiled
    workloads; exits nonzero when error-severity diagnostics exist.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness import (
    characterize,
    fig5_ideal_morphing,
    fig6_progressive,
    fig7_svf_vs_stack_cache,
    fig9_svf_speedup,
    table1_workloads,
    table2_models,
    table3_memory_traffic,
    table4_context_switch,
)
from repro.uarch import simulate, table2_config
from repro.workloads import BENCHMARK_ORDER, input_names, workload

EXPERIMENTS = (
    "table1", "table2", "fig1", "fig2", "fig3", "fig5", "fig6",
    "fig7", "fig8", "fig9", "table3", "table4",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stack Value File (HPCA 2001) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the workload suite")

    run_parser = commands.add_parser("run", help="execute a workload")
    run_parser.add_argument("workload")
    run_parser.add_argument("--input", default=None)
    run_parser.add_argument("--max-instructions", type=int, default=None)

    char_parser = commands.add_parser(
        "characterize", help="Figures 1-3 analyses"
    )
    char_parser.add_argument("workloads", nargs="*")
    char_parser.add_argument(
        "--max-instructions", type=int, default=100_000
    )

    sim_parser = commands.add_parser(
        "simulate", help="time a workload on a Table-2 machine"
    )
    sim_parser.add_argument("workload")
    sim_parser.add_argument("--input", default=None)
    sim_parser.add_argument("--width", type=int, default=16,
                            choices=(4, 8, 16))
    sim_parser.add_argument("--dl1-ports", type=int, default=2)
    sim_parser.add_argument(
        "--svf", default="none",
        choices=("none", "svf", "ideal", "stack_cache"),
    )
    sim_parser.add_argument("--ports", type=int, default=2)
    sim_parser.add_argument("--capacity", type=int, default=8192)
    sim_parser.add_argument("--no-squash", action="store_true")
    sim_parser.add_argument("--predictor", default="perfect",
                            choices=("perfect", "gshare"))
    sim_parser.add_argument("--max-instructions", type=int, default=60_000)

    compile_parser = commands.add_parser(
        "compile", help="compile a MiniC source file"
    )
    compile_parser.add_argument("source")
    compile_parser.add_argument("--emit", default="asm",
                                choices=("asm", "run"))
    compile_parser.add_argument("--max-instructions", type=int,
                                default=None)

    lint_parser = commands.add_parser(
        "lint", help="stack-discipline lint of compiled workloads"
    )
    lint_parser.add_argument(
        "workload", nargs="?", default=None,
        help="benchmark to lint (default: requires --all)",
    )
    lint_parser.add_argument("--input", default=None)
    lint_parser.add_argument(
        "--all", action="store_true",
        help="lint every registry workload (all 13 programs)",
    )
    lint_parser.add_argument(
        "--format", default="text", choices=("text", "json"),
    )
    lint_parser.add_argument(
        "--max-info", type=int, default=None,
        help="truncate info-severity diagnostics per workload (text)",
    )

    exp_parser = commands.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    exp_parser.add_argument("name", choices=EXPERIMENTS)
    exp_parser.add_argument("--window", type=int, default=None)

    report_parser = commands.add_parser(
        "report", help="run every experiment and write one markdown report"
    )
    report_parser.add_argument("--output", default="REPORT.md")
    report_parser.add_argument("--timing-window", type=int, default=40_000)
    report_parser.add_argument(
        "--functional-window", type=int, default=80_000
    )
    report_parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help="subset of benchmarks (default: full suite)",
    )

    trace_parser = commands.add_parser(
        "trace", help="record a workload trace to a file"
    )
    trace_parser.add_argument("workload")
    trace_parser.add_argument("output")
    trace_parser.add_argument("--input", default=None)
    trace_parser.add_argument("--max-instructions", type=int,
                              default=100_000)

    replay_parser = commands.add_parser(
        "replay", help="time a recorded trace on a machine config"
    )
    replay_parser.add_argument("trace_file")
    replay_parser.add_argument("--width", type=int, default=16,
                               choices=(4, 8, 16))
    replay_parser.add_argument(
        "--svf", default="none",
        choices=("none", "svf", "ideal", "stack_cache"),
    )
    replay_parser.add_argument("--ports", type=int, default=2)
    return parser


def cmd_list(_args) -> int:
    print(table1_workloads())
    print()
    for name in BENCHMARK_ORDER:
        print(f"{name}: inputs = {', '.join(input_names(name))}")
    return 0


def cmd_run(args) -> int:
    work = workload(args.workload, args.input)
    machine = work.run(max_instructions=args.max_instructions)
    print(f"{work.full_name}: {machine.instruction_count:,} instructions, "
          f"halted={machine.halted}")
    print(f"output: {machine.output}")
    return 0


def cmd_characterize(args) -> int:
    benchmarks = args.workloads or None
    if benchmarks:
        benchmarks = [workload(name).name for name in benchmarks]
    result = characterize(
        benchmarks=benchmarks, max_instructions=args.max_instructions
    )
    print(result.render_fig1())
    print()
    print(result.render_fig2())
    print()
    print(result.render_fig3())
    return 0


def cmd_simulate(args) -> int:
    work = workload(args.workload, args.input)
    trace = work.trace(max_instructions=args.max_instructions)
    base = table2_config(
        args.width,
        dl1_ports=args.dl1_ports,
        branch_predictor=args.predictor,
    )
    baseline = simulate(trace, base)
    print(f"{work.full_name} on {base.name} "
          f"({len(trace):,}-instruction window)")
    print(f"baseline: {baseline.cycles:,} cycles, IPC {baseline.ipc:.2f}")
    if args.svf == "none":
        return 0
    config = base.with_svf(
        mode=args.svf,
        ports=args.ports,
        capacity_bytes=args.capacity,
        no_squash=args.no_squash,
    )
    run = simulate(trace, config)
    speedup = run.speedup_over(baseline)
    print(f"{args.svf:8s}: {run.cycles:,} cycles, IPC {run.ipc:.2f}, "
          f"speedup {(speedup - 1) * 100:+.1f}%")
    if args.svf == "svf":
        print(f"  morphed {run.svf_fast_loads + run.svf_fast_stores:,} "
              f"({run.svf_fast_fraction:.0%}), "
              f"re-routed {run.svf_rerouted:,}, "
              f"fills {run.svf_fills:,}, squashes {run.svf_squashes:,}")
    return 0


def cmd_compile(args) -> int:
    from repro.emulator import run_program
    from repro.lang import compile_program, compile_to_assembly

    with open(args.source) as handle:
        source = handle.read()
    if args.emit == "asm":
        print(compile_to_assembly(source))
        return 0
    machine, trace = run_program(
        compile_program(source), max_instructions=args.max_instructions
    )
    print(f"{machine.instruction_count:,} instructions, "
          f"halted={machine.halted}")
    print(f"output: {machine.output}")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis import (
        lint_all,
        lint_workload,
        render_reports,
        reports_to_json,
    )

    if args.all and args.workload is not None:
        print("lint: --all conflicts with naming a workload", file=sys.stderr)
        return 2
    if args.all:
        reports = lint_all()
    elif args.workload is not None:
        reports = [lint_workload(args.workload, args.input)]
    else:
        print("lint: name a workload or pass --all", file=sys.stderr)
        return 2
    if args.format == "json":
        print(reports_to_json(reports))
    else:
        print(render_reports(reports, max_info=args.max_info))
    return 0 if all(report.ok for report in reports) else 1


def cmd_experiment(args) -> int:
    window = args.window
    if args.name == "table1":
        print(table1_workloads())
    elif args.name == "table2":
        print(table2_models())
    elif args.name in ("fig1", "fig2", "fig3"):
        result = characterize(max_instructions=window or 120_000)
        render = {
            "fig1": result.render_fig1,
            "fig2": result.render_fig2,
            "fig3": result.render_fig3,
        }[args.name]
        print(render())
    elif args.name == "fig5":
        print(fig5_ideal_morphing(max_instructions=window or 60_000).render())
    elif args.name == "fig6":
        print(fig6_progressive(max_instructions=window or 60_000).render())
    elif args.name in ("fig7", "fig8"):
        result = fig7_svf_vs_stack_cache(max_instructions=window or 60_000)
        print(result.render() if args.name == "fig7"
              else result.render_fig8())
    elif args.name == "fig9":
        print(fig9_svf_speedup(max_instructions=window or 60_000).render())
    elif args.name == "table3":
        print(table3_memory_traffic(max_instructions=window or 120_000)
              .render())
    elif args.name == "table4":
        print(table4_context_switch(max_instructions=window or 120_000)
              .render())
    return 0


def cmd_report(args) -> int:
    from repro.harness.runall import generate_report

    benchmarks = args.benchmarks or None
    if benchmarks:
        benchmarks = [workload(name).name for name in benchmarks]
    text = generate_report(
        timing_window=args.timing_window,
        functional_window=args.functional_window,
        benchmarks=benchmarks,
        progress=lambda message: print(f"[report] {message}"),
    )
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    return 0


def cmd_trace(args) -> int:
    from repro.trace import TraceWriter

    work = workload(args.workload, args.input)
    with open(args.output, "wb") as stream:
        writer = TraceWriter(stream)
        work.run(
            max_instructions=args.max_instructions, trace_sink=writer
        )
    print(f"wrote {writer.count:,} records to {args.output}")
    return 0


def cmd_replay(args) -> int:
    from repro.trace import load_trace

    trace = load_trace(args.trace_file)
    base = table2_config(args.width)
    baseline = simulate(trace, base)
    print(f"{args.trace_file}: {len(trace):,} instructions")
    print(f"baseline: {baseline.cycles:,} cycles, IPC {baseline.ipc:.2f}")
    if args.svf != "none":
        run = simulate(
            trace, base.with_svf(mode=args.svf, ports=args.ports)
        )
        speedup = run.speedup_over(baseline)
        print(f"{args.svf}: {run.cycles:,} cycles, "
              f"speedup {(speedup - 1) * 100:+.1f}%")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "characterize": cmd_characterize,
        "simulate": cmd_simulate,
        "compile": cmd_compile,
        "experiment": cmd_experiment,
        "lint": cmd_lint,
        "report": cmd_report,
        "trace": cmd_trace,
        "replay": cmd_replay,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
