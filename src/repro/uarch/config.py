"""Machine configurations (paper Table 2) plus SVF steering options.

The paper evaluates 4-, 8- and 16-wide RUU-based out-of-order machines
with the memory parameters below.  Following the paper's experimental
approach (Section 4), the instruction cache is perfect and the default
branch predictor is perfect; ``gshare`` is used for the last bar of
Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace



@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size: int
    assoc: int
    line_size: int = 32
    latency: int = 3


@dataclass(frozen=True)
class SVFConfig:
    """Stack-unit steering attached to a machine configuration.

    ``mode`` selects the stack unit:

    * ``"none"`` — baseline: every reference goes to the DL1;
    * ``"svf"`` — the stack value file of Section 3;
    * ``"ideal"`` — Figure 5's limit study: *all* stack references
      morph into register moves, infinite capacity and ports;
    * ``"stack_cache"`` — the decoupled stack cache baseline.
    """

    mode: str = "none"
    capacity_bytes: int = 8192
    ports: int = 2
    #: bank the SVF instead of true multiporting (paper Section 7:
    #: "The SVF is direct-mapped, can be single-ported, and can easily
    #: be banked").  When > 0, the file is split into this many
    #: single-ported banks selected by low-order word-address bits;
    #: same-cycle accesses to one bank serialize.  ``ports`` is
    #: ignored for bank-conflict purposes when banks are enabled.
    banks: int = 0
    #: latency of a morphed (register-move) SVF access
    fast_latency: int = 1
    #: latency of a bounds-checked, re-routed non-$sp stack access
    reroute_latency: int = 3
    #: pipeline-squash penalty for a gpr-store/sp-load collision
    squash_penalty: int = 8
    #: "no_squash" code-generation option of Figure 7
    no_squash: bool = False
    #: per-granule valid/dirty-bit size in bytes (Section 3.3 ablation)
    granularity: int = 8
    #: dynamically disable the SVF under localized poor performance
    #: (Section 3.3: "the SVF can be dynamically disabled for a period
    #: of time").  The controller watches squashes per instruction
    #: window and routes stack references back to the DL1 for a
    #: cooling-off period when the rate is excessive.
    adaptive: bool = False
    adaptive_window: int = 1000
    adaptive_threshold: int = 3
    adaptive_off_period: int = 20_000
    #: keep a speculative $sp copy in decode (Section 3.1); without it
    #: every morphed reference waits for the architectural $sp value
    spec_sp: bool = True

    def __post_init__(self):
        if self.mode not in ("none", "svf", "ideal", "stack_cache"):
            raise ValueError(f"unknown SVF mode {self.mode!r}")


@dataclass(frozen=True)
class MachineConfig:
    """One column of the paper's Table 2, plus port/stack-unit knobs."""

    name: str = "16-wide"
    decode_width: int = 16
    issue_width: int = 16
    commit_width: int = 16
    ifq_size: int = 64
    ruu_size: int = 256
    lsq_size: int = 128
    dl1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size=64 * 1024, assoc=4, latency=3)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size=512 * 1024, assoc=4, line_size=64, latency=16
        )
    )
    memory_latency: int = 60
    store_forward_latency: int = 3
    int_alus: int = 16
    int_mults: int = 4
    dl1_ports: int = 2
    #: decode/rename depth: cycles between fetch and dispatch
    frontend_depth: int = 3
    #: extra pipeline stages between dispatch and the first cycle a
    #: memory reference can compute its address (deep-pipeline knob;
    #: morphed SVF references skip it — their address is resolved in
    #: decode, the early-address-resolution benefit of Section 3.1)
    agu_depth: int = 0
    #: extra redirect bubble after a mispredicted branch resolves
    mispredict_redirect: int = 1
    branch_predictor: str = "perfect"  # 'perfect' | 'gshare'
    #: flush the stack unit every N instructions (0 = never), modeling
    #: context switches in the timing domain (companion to Table 4)
    context_switch_period: int = 0
    #: pipeline bubble charged per context switch (kernel overhead)
    context_switch_overhead: int = 100
    #: remove the address-calculation dependency of stack references
    #: without an SVF (the no_addr_cal_op bar of Figure 6)
    no_addr_calc: bool = False
    svf: SVFConfig = field(default_factory=SVFConfig)

    def with_(self, **changes) -> "MachineConfig":
        """Return a modified copy (convenience for experiments)."""
        return replace(self, **changes)

    def with_svf(self, **changes) -> "MachineConfig":
        """Return a copy with a modified SVF sub-config."""
        return replace(self, svf=replace(self.svf, **changes))


def table2_config(width: int, **overrides) -> MachineConfig:
    """The 4-, 8- or 16-wide machine of the paper's Table 2."""
    if width not in (4, 8, 16):
        raise ValueError("paper models are 4-, 8- or 16-wide")
    scale = {4: 0, 8: 1, 16: 2}[width]
    config = MachineConfig(
        name=f"{width}-wide",
        decode_width=width,
        issue_width=width,
        commit_width=width,
        ifq_size=16 << scale,
        ruu_size=64 << scale,
        lsq_size=32 << scale,
    )
    if overrides:
        config = config.with_(**overrides)
    return config


def baseline_16wide() -> MachineConfig:
    """The 16-wide baseline used by Figures 6, 7 and 9."""
    return table2_config(16)
