"""Unit tests for the decoupled stack-cache baseline."""

import pytest

from repro.core.stack_cache import StackCache

BASE = 0x7FFF0000


class TestGeometry:
    def test_line_count(self):
        cache = StackCache(8192, line_size=32)
        assert cache.num_lines == 256
        assert cache.line_words == 4

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            StackCache(100, line_size=32)


class TestMissSemantics:
    def test_read_miss_fills_whole_line(self):
        cache = StackCache(2048)
        outcome = cache.access(BASE, 8, is_store=False)
        assert not outcome.hit
        assert outcome.filled == 4
        assert cache.qw_in == 4

    def test_write_miss_also_fills_line(self):
        """The paper's key contrast: a stack cache must read the rest
        of the line before a write — even for freshly allocated space."""
        cache = StackCache(2048)
        outcome = cache.access(BASE, 8, is_store=True)
        assert outcome.filled == 4
        assert cache.qw_in == 4

    def test_hit_after_fill(self):
        cache = StackCache(2048)
        cache.access(BASE, 8, is_store=False)
        outcome = cache.access(BASE + 8, 8, is_store=False)  # same line
        assert outcome.hit
        assert cache.qw_in == 4

    def test_dirty_eviction_writes_whole_line(self):
        cache = StackCache(2048)
        cache.access(BASE, 8, is_store=True)
        conflicting = BASE + 2048  # same index, different tag
        outcome = cache.access(conflicting, 8, is_store=False)
        assert outcome.written_back == 4
        assert cache.qw_out == 4

    def test_clean_eviction_writes_nothing(self):
        cache = StackCache(2048)
        cache.access(BASE, 8, is_store=False)
        cache.access(BASE + 2048, 8, is_store=False)
        assert cache.qw_out == 0

    def test_store_to_clean_resident_line_sets_dirty(self):
        cache = StackCache(2048)
        cache.access(BASE, 8, is_store=False)  # fill clean
        cache.access(BASE, 8, is_store=True)  # dirty it
        cache.access(BASE + 2048, 8, is_store=False)  # evict
        assert cache.qw_out == 4

    def test_direct_mapped_conflicts(self):
        cache = StackCache(2048)
        cache.access(BASE, 8, is_store=False)
        cache.access(BASE + 2048, 8, is_store=False)
        outcome = cache.access(BASE, 8, is_store=False)
        assert not outcome.hit  # conflict evicted it
        assert cache.misses == 3


class TestContextSwitch:
    def test_flushes_whole_dirty_lines(self):
        """One dirty word costs a full line of writeback (vs the SVF's
        per-word granularity) — the Table 4 contrast."""
        cache = StackCache(2048, line_size=32)
        cache.access(BASE, 8, is_store=True)  # one dirty word
        flushed = cache.context_switch()
        assert flushed == 32  # whole line
        assert cache.valid_lines == 0

    def test_clean_lines_not_written(self):
        cache = StackCache(2048)
        cache.access(BASE, 8, is_store=False)
        assert cache.context_switch() == 0

    def test_switch_invalidates(self):
        cache = StackCache(2048)
        cache.access(BASE, 8, is_store=False)
        cache.context_switch()
        outcome = cache.access(BASE, 8, is_store=False)
        assert not outcome.hit


class TestVsSVF:
    def test_frame_lifecycle_costs_traffic_unlike_svf(self):
        """Same access pattern, opposite traffic outcome (Table 3)."""
        from repro.core.svf import StackValueFile

        cache = StackCache(2048)
        svf = StackValueFile(2048)
        svf.update_sp(BASE)
        # Allocate, write, read, deallocate a 128-byte frame.
        svf.update_sp(BASE - 128)
        for offset in range(0, 128, 8):
            addr = BASE - 128 + offset
            cache.access(addr, 8, is_store=True)
            svf.access(addr, 8, is_store=True)
        svf.update_sp(BASE)
        switch_cache = cache.context_switch()
        switch_svf = svf.context_switch()
        assert cache.qw_in > 0  # line fills on write misses
        assert svf.qw_in == 0  # allocation semantics: no fills
        assert switch_cache > switch_svf  # dead frame already killed
