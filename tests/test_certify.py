"""Whole-program certifier: summaries, verdicts, and mutation catches."""

import json

import pytest

from repro import api
from repro.analysis import (
    SLOT_LOCAL,
    SLOT_SHARED,
    SLOT_UNCLEAN,
    build_call_graph,
    certify_program,
    render_certificates,
    summarize_program,
)
from repro.isa import assemble
from repro.isa.instructions import Instruction
from repro.isa.registers import SP
from repro.lang import compile_program
from repro.workloads import ALL_BENCHMARKS, workload
from repro.workloads.adversarial import ADVERSARIAL, adversarial_program

#: Verified recursive registry workloads (crafty, eon, gcc, parser).
RECURSIVE_BENCHMARKS = {"186.crafty", "252.eon", "176.gcc", "197.parser"}

LEAF_PAIR = """
.text
main:
    lda   sp, -32(sp)
    stq   ra, 0(sp)
    bsr   leaf
    ldq   ra, 0(sp)
    lda   sp, 32(sp)
    ret
leaf:
    lda   sp, -16(sp)
    stq   t0, 0(sp)
    ldq   t1, 0(sp)
    lda   sp, 16(sp)
    ret
"""


class TestSummaries:
    def test_depth_recurrence_exact(self):
        summary = summarize_program(assemble(LEAF_PAIR))
        assert summary.functions["leaf"].worst_depth == 16
        assert summary.functions["leaf"].local_depth == 16
        # main: 32 locally, the call site sits at $sp = -32, leaf adds 16.
        assert summary.functions["main"].worst_depth == 48
        assert summary.program_depth() == (48, "")

    def test_net_sp_balanced(self):
        summary = summarize_program(assemble(LEAF_PAIR))
        assert summary.functions["main"].net_sp == 0
        assert summary.functions["leaf"].net_sp == 0

    def test_clobber_closure_includes_callees(self):
        summary = summarize_program(assemble(LEAF_PAIR))
        leaf = summary.functions["leaf"]
        main = summary.functions["main"]
        assert leaf.own_clobbered <= main.clobbered

    def test_recursion_has_no_bound(self):
        source = """
        int f(int n) { if (n < 1) { return 0; } return f(n - 1); }
        int main() { print(f(3)); return 0; }
        """
        summary = summarize_program(compile_program(source))
        assert summary.functions["f"].worst_depth is None
        assert summary.functions["f"].depth_reason == "recursion"
        bound, reason = summary.program_depth()
        assert bound is None and reason == "recursion"

    def test_shared_slot_classified(self):
        source = """
        int bump(int p) { p[0] = p[0] + 1; return 0; }
        int main() { int x = 5; bump(&x); print(x); return 0; }
        """
        summary = summarize_program(compile_program(source))
        classes = summary.functions["main"].slot_classes.values()
        assert SLOT_SHARED in classes
        assert SLOT_UNCLEAN not in classes
        # The callee receives and dereferences a caller stack address.
        assert summary.functions["bump"].receives_stack
        assert summary.functions["bump"].gpr_access

    def test_local_escape_stays_local(self):
        source = """
        int main() {
            int x = 5;
            int p;
            p = &x;
            p[0] = 9;
            print(x);
            return 0;
        }
        """
        summary = summarize_program(compile_program(source))
        classes = summary.functions["main"].slot_classes
        assert SLOT_UNCLEAN not in classes.values()
        assert SLOT_LOCAL in classes.values() or SLOT_SHARED not in (
            classes.values()
        )


class TestRegistryCertificates:
    @pytest.fixture(scope="class")
    def certificates(self):
        return {
            name: certify_program(
                workload(name).program(), name=workload(name).full_name
            )
            for name in ALL_BENCHMARKS
        }

    def test_all_thirteen_certify_without_hard_flags(self, certificates):
        assert len(certificates) == 13
        for certificate in certificates.values():
            assert certificate.ok, certificate.summary_line()
            assert certificate.lifo_ok

    def test_recursive_workloads_unbounded_with_cycle(self, certificates):
        for name, certificate in certificates.items():
            if name in RECURSIVE_BENCHMARKS:
                assert certificate.depth_bound is None, name
                assert certificate.depth_reason == "recursion"
                (flag,) = [
                    f for f in certificate.flags
                    if f.kind == "unbounded-depth"
                ]
                # Witness: entry-rooted path ending in a cycle.
                assert flag.path[0] == certificate.summary.root
                assert flag.path[-1] in certificate.summary.graph.recursive
            else:
                assert certificate.depth_bound is not None, name
                assert certificate.depth_bound > 0
                assert certificate.depth_chain[0] == (
                    certificate.summary.root
                )

    def test_no_unclean_slots_in_registry(self, certificates):
        for name, certificate in certificates.items():
            for verdict in certificate.verdicts.values():
                assert SLOT_UNCLEAN not in verdict.slot_classes.values(), (
                    name, verdict.name,
                )

    def test_render_text_and_footer(self, certificates):
        text = render_certificates(list(certificates.values()))
        assert "13 program(s) certified" in text
        assert "FLAGGED" not in text

    def test_json_payload_shape(self, certificates):
        results = api.certify("gzip")
        payload = json.loads(api.certify_json(results))
        assert payload["schema_version"] == api.SCHEMA_VERSION
        assert payload["ok"] is True
        (entry,) = payload["programs"]
        assert entry["name"] == "gzip.graphic"
        assert entry["depth_bound"] > 0
        assert entry["validation"] is None
        assert {"flags", "verdicts", "live", "depth_chain"} <= set(entry)


class TestAdversarialDetection:
    @pytest.mark.parametrize(
        "member", ADVERSARIAL, ids=[m.name for m in ADVERSARIAL]
    )
    def test_every_member_flagged_with_path(self, member):
        certificate = certify_program(member.program(), name=member.name)
        kinds = {flag.kind for flag in certificate.flags}
        assert set(member.expected_flags) <= kinds, member.name
        for flag in certificate.flags:
            if flag.kind in member.expected_flags:
                assert flag.path, (member.name, flag.kind)

    @pytest.mark.parametrize(
        "member", ADVERSARIAL, ids=[m.name for m in ADVERSARIAL]
    )
    def test_every_member_still_halts(self, member):
        machine = member.run()
        assert machine.halted, member.name

    def test_hard_members_fail_certification(self):
        for name in ("sp-escape", "frame-overflow", "lifo-violation"):
            member = adversarial_program(name)
            certificate = certify_program(member.program(), name=name)
            assert not certificate.ok, name

    def test_soft_members_pass_certification(self):
        for name in ("deep-recursion", "mutual-recursion", "indirect-call"):
            member = adversarial_program(name)
            certificate = certify_program(member.program(), name=name)
            assert certificate.ok, name
            assert certificate.depth_bound is None

    def test_sp_escape_slot_classified_unclean(self):
        member = adversarial_program("sp-escape")
        certificate = certify_program(member.program(), name=member.name)
        main = certificate.verdicts["main"]
        assert SLOT_UNCLEAN in main.slot_classes.values()
        assert main.integrity == "unknown"

    def test_unknown_name_raises(self):
        from repro.errors import UsageError

        with pytest.raises(UsageError):
            adversarial_program("nonesuch")


class TestMutationFlipsVerdict:
    """S6: seeded faults must flip the corresponding verdict."""

    def test_dropped_epilogue_flips_lifo(self):
        program = workload("gzip").program()
        assert certify_program(program).ok
        for index, instruction in enumerate(program.instructions):
            if instruction.is_sp_adjust and instruction.imm > 0:
                program.instructions[index] = Instruction("nop")
                break
        certificate = certify_program(program, name="gzip-mutated")
        assert not certificate.ok
        assert not certificate.lifo_ok
        flags = [
            f for f in certificate.flags if f.kind == "lifo-violation"
        ]
        assert flags and flags[0].path

    def test_widened_frames_raise_depth_bound(self):
        program = workload("mcf").program()
        baseline = certify_program(program).depth_bound
        assert baseline is not None
        for index, instruction in enumerate(program.instructions):
            if instruction.is_sp_adjust:
                delta = -256 if instruction.imm < 0 else 256
                program.instructions[index] = Instruction(
                    "lda", rd=SP, rb=SP, imm=instruction.imm + delta
                )
        certificate = certify_program(program, name="mcf-widened")
        # Both halves of every allocate/restore pair moved, so balance
        # holds — only the bound verdict may (and must) move, upward.
        assert certificate.lifo_ok
        assert certificate.depth_bound is not None
        assert certificate.depth_bound >= baseline + 256

    def test_leaked_slot_address_flips_escape(self):
        clean = """
        int main() { int x = 1; print(x); return 0; }
        """
        leaky = """
        int leak;
        int main() { int x = 1; leak = &x; print(x); return 0; }
        """
        assert certify_program(compile_program(clean)).ok
        certificate = certify_program(
            compile_program(leaky), name="leaky"
        )
        assert not certificate.ok
        kinds = {flag.kind for flag in certificate.flags}
        assert "unclean-escape" in kinds


@pytest.mark.lint
class TestCertifyCLI:
    def test_single_workload_text(self, capsys):
        from repro.cli import main

        assert main(["certify", "gzip"]) == 0
        out = capsys.readouterr().out
        assert "CERTIFIED" in out
        assert "depth <= " in out

    def test_adversarial_exits_one(self, capsys):
        from repro.cli import main

        assert main(["certify", "--adversarial"]) == 1
        out = capsys.readouterr().out
        assert "FLAGGED" in out
        assert "lifo-violation" in out

    def test_conflicting_selectors_exit_two(self, capsys):
        from repro.cli import main

        assert main(["certify", "gzip", "--all"]) == 2
        assert main(["certify"]) == 2

    def test_unknown_workload_exits_two(self, capsys):
        from repro.cli import main

        assert main(["certify", "nonesuch"]) == 2

    def test_json_schema_version(self, capsys):
        from repro.cli import main

        assert main(["certify", "mcf", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == api.SCHEMA_VERSION

    def test_asm_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "pair.s"
        path.write_text(LEAF_PAIR)
        assert main(["certify", "--asm", str(path)]) == 0
        out = capsys.readouterr().out
        assert "depth <= 48" in out

    def test_missing_asm_file_exits_two(self, capsys):
        from repro.cli import main

        assert main(["certify", "--asm", "/nonexistent.s"]) == 2
