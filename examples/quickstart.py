#!/usr/bin/env python
"""Quickstart: measure the Stack Value File's speedup on one workload.

This walks the whole pipeline in ~30 lines:

1. pick a workload (the crafty-style game-tree search — the canonical
   deep-call-stack benchmark);
2. run it on the functional emulator to get a dynamic trace;
3. time the trace on the paper's 16-wide baseline machine (Table 2);
4. time it again with an 8 KB, dual-ported Stack Value File attached;
5. report the speedup and where it came from.

Run:  python examples/quickstart.py
"""

from repro.uarch import simulate, table2_config
from repro.workloads import workload


def main() -> None:
    work = workload("crafty")
    print(f"workload: {work.name} ({work.description})")

    trace = work.trace(max_instructions=60_000)
    print(f"trace: {len(trace):,} instructions, "
          f"{sum(1 for r in trace if r.is_mem):,} memory references")

    baseline_config = table2_config(16, dl1_ports=2)
    svf_config = baseline_config.with_svf(
        mode="svf", capacity_bytes=8192, ports=2
    )

    baseline = simulate(trace, baseline_config)
    svf = simulate(trace, svf_config)

    print(f"\nbaseline : {baseline.cycles:,} cycles "
          f"(IPC {baseline.ipc:.2f})")
    print(f"with SVF : {svf.cycles:,} cycles (IPC {svf.ipc:.2f})")
    print(f"speedup  : {(svf.speedup_over(baseline) - 1) * 100:+.1f}%")

    morphed = svf.svf_fast_loads + svf.svf_fast_stores
    total = morphed + svf.svf_rerouted
    print(f"\nSVF behaviour: {morphed:,} references morphed into "
          f"register moves ({100 * svf.svf_fast_fraction:.0f}% of stack "
          f"references),")
    print(f"  {svf.svf_rerouted:,} re-routed after address calculation, "
          f"{svf.svf_fills:,} demand fills,")
    print(f"  DL1 traffic fell from {baseline.dl1_accesses:,} to "
          f"{svf.dl1_accesses:,} accesses.")
    assert total > 0


if __name__ == "__main__":
    main()
