"""Ablation — banked SVF vs true multiporting (paper Section 7).

The non-product sweep (1/2 true ports plus 2/4/8 single-ported banks)
lives in ``suites/banking.yaml`` as a union of grids; this file is a
thin assert over its run-table rows.
"""


def test_banking_ablation(benchmark, emit, timing_window, sweep_suite):
    result = benchmark.pedantic(
        lambda: sweep_suite("banking", timing_window),
        rounds=1, iterations=1,
    )
    emit("ablation_banking", result.render_summary())
    assert result.ok, [row.error for row in result.rows if not row.ok]

    speedups = {}
    for row in result.rows:
        key = (row.level("svf_ports"), row.level("svf_banks"))
        speedups[(row.workload, key)] = row.metric("speedup")

    for name in ("186.crafty", "176.gcc", "175.vpr"):
        one_port = speedups[(name, (1, 0))]
        two_ports = speedups[(name, (2, 0))]
        banks2 = speedups[(name, (1, 2))]
        banks4 = speedups[(name, (1, 4))]
        banks8 = speedups[(name, (1, 8))]
        # Banking beats a single true port...
        assert banks4 >= one_port, name
        # ...and more banks never hurt.
        assert banks8 >= banks4 - 0.01, name
        assert banks4 >= banks2 - 0.01, name
        # Eight single-ported banks recover most of a true dual port.
        assert banks8 >= two_ports - 0.06, name
