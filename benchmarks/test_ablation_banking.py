"""Ablation — banked SVF vs true multiporting (paper Section 7).

"The SVF is direct-mapped, can be single-ported, and can easily be
banked."  Banking replaces expensive true ports with B single-ported
banks selected by low-order address bits; same-cycle accesses to one
bank serialize.  Consecutive frame slots map to different banks, so a
modest number of banks should recover most of a true dual port's
benefit at far lower cost.
"""

from repro.harness import percent, render_table
from repro.uarch.config import table2_config
from repro.uarch.pipeline import simulate
from repro.workloads import cached_trace, workload

BENCHMARKS = ["186.crafty", "176.gcc", "175.vpr"]


def run_ablation(window):
    rows = []
    base = table2_config(16)
    for name in BENCHMARKS:
        trace = cached_trace(workload(name), window)
        baseline = simulate(trace, base)

        def speedup(**svf_kwargs):
            run = simulate(
                trace, base.with_svf(mode="svf", no_squash=True,
                                     **svf_kwargs)
            )
            return run.speedup_over(baseline)

        rows.append(
            (
                name,
                speedup(ports=1),
                speedup(banks=2, ports=1),
                speedup(banks=4, ports=1),
                speedup(banks=8, ports=1),
                speedup(ports=2),
            )
        )
    return rows


def test_banking_ablation(benchmark, emit, timing_window):
    rows = benchmark.pedantic(
        lambda: run_ablation(timing_window), rounds=1, iterations=1
    )
    emit(
        "ablation_banking",
        render_table(
            ["Benchmark", "1 true port", "2 banks", "4 banks", "8 banks",
             "2 true ports"],
            [(n, *[percent(v) for v in vals]) for n, *vals in
             [(r[0], *r[1:]) for r in rows]],
            title="Ablation: banked SVF vs true multiporting (16-wide)",
        ),
    )
    for name, one_port, banks2, banks4, banks8, two_ports in rows:
        # Banking beats a single true port...
        assert banks4 >= one_port, name
        # ...and more banks never hurt.
        assert banks8 >= banks4 - 0.01, name
        assert banks4 >= banks2 - 0.01, name
        # Eight single-ported banks recover most of a true dual port.
        assert banks8 >= two_ports - 0.06, name
