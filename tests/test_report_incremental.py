"""Incremental report mode: content-keyed section reuse.

``repro report --incremental`` records a content key per compute
section (workload sources × compile options × machine specs × analysis
version × window) in the shared :class:`TraceCache` and re-renders
only sections whose keys changed, splicing cached payloads in for the
rest.  The contract under test:

* output byte-identical to a non-incremental run, warm and cold, at
  every job count;
* a fully warm run executes zero cells (proven with exploding
  runners);
* changing an input (the timing window) invalidates exactly the
  sections that consume it;
* degraded sections are never cached, so they re-run next time;
* the profiler counters explain what was reused.
"""

import pytest

import repro.harness.parallel as parallel
from repro.api import ReportOptions, generate_report
from repro.harness.runall import (
    _SECTION_PLAN,
    _SECTION_VERSIONS,
    section_content_key,
)
from repro.profiling import PhaseProfiler

BENCH = ("181.mcf",)
WINDOWS = dict(timing_window=1_500, functional_window=1_500)


def _options(cache_dir, incremental=True, jobs=1, **overrides):
    knobs = dict(WINDOWS)
    knobs.update(overrides)
    return ReportOptions(
        benchmarks=BENCH,
        jobs=jobs,
        cache_dir=str(cache_dir),
        incremental=incremental,
        **knobs,
    )


class TestByteIdentity:
    def test_cold_matches_non_incremental(self, tmp_path):
        plain = generate_report(
            _options(tmp_path / "a", incremental=False)
        )
        incremental = generate_report(_options(tmp_path / "b"))
        assert incremental == plain

    def test_warm_matches_at_every_jobs(self, tmp_path):
        cache = tmp_path / "cache"
        cold = generate_report(_options(cache))
        assert generate_report(_options(cache, jobs=1)) == cold
        assert generate_report(_options(cache, jobs=2)) == cold


class TestSectionReuse:
    def test_profiler_counts_reuse(self, tmp_path):
        cache = tmp_path / "cache"
        cold_profiler = PhaseProfiler()
        cold = generate_report(_options(cache), profiler=cold_profiler)
        assert cold_profiler.counters["sections_rendered"] == len(
            _SECTION_PLAN
        )
        assert "sections_reused" not in cold_profiler.counters
        warm_profiler = PhaseProfiler()
        warm = generate_report(_options(cache), profiler=warm_profiler)
        assert warm == cold
        assert warm_profiler.counters["sections_reused"] == len(
            _SECTION_PLAN
        )
        assert warm_profiler.counters["section_cache_hits"] == len(
            _SECTION_PLAN
        )
        assert "sections_rendered" not in warm_profiler.counters

    def test_window_change_invalidates_selectively(self, tmp_path):
        cache = tmp_path / "cache"
        generate_report(_options(cache))
        profiler = PhaseProfiler()
        generate_report(
            _options(cache, timing_window=1_600), profiler=profiler
        )
        # fig5/fig6/fig7/fig9 consume the timing window; characterize,
        # table3 and table4 consume the functional window and reuse.
        assert profiler.counters["sections_rendered"] == 4
        assert profiler.counters["sections_reused"] == 3


class TestWarmRunsNoCells:
    def test_exploding_runners_never_fire_when_warm(
        self, tmp_path, monkeypatch
    ):
        cache = tmp_path / "cache"
        cold = generate_report(_options(cache))

        def explode(cell):
            raise AssertionError(f"cell {cell.label} ran")

        for section in list(parallel._CELL_RUNNERS):
            monkeypatch.setitem(
                parallel._CELL_RUNNERS, section, explode
            )
        assert generate_report(_options(cache)) == cold


class TestDegradedSections:
    def test_failed_section_not_cached(self, tmp_path, monkeypatch):
        cache = tmp_path / "cache"

        def fail(cell):
            raise RuntimeError("injected failure")

        monkeypatch.setitem(parallel._CELL_RUNNERS, "table4", fail)
        degraded = generate_report(_options(cache))
        assert "degraded: cell table4" in degraded
        monkeypatch.undo()
        # The healthy sections were cached; table4 was not, so the
        # next run re-executes it and produces a clean document.
        profiler = PhaseProfiler()
        healthy = generate_report(_options(cache), profiler=profiler)
        assert "degraded" not in healthy
        assert profiler.counters["sections_reused"] == 6
        assert profiler.counters["sections_rendered"] == 1


class TestContentKeys:
    def test_stable_across_calls(self):
        for section, _kind in _SECTION_PLAN:
            first = section_content_key(section, list(BENCH), 2_000, 80)
            again = section_content_key(section, list(BENCH), 2_000, 80)
            assert first == again

    def test_distinct_per_section_and_inputs(self):
        keys = {
            section_content_key(section, list(BENCH), 2_000, 80)
            for section, _kind in _SECTION_PLAN
        }
        assert len(keys) == len(_SECTION_PLAN)
        assert section_content_key(
            "fig5", list(BENCH), 2_000, 80
        ) != section_content_key("fig5", list(BENCH), 2_001, 80)
        assert section_content_key(
            "table4", list(BENCH), 2_000, 80
        ) != section_content_key("table4", list(BENCH), 2_000, 81)
        assert section_content_key(
            "fig5", ["164.gzip"], 2_000, 80
        ) != section_content_key("fig5", ["181.mcf"], 2_000, 80)

    def test_version_bump_invalidates(self, monkeypatch):
        before = section_content_key("table3", list(BENCH), 2_000, 80)
        monkeypatch.setitem(
            _SECTION_VERSIONS,
            "table3",
            _SECTION_VERSIONS["table3"] + 1,
        )
        assert (
            section_content_key("table3", list(BENCH), 2_000, 80)
            != before
        )

    def test_corrupt_section_entry_degrades_to_miss(self, tmp_path):
        cache = tmp_path / "cache"
        cold = generate_report(_options(cache))
        store = parallel.TraceCache(str(cache))
        for path in store.sections_root.glob("*.section.pkl"):
            path.write_bytes(b"not a pickle")
        profiler = PhaseProfiler()
        assert generate_report(_options(cache), profiler=profiler) == cold
        assert profiler.counters["sections_rendered"] == len(
            _SECTION_PLAN
        )
