#!/usr/bin/env python
"""Write your own workload in MiniC and study its stack behaviour.

The paper's analysis starts from workload characterization (Figures
1-3).  This example shows the full flow on a *custom* program — a
run-length compressor you could have written yourself — instead of the
built-in suite:

1. compile MiniC source with the bundled compiler;
2. execute it and stream the trace through the Figure-1/2/3 analyses;
3. print the access-method distribution, stack-depth curve and offset
   locality;
4. check how an 8 KB SVF would have treated its stack traffic.

Run:  python examples/compression_workload.py
"""

from repro.core import simulate_traffic
from repro.emulator import Machine, STACK_BASE
from repro.lang import compile_program
from repro.trace import (
    AccessDistribution,
    AccessMethod,
    MultiSink,
    OffsetLocality,
    StackDepthProfile,
)

SOURCE = """
int history[256];

int compress_block(int *data, int n, int *out) {
    int run_table[32];
    for (int i = 0; i < 32; i += 1) { run_table[i] = 0; }
    int out_count = 0;
    int i = 0;
    while (i < n) {
        int value = data[i];
        int run = 1;
        while (i + run < n && data[i + run] == value) { run += 1; }
        out[out_count] = value;
        out[out_count + 1] = run;
        out_count += 2;
        run_table[run & 31] += 1;
        history[value & 255] += run;
        i += run;
    }
    int entropy = 0;
    for (int i = 0; i < 32; i += 1) { entropy += run_table[i] * i; }
    return out_count + (entropy & 7);
}

int main() {
    int block[96];
    int packed[192];
    int state = 12345;
    int total = 0;
    for (int round_id = 0; round_id < 12; round_id += 1) {
        for (int i = 0; i < 96; i += 1) {
            state = (state * 1103515245 + 12345) & 2147483647;
            block[i] = (state >> 9) & 7;
        }
        total += compress_block(&block[0], 96, &packed[0]);
    }
    print(total);
    return 0;
}
"""


def main() -> None:
    program = compile_program(SOURCE)
    print(f"compiled: {len(program.instructions)} static instructions")

    distribution = AccessDistribution()
    depth = StackDepthProfile(stack_base=STACK_BASE)
    locality = OffsetLocality()
    sink = MultiSink(distribution, depth, locality, keep=True)

    machine = Machine(program)
    machine.run(trace_sink=sink)
    print(f"executed: {machine.instruction_count:,} instructions, "
          f"output = {machine.output}")

    print("\n-- Figure 1 style: access distribution --")
    print(f"memory refs / instruction : {distribution.memory_fraction:.2f}")
    for method in AccessMethod:
        fraction = distribution.fraction(method)
        if fraction > 0:
            print(f"  {method.value:10s}: {fraction:.2f}")

    print("\n-- Figure 2 style: stack depth --")
    low, high = depth.stable_range()
    print(f"max depth : {depth.max_depth} quad-words "
          f"({depth.max_depth * 8} bytes)")
    print(f"stable band after init: [{low}, {high}] quad-words")

    print("\n-- Figure 3 style: offset locality --")
    print(f"average offset from TOS : {locality.average_offset:.1f} bytes")
    print(f"within 300 B of TOS     : "
          f"{100 * locality.fraction_within(300):.1f}%")
    print(f"beyond TOS              : {locality.beyond_tos}")

    print("\n-- SVF vs stack cache traffic (8 KB) --")
    traffic = simulate_traffic(sink.records, capacity_bytes=8192)
    print(f"stack cache : {traffic.stack_cache_qw_in:,} QW in / "
          f"{traffic.stack_cache_qw_out:,} QW out")
    print(f"SVF         : {traffic.svf_qw_in:,} QW in / "
          f"{traffic.svf_qw_out:,} QW out")


if __name__ == "__main__":
    main()
