"""Table 4 — writeback traffic per context switch.

Paper shape: the SVF writes back 3-20x less than the stack cache per
switch, because (a) deallocated frames were already killed and (b) its
dirty bits are per-64-bit-word while the stack cache writes whole
lines.  The paper's period is 400k instructions of a 1G run; ours is
scaled to keep the same switches-per-window density.
"""

from repro.harness import table4_context_switch


def test_table4(benchmark, emit, functional_window):
    period = max(functional_window // 25, 1_000)
    result = benchmark.pedantic(
        lambda: table4_context_switch(
            max_instructions=functional_window, period=period
        ),
        rounds=1,
        iterations=1,
    )
    emit("table4_context_switch", result.render())

    ratios = []
    for name, (cache_bytes, svf_bytes) in result.rows.items():
        assert svf_bytes <= cache_bytes + 1e-9, name
        if svf_bytes > 0:
            ratios.append(cache_bytes / svf_bytes)
    assert ratios, "at least some workloads must have dirty SVF state"
    average_ratio = sum(ratios) / len(ratios)
    assert average_ratio > 1.5, (
        "SVF switch traffic should be well below the stack cache"
    )
    # The paper reports 3-20x for individual benchmarks; at least some
    # of the suite should reach that band.
    assert max(ratios) > 3.0
