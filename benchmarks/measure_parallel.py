"""Measure the parallel report engine: wall-clock by job count.

Regenerates ``benchmarks/results/parallel_report_timing.txt``::

    PYTHONPATH=src python benchmarks/measure_parallel.py \
        [--jobs 4] [--timing-window 40000] [--functional-window 80000] \
        [--seed-seconds 71.6]

Three full-suite runs are timed: serial (``jobs=1``) on a cold cache,
parallel (``--jobs``) on a cold cache, and parallel again on the warm
cache the second run left behind.  Every run's markdown is compared
byte-for-byte, so the artifact doubles as a determinism check.
``--seed-seconds`` records an externally measured wall clock of the
pre-engine serial harness for the before/after row.

Each measurement runs in a fresh interpreter (``--run-one`` re-invokes
this script).  Worker processes fork from the measuring interpreter,
so a "cold" parallel run timed inside a long-lived parent would hand
its children warm module-level state — decoded programs, in-process
trace caches — left behind by an earlier run and report a fictitious
speedup.  A subprocess per measurement is the only reliable cold
start.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from bench_json import write_bench_json

RESULTS = Path(__file__).parent / "results" / "parallel_report_timing.txt"


def run_one(args) -> int:
    """Child mode: one timed full-suite run, JSON result on stdout."""
    from repro.harness import parallel as engine
    from repro.harness.runall import generate_report

    started = time.perf_counter()
    text = generate_report(
        timing_window=args.timing_window,
        functional_window=args.functional_window,
        jobs=args.run_one,
        cache_dir=args.cache_dir,
    )
    elapsed = time.perf_counter() - started
    Path(args.text_out).write_text(text)
    report = engine.last_engine_report()
    shm_used = report is not None and report.shm_prefix is not None
    print(
        json.dumps(
            {
                "seconds": elapsed,
                "shm_used": shm_used,
                "shm_segments": report.shm_segments if shm_used else 0,
                "shm_bytes": report.shm_bytes if shm_used else 0,
            }
        )
    )
    return 0


def timed_run(jobs: int, cache_dir: str, windows) -> tuple:
    """Time one full-suite run in a fresh interpreter."""
    text_out = Path(cache_dir) / f"report-jobs{jobs}.md"
    proc = subprocess.run(
        [
            sys.executable,
            __file__,
            "--run-one",
            str(jobs),
            "--cache-dir",
            cache_dir,
            "--text-out",
            str(text_out),
            "--timing-window",
            str(windows[0]),
            "--functional-window",
            str(windows[1]),
        ],
        capture_output=True,
        text=True,
        check=True,
    )
    payload = json.loads(proc.stdout.strip().splitlines()[-1])
    text = text_out.read_text()
    text_out.unlink()
    return payload, text


def main() -> int:
    cli = argparse.ArgumentParser(description=__doc__)
    cli.add_argument("--jobs", type=int, default=4)
    cli.add_argument("--timing-window", type=int, default=40_000)
    cli.add_argument("--functional-window", type=int, default=80_000)
    cli.add_argument("--seed-seconds", type=float, default=None)
    cli.add_argument("--run-one", type=int, default=None, help=argparse.SUPPRESS)
    cli.add_argument("--cache-dir", default=None, help=argparse.SUPPRESS)
    cli.add_argument("--text-out", default=None, help=argparse.SUPPRESS)
    args = cli.parse_args()
    if args.run_one is not None:
        return run_one(args)
    windows = (args.timing_window, args.functional_window)

    cold_serial_dir = tempfile.mkdtemp(prefix="repro-measure-")
    cold_parallel_dir = tempfile.mkdtemp(prefix="repro-measure-")
    try:
        serial, serial_text = timed_run(1, cold_serial_dir, windows)
        parallel, parallel_text = timed_run(
            args.jobs, cold_parallel_dir, windows
        )
        warm, warm_text = timed_run(args.jobs, cold_parallel_dir, windows)
    finally:
        shutil.rmtree(cold_serial_dir, ignore_errors=True)
        shutil.rmtree(cold_parallel_dir, ignore_errors=True)

    serial_s = serial["seconds"]
    parallel_s = parallel["seconds"]
    warm_s = warm["seconds"]
    identical = serial_text == parallel_text == warm_text
    lines = [
        "Parallel report engine: full-suite wall clock",
        f"(windows: {windows[0]:,} timing / {windows[1]:,} functional; "
        f"host: {os.cpu_count()} CPU(s); each run in a fresh interpreter)",
        "",
        f"{'configuration':42s} {'seconds':>8s}",
    ]
    if args.seed_seconds is not None:
        lines.append(
            f"{'seed serial harness (pre-engine), no cache':42s} "
            f"{args.seed_seconds:8.1f}"
        )
    lines += [
        f"{'engine --jobs 1, cold cache':42s} {serial_s:8.1f}",
        f"{f'engine --jobs {args.jobs}, cold cache':42s} {parallel_s:8.1f}",
        f"{f'engine --jobs {args.jobs}, warm cache':42s} {warm_s:8.1f}",
        "",
        f"reports byte-identical across runs: {'yes' if identical else 'NO'}",
    ]
    if args.seed_seconds is not None:
        lines.append(
            f"speedup vs seed harness: cold "
            f"{args.seed_seconds / parallel_s:.1f}x, warm "
            f"{args.seed_seconds / warm_s:.1f}x"
        )
    lines.append(
        f"speedup --jobs {args.jobs} vs --jobs 1 (cold): "
        f"{serial_s / parallel_s:.2f}x"
    )
    if (os.cpu_count() or 1) == 1:
        lines.append(
            "caveat: single-CPU host — the worker pool timeshares one "
            "core, so the --jobs axis cannot show parallel speedup here "
            "(expect <= 1x from pool + fan-out overhead); the cross-run "
            "win comes from the trace/cell cache."
        )
    shm_used = parallel["shm_used"]
    lines.append(
        "shared-memory trace fan-out (cold parallel run): "
        + (
            f"{parallel['shm_segments']} segments, "
            f"{parallel['shm_bytes']:,} bytes, swept clean"
            if shm_used
            else "not used (serial run or no /dev/shm)"
        )
    )
    text = "\n".join(lines)
    print(text)
    RESULTS.write_text(text + "\n")
    results = {
        "timing_window": windows[0],
        "functional_window": windows[1],
        "jobs": args.jobs,
        "seed_serial_seconds": args.seed_seconds,
        "engine_jobs1_cold_seconds": round(serial_s, 3),
        "engine_cold_seconds": round(parallel_s, 3),
        "engine_warm_seconds": round(warm_s, 3),
        "reports_byte_identical": identical,
        "shared_memory": {
            "used": shm_used,
            "segments": parallel["shm_segments"],
            "fanout_bytes": parallel["shm_bytes"],
        },
    }
    json_path = write_bench_json("parallel", results)
    print(f"\nwrote {RESULTS}")
    print(f"wrote {json_path}")
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
