"""Fast end-to-end smoke of the parallel report path.

Runs the CI smoke target from the issue —
``python -m repro report --benchmarks gzip mcf --timing-window 2000
--jobs 2`` — as a real subprocess, so the worker-pool spawn, the CLI
flag plumbing, and the markdown write are all exercised in tier-1
without the full battery.  The subprocess carries a tight wall-clock
timeout (no pytest-timeout plugin in this environment, so the bound is
enforced at the ``subprocess.run`` level).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SMOKE_TIMEOUT = 120  # seconds; the run takes ~5s on one CPU


@pytest.mark.smoke
def test_parallel_report_smoke(tmp_path):
    output = tmp_path / "smoke_report.md"
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src")
        + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    )
    completed = subprocess.run(
        [
            sys.executable, "-m", "repro", "report",
            "--benchmarks", "gzip", "mcf",
            "--timing-window", "2000",
            "--jobs", "2",
            "--output", str(output),
            "--cache-dir", str(tmp_path / "cache"),
        ],
        capture_output=True,
        text=True,
        timeout=SMOKE_TIMEOUT,
        env=env,
        cwd=str(tmp_path),
    )
    assert completed.returncode == 0, completed.stderr
    assert "wrote" in completed.stdout
    text = output.read_text()
    for marker in ("Figure 5", "Figure 9", "Table 3", "Table 4"):
        assert marker in text, marker
    assert "gzip" in text and "mcf" in text
    # No degraded cells in a healthy smoke run.
    assert "degraded" not in text
    # The cache was populated by the workers.
    cache_root = tmp_path / "cache"
    assert any(cache_root.rglob("*.trace.bin"))


@pytest.mark.smoke
def test_smoke_exit_code_2_has_no_traceback(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "report", "--benchmarks", "nope"],
        capture_output=True,
        text=True,
        timeout=60,
        env=env,
        cwd=str(tmp_path),
    )
    assert completed.returncode == 2
    assert completed.stderr.startswith("repro: unknown benchmark: nope")
    assert "Traceback" not in completed.stderr
