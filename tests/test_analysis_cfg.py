"""CFG reconstruction from hand-written assembly."""

import pytest

from repro.analysis import build_cfg
from repro.isa import assemble

DIAMOND = """
.text
main:
    lda   sp, -16(sp)
    stq   a0, 0(sp)
    beq   a0, main$else
    lda   v0, 1(zero)
    br    main$join
main$else:
    lda   v0, 2(zero)
main$join:
    ldq   a0, 0(sp)
    lda   sp, 16(sp)
    ret
"""

CALLS = """
.text
main:
    lda   sp, -16(sp)
    stq   ra, 0(sp)
    bsr   helper
    bsr   helper
    ldq   ra, 0(sp)
    lda   sp, 16(sp)
    ret
helper:
    lda   sp, -16(sp)
    stq   a0, 0(sp)
    bsr   leaf
    ldq   a0, 0(sp)
    lda   sp, 16(sp)
    ret
leaf:
    lda   v0, 7(zero)
    ret
"""

LOOP = """
.text
main:
    lda   sp, -16(sp)
    stq   zero, 0(sp)
main$head:
    ldq   t0, 0(sp)
    cmplt t0, 10, t1
    beq   t1, main$end
    addq  t0, 1, t0
    stq   t0, 0(sp)
    br    main$head
main$end:
    lda   sp, 16(sp)
    ret
"""


class TestDiamond:
    def test_blocks_and_edges(self):
        cfg = build_cfg(assemble(DIAMOND))
        function = cfg.functions["main"]
        # entry | then | else | join
        assert len(function.blocks) == 4
        entry, then, other, join = function.blocks
        assert set(entry.successors) == {then.id, other.id}
        assert then.successors == [join.id]
        assert other.successors == [join.id]
        assert join.successors == []
        assert sorted(join.predecessors) == [then.id, other.id]

    def test_exit_blocks(self):
        cfg = build_cfg(assemble(DIAMOND))
        function = cfg.functions["main"]
        exits = function.exit_blocks()
        assert len(exits) == 1
        assert function.instruction(exits[0].end - 1).op == "ret"

    def test_block_at(self):
        cfg = build_cfg(assemble(DIAMOND))
        function = cfg.functions["main"]
        assert function.block_at(0) is function.entry
        with pytest.raises(KeyError):
            function.block_at(999)


class TestFunctionPartitioning:
    def test_three_functions(self):
        cfg = build_cfg(assemble(CALLS))
        assert set(cfg.functions) == {"main", "helper", "leaf"}

    def test_contiguous_bounds(self):
        cfg = build_cfg(assemble(CALLS))
        program = assemble(CALLS)
        spans = sorted(
            (f.start, f.end) for f in cfg.functions.values()
        )
        assert spans[0][0] == 0
        assert spans[-1][1] == len(program)
        for (_, left_end), (right_start, _) in zip(spans, spans[1:]):
            assert left_end == right_start

    def test_call_graph(self):
        cfg = build_cfg(assemble(CALLS))
        assert cfg.call_graph["main"] == {"helper"}
        assert cfg.call_graph["helper"] == {"leaf"}
        assert cfg.call_graph["leaf"] == set()

    def test_call_sites_do_not_split_blocks_but_are_recorded(self):
        cfg = build_cfg(assemble(CALLS))
        main = cfg.functions["main"]
        assert len(main.call_sites) == 2
        # Straight-line code with calls stays a single block.
        assert len(main.blocks) == 1

    def test_anomaly_free(self):
        cfg = build_cfg(assemble(CALLS))
        assert cfg.anomalies == []

    def test_uncalled_function_is_partitioned(self):
        # A plain label nothing branches to is a function entry even
        # without a `bsr` caller — dead functions must not be absorbed
        # into their predecessor as unreachable code.
        source = """
        .text
        main:
            ret
        orphan:
            lda   sp, -16(sp)
            lda   sp, 16(sp)
            ret
        """
        cfg = build_cfg(assemble(source))
        assert set(cfg.functions) == {"main", "orphan"}
        assert cfg.call_graph["main"] == set()


class TestLoop:
    def test_back_edge(self):
        cfg = build_cfg(assemble(LOOP))
        function = cfg.functions["main"]
        head = function.block_at(function.program.labels["main$head"])
        latch_targets = [
            block for block in function.blocks
            if head.id in block.successors and block.start > head.start
        ]
        assert latch_targets, "loop latch must branch back to the head"

    def test_reverse_postorder_starts_at_entry(self):
        cfg = build_cfg(assemble(LOOP))
        function = cfg.functions["main"]
        order = function.reverse_postorder()
        assert order[0] is function.entry
        assert len(order) == len(function.blocks)

    def test_all_blocks_reachable(self):
        cfg = build_cfg(assemble(LOOP))
        function = cfg.functions["main"]
        assert function.reachable_ids() == {b.id for b in function.blocks}


class TestAnomalies:
    def test_indirect_jump_recorded(self):
        source = """
        .text
        main:
            jmp   t0
        """
        cfg = build_cfg(assemble(source))
        assert any(a.kind == "indirect-jump" for a in cfg.anomalies)

    def test_indirect_call_recorded(self):
        source = """
        .text
        main:
            jsr   t0
            ret
        """
        cfg = build_cfg(assemble(source))
        assert any(a.kind == "indirect-call" for a in cfg.anomalies)

    def test_fallthrough_exit_recorded(self):
        source = """
        .text
        main:
            addq  zero, 1, v0
        """
        cfg = build_cfg(assemble(source))
        assert any(a.kind == "fallthrough-exit" for a in cfg.anomalies)

    def test_unreachable_block_listed(self):
        source = """
        .text
        main:
            br    main$end
            addq  zero, 1, t0
        main$end:
            ret
        """
        cfg = build_cfg(assemble(source))
        function = cfg.functions["main"]
        reachable = function.reachable_ids()
        assert len(reachable) < len(function.blocks)


class TestWorkloadCFGs:
    def test_every_workload_builds(self):
        from repro.workloads import ALL_BENCHMARKS, workload

        for name in ALL_BENCHMARKS:
            program = workload(name).program()
            cfg = build_cfg(program)
            assert "main" in cfg.functions
            assert "__start" in cfg.functions
            # Every instruction belongs to exactly one function.
            covered = sum(
                f.end - f.start for f in cfg.functions.values()
            )
            assert covered == len(program)
            # The compiler never emits indirect transfers.
            assert cfg.anomalies == []

    def test_entry_function_calls_main(self):
        from repro.workloads import workload

        cfg = build_cfg(workload("gzip").program())
        assert "main" in cfg.call_graph["__start"]
