"""Flat 64-bit memory with the Alpha-style region layout.

The paper (Section 2) describes the Compaq Alpha address-space layout:
the stack grows down from a system-defined base towards address 0; the
read-only data, text and global data regions sit in the middle range;
and the heap grows up from just after the global data region.  The
constants below reproduce that layout, and
:class:`~repro.trace.regions.RegionMap` classifies addresses against it.

Storage is a dictionary of aligned 64-bit words, which keeps sparse
gigabyte-spans cheap while supporting the 4- and 8-byte accesses the
ISA performs.
"""

from __future__ import annotations

from typing import Dict

TEXT_BASE = 0x0000_1000
DATA_BASE = 0x1000_0000
HEAP_BASE = 0x2000_0000
STACK_BASE = 0x7FFF_F000

_MASK64 = (1 << 64) - 1


class MemoryError_(Exception):
    """Raised on unaligned or otherwise invalid accesses."""


class Memory:
    """Sparse word-addressed memory."""

    def __init__(self):
        self._words: Dict[int, int] = {}

    def load(self, addr: int, size: int) -> int:
        """Read ``size`` bytes (4 or 8) at ``addr``, zero-extended."""
        self._check(addr, size)
        word = self._words.get(addr & ~7, 0)
        if size == 8:
            return word
        shift = (addr & 7) * 8
        return (word >> shift) & 0xFFFFFFFF

    def store(self, addr: int, value: int, size: int) -> None:
        """Write the low ``size`` bytes (4 or 8) of ``value`` at ``addr``."""
        self._check(addr, size)
        base = addr & ~7
        if size == 8:
            self._words[base] = value & _MASK64
            return
        shift = (addr & 7) * 8
        mask = 0xFFFFFFFF << shift
        old = self._words.get(base, 0)
        self._words[base] = (old & ~mask) | ((value & 0xFFFFFFFF) << shift)

    def load_signed(self, addr: int, size: int) -> int:
        """Read with sign extension to 64 bits."""
        value = self.load(addr, size)
        bits = size * 8
        if value & (1 << (bits - 1)):
            value -= 1 << bits
        return value & _MASK64

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Bulk-initialize memory (used to place the .data segment)."""
        for offset, byte in enumerate(data):
            position = addr + offset
            base = position & ~7
            shift = (position & 7) * 8
            old = self._words.get(base, 0)
            self._words[base] = (old & ~(0xFF << shift)) | (byte << shift)

    def read_bytes(self, addr: int, count: int) -> bytes:
        """Bulk read (used by tests)."""
        out = bytearray()
        for offset in range(count):
            position = addr + offset
            word = self._words.get(position & ~7, 0)
            out.append((word >> ((position & 7) * 8)) & 0xFF)
        return bytes(out)

    @staticmethod
    def _check(addr: int, size: int) -> None:
        if size not in (4, 8):
            raise MemoryError_(f"unsupported access size {size}")
        if addr % size != 0:
            raise MemoryError_(f"unaligned {size}-byte access at 0x{addr:x}")
        if addr < 0:
            raise MemoryError_(f"negative address 0x{addr:x}")
