"""Characterization extension — first-touch stores on the stack.

Paper Section 7, contribution 1: stack references show "a much higher
percentage of first reference store operations (making per word valid
bits attractive)".  This is the semantic fact that lets the SVF skip
fills on allocation; this benchmark measures it per workload and
contrasts it with global/heap first touches.
"""

from repro.harness import characterize


def test_first_touch(benchmark, emit, functional_window):
    result = benchmark.pedantic(
        lambda: characterize(max_instructions=functional_window),
        rounds=1,
        iterations=1,
    )
    emit("first_touch", result.render_first_touch())

    stack_fractions = []
    contrast = []
    for name, profile in result.first_touch.items():
        total = profile.stack_first_stores + profile.stack_first_loads
        if total < 50:
            continue
        stack_fractions.append(profile.stack_first_store_fraction)
        other_total = (
            profile.other_first_stores + profile.other_first_loads
        )
        if other_total >= 50:
            contrast.append(
                profile.stack_first_store_fraction
                - profile.other_first_store_fraction
            )
    assert stack_fractions, "suite must exercise stack allocations"
    average = sum(stack_fractions) / len(stack_fractions)
    assert average > 0.75, (
        "freshly allocated stack words should be written first"
    )
    if contrast:
        assert sum(contrast) / len(contrast) > 0, (
            "stack first-store bias should exceed other regions'"
        )
