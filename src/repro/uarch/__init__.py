"""Out-of-order timing model (modified-SimpleScalar analogue)."""

from repro.uarch.bpred import GSharePredictor, PerfectPredictor, make_predictor
from repro.uarch.cache import Cache, build_hierarchy
from repro.uarch.config import (
    CacheConfig,
    MachineConfig,
    SVFConfig,
    baseline_16wide,
    table2_config,
)
from repro.uarch.pipeline import simulate
from repro.uarch.resources import CyclePool, acquire_all
from repro.uarch.stats import SimStats

__all__ = [
    "Cache",
    "CacheConfig",
    "CyclePool",
    "GSharePredictor",
    "MachineConfig",
    "PerfectPredictor",
    "SVFConfig",
    "SimStats",
    "acquire_all",
    "baseline_16wide",
    "build_hierarchy",
    "make_predictor",
    "simulate",
    "table2_config",
]
