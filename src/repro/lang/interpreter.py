"""Reference interpreter for MiniC (AST-walking, no compilation).

Exists for differential testing: the compiled path (codegen →
assembler → emulator) and this interpreter must produce identical
``print`` output for any program.  The tests run both on random and
hand-written programs; any divergence is a compiler or emulator bug.

Semantics mirror the target machine exactly: 64-bit two's-complement
wraparound arithmetic, C-style truncating division, arithmetic right
shift, and a flat memory in which pointers are plain integers.
Variables, array elements and heap cells all live in one address
space, so address-of/pointer code behaves byte-for-byte like the
compiled version (stack addresses are synthetic but consistent).
"""

from __future__ import annotations

from typing import Dict, List

from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.lang.semantics import analyze

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def _signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value & _SIGN64 else value


class InterpreterError(Exception):
    """Raised on runtime faults (division by zero, step limit, ...)."""


class _Return(Exception):
    def __init__(self, value: int):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class Interpreter:
    """Evaluate a MiniC translation unit directly."""

    #: synthetic address-space bases, mirroring the emulator's layout
    GLOBAL_BASE = 0x1000_0000
    HEAP_BASE = 0x2000_0000
    STACK_BASE = 0x7FFF_F000

    def __init__(self, unit: ast.TranslationUnit, max_steps: int = 10_000_000):
        self.unit = unit
        self.analyzer = analyze(unit)
        self.functions = {f.name: f for f in unit.functions}
        self.memory: Dict[int, int] = {}
        self.output: List[int] = []
        self.max_steps = max_steps
        self.steps = 0
        self._heap_cursor = self.HEAP_BASE
        self._stack_cursor = self.STACK_BASE
        #: global name -> base address
        self.global_addresses: Dict[str, int] = {}
        cursor = self.GLOBAL_BASE
        for global_var in unit.globals:
            self.global_addresses[global_var.name] = cursor
            size = global_var.array_size or 1
            values = list(global_var.initializer[:size])
            values.extend([0] * (size - len(values)))
            for index, value in enumerate(values):
                self.memory[cursor + 8 * index] = value & _MASK64
            cursor += 8 * size

    # -- driving ----------------------------------------------------------

    def run(self) -> int:
        """Execute ``main``; returns its value."""
        return self.call("main", [])

    def call(self, name: str, arguments: List[int]) -> int:
        function = self.functions[name]
        frame_size = 8 * (len(function.info.params) + sum(  # type: ignore
            symbol.array_size if symbol.is_array else 1
            for symbol in function.info.locals  # type: ignore
        ) + 4)
        self._stack_cursor -= frame_size
        frame_base = self._stack_cursor
        env: Dict[int, int] = {}
        cursor = frame_base
        for symbol, value in zip(function.info.params, arguments):  # type: ignore
            env[symbol.uid] = cursor
            self.memory[cursor] = value & _MASK64
            cursor += 8
        for symbol in function.info.locals:  # type: ignore
            env[symbol.uid] = cursor
            cursor += 8 * (symbol.array_size if symbol.is_array else 1)
        try:
            self._exec_block(function.body, env)
            result = 0
        except _Return as ret:
            result = ret.value
        finally:
            self._stack_cursor += frame_size
        return result

    def _tick(self, line: int = 0) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpreterError(f"step limit exceeded near line {line}")

    # -- statements ---------------------------------------------------------

    def _exec_block(self, body, env) -> None:
        for statement in body:
            self._exec(statement, env)

    def _exec(self, statement, env) -> None:
        self._tick(statement.line)
        if isinstance(statement, ast.Declaration):
            if statement.initializer is not None:
                symbol = statement.symbol  # type: ignore[attr-defined]
                value = self._eval(statement.initializer, env)
                self.memory[env[symbol.uid]] = value & _MASK64
        elif isinstance(statement, ast.Assign):
            address = self._lvalue_address(statement.target, env)
            value = self._eval(statement.value, env)
            self.memory[address] = value & _MASK64
        elif isinstance(statement, ast.ExprStmt):
            if statement.expr is not None:
                self._eval(statement.expr, env)
        elif isinstance(statement, ast.If):
            if _signed(self._eval(statement.condition, env)) != 0:
                self._exec_block(statement.then_body, env)
            else:
                self._exec_block(statement.else_body, env)
        elif isinstance(statement, ast.While):
            while _signed(self._eval(statement.condition, env)) != 0:
                self._tick(statement.line)
                try:
                    self._exec_block(statement.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(statement, ast.For):
            if statement.init is not None:
                self._exec(statement.init, env)
            while (
                statement.condition is None
                or _signed(self._eval(statement.condition, env)) != 0
            ):
                self._tick(statement.line)
                try:
                    self._exec_block(statement.body, env)
                except _Break:
                    break
                except _Continue:
                    pass
                if statement.step is not None:
                    self._exec(statement.step, env)
        elif isinstance(statement, ast.Return):
            value = (
                self._eval(statement.value, env)
                if statement.value is not None
                else 0
            )
            raise _Return(value)
        elif isinstance(statement, ast.Break):
            raise _Break()
        elif isinstance(statement, ast.Continue):
            raise _Continue()
        else:  # pragma: no cover - statement set is closed
            raise InterpreterError(f"unknown statement {statement!r}")

    # -- expressions ----------------------------------------------------------

    def _lvalue_address(self, target, env) -> int:
        if isinstance(target, ast.VarRef):
            symbol = target.symbol  # type: ignore[attr-defined]
            if symbol.kind == "global":
                return self.global_addresses[symbol.name]
            return env[symbol.uid]
        if isinstance(target, ast.Index):
            base = self._eval_base_address(target.base, env)
            index = _signed(self._eval(target.index, env))
            return (base + 8 * index) & _MASK64
        if isinstance(target, ast.Unary) and target.op == "*":
            return self._eval(target.operand, env) & _MASK64
        raise InterpreterError("invalid assignment target")

    def _eval_base_address(self, expr, env) -> int:
        """Address of an array/pointer expression used as an index base."""
        if isinstance(expr, ast.VarRef):
            symbol = expr.symbol  # type: ignore[attr-defined]
            if symbol.is_array:
                if symbol.kind == "global":
                    return self.global_addresses[symbol.name]
                return env[symbol.uid]
        return self._eval(expr, env) & _MASK64

    def _eval(self, expr, env) -> int:
        self._tick(expr.line)
        if isinstance(expr, ast.IntLiteral):
            return expr.value & _MASK64
        if isinstance(expr, ast.VarRef):
            symbol = expr.symbol  # type: ignore[attr-defined]
            if symbol.is_array:
                return self._eval_base_address(expr, env)
            if symbol.kind == "global":
                return self.memory.get(
                    self.global_addresses[symbol.name], 0
                )
            return self.memory.get(env[symbol.uid], 0)
        if isinstance(expr, ast.Index):
            base = self._eval_base_address(expr.base, env)
            index = _signed(self._eval(expr.index, env))
            return self.memory.get((base + 8 * index) & _MASK64, 0)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, env)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        raise InterpreterError(  # pragma: no cover - closed set
            f"unknown expression {expr!r}"
        )

    def _eval_unary(self, expr, env) -> int:
        if expr.op == "&":
            if isinstance(expr.operand, ast.VarRef):
                symbol = expr.operand.symbol  # type: ignore[attr-defined]
                if symbol.kind == "global":
                    return self.global_addresses[symbol.name]
                return env[symbol.uid]
            if isinstance(expr.operand, ast.Index):
                return self._lvalue_address(expr.operand, env)
            raise InterpreterError("'&' needs a variable or element")
        if expr.op == "*":
            address = self._eval(expr.operand, env) & _MASK64
            return self.memory.get(address, 0)
        value = self._eval(expr.operand, env)
        if expr.op == "-":
            return (-_signed(value)) & _MASK64
        if expr.op == "!":
            return 0 if _signed(value) != 0 else 1
        if expr.op == "~":
            return (~value) & _MASK64
        raise InterpreterError(f"unknown unary {expr.op!r}")

    def _eval_binary(self, expr, env) -> int:
        op = expr.op
        if op == "&&":
            if _signed(self._eval(expr.left, env)) == 0:
                return 0
            return 1 if _signed(self._eval(expr.right, env)) != 0 else 0
        if op == "||":
            if _signed(self._eval(expr.left, env)) != 0:
                return 1
            return 1 if _signed(self._eval(expr.right, env)) != 0 else 0
        left = _signed(self._eval(expr.left, env))
        right = _signed(self._eval(expr.right, env))
        if op == "+":
            return (left + right) & _MASK64
        if op == "-":
            return (left - right) & _MASK64
        if op == "*":
            return (left * right) & _MASK64
        if op in ("/", "%"):
            if right == 0:
                raise InterpreterError("division by zero")
            quotient = abs(left) // abs(right)
            if (left < 0) != (right < 0):
                quotient = -quotient
            if op == "/":
                return quotient & _MASK64
            return (left - quotient * right) & _MASK64
        if op == "&":
            return (left & right) & _MASK64
        if op == "|":
            return (left | right) & _MASK64
        if op == "^":
            return (left ^ right) & _MASK64
        if op == "<<":
            return (left << (right & 63)) & _MASK64
        if op == ">>":
            return (left >> (right & 63)) & _MASK64
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        raise InterpreterError(f"unknown binary {op!r}")

    def _eval_call(self, expr, env) -> int:
        if expr.name == "print":
            value = self._eval(expr.args[0], env)
            self.output.append(_signed(value))
            return 0
        if expr.name == "alloc":
            count = _signed(self._eval(expr.args[0], env))
            address = self._heap_cursor
            self._heap_cursor += 8 * max(count, 0)
            return address
        if expr.name == "load32":
            pointer = self._eval(expr.args[0], env)
            offset = _signed(self._eval(expr.args[1], env))
            addr = (pointer + offset) & _MASK64
            if addr % 4 != 0:
                raise InterpreterError(f"unaligned load32 at 0x{addr:x}")
            word = self.memory.get(addr & ~7, 0)
            value = (word >> ((addr & 7) * 8)) & 0xFFFFFFFF
            if value & 0x80000000:  # ldl sign-extends
                value |= 0xFFFFFFFF00000000
            return value
        if expr.name == "store32":
            pointer = self._eval(expr.args[0], env)
            offset = _signed(self._eval(expr.args[1], env))
            value = self._eval(expr.args[2], env)
            addr = (pointer + offset) & _MASK64
            if addr % 4 != 0:
                raise InterpreterError(f"unaligned store32 at 0x{addr:x}")
            base = addr & ~7
            shift = (addr & 7) * 8
            mask = 0xFFFFFFFF << shift
            old = self.memory.get(base, 0)
            self.memory[base] = (old & ~mask) | (
                (value & 0xFFFFFFFF) << shift
            )
            return 0
        arguments = [self._eval(arg, env) for arg in expr.args]
        return self.call(expr.name, arguments)


def interpret(source: str, max_steps: int = 10_000_000) -> Interpreter:
    """Parse, analyze and run MiniC ``source``; returns the interpreter."""
    unit = parse(source)
    interpreter = Interpreter(unit, max_steps=max_steps)
    interpreter.run()
    return interpreter
