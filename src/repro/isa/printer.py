"""Render an assembled :class:`Program` back to assembler text.

The optimizer (:mod:`repro.lang.opt`) operates on assembled programs;
``repro compile --emit asm`` at ``-O1`` and debugging workflows need
the result back as re-assemblable source.  Rendering is exact: the
emitted text assembles to a program with identical instructions,
labels, data bytes and symbol addresses (the assembler lays symbols
out in the order encountered, which is preserved here by emitting them
in address order).
"""

from __future__ import annotations

import struct
from typing import Dict, List

from repro.isa.instructions import Program


class RenderError(ValueError):
    """Raised when a program cannot be rendered back to source."""


def _render_data(program: Program) -> List[str]:
    lines = [".data"]
    symbols = sorted(program.symbols.items(), key=lambda item: item[1])
    if not symbols:
        if program.data:
            raise RenderError("data segment bytes without any symbol")
        return lines
    data = bytes(program.data)
    base = symbols[0][1]
    for position, (name, address) in enumerate(symbols):
        next_address = (
            symbols[position + 1][1]
            if position + 1 < len(symbols)
            else base + len(data)
        )
        chunk = data[address - base:next_address - base]
        if not chunk:
            raise RenderError(f"symbol {name!r} has no data")
        if len(chunk) % 8 == 0:
            values = struct.unpack(f"<{len(chunk) // 8}Q", chunk)
            rendered = ", ".join(str(_signed64(value)) for value in values)
            lines.append(f"{name}: .quad {rendered}")
        elif not any(chunk):
            lines.append(f"{name}: .space {len(chunk)}")
        else:
            raise RenderError(
                f"symbol {name!r} spans {len(chunk)} bytes (not a "
                f"multiple of 8) with nonzero contents"
            )
    return lines


def _signed64(value: int) -> int:
    return value - (1 << 64) if value & (1 << 63) else value


def render_program(program: Program) -> str:
    """Render ``program`` as assembler source text."""
    labels_at: Dict[int, List[str]] = {}
    for label, index in program.labels.items():
        labels_at.setdefault(index, []).append(label)

    lines = _render_data(program)
    lines.append("")
    lines.append(".text")
    for index, instruction in enumerate(program.instructions):
        for label in sorted(labels_at.get(index, [])):
            lines.append(f"{label}:")
        lines.append("    " + instruction.render())
    # Labels addressing the end of the text segment (none are produced
    # by the compiler, but hand-written sources may have them).
    for label in sorted(labels_at.get(len(program.instructions), [])):
        lines.append(f"{label}:")
    return "\n".join(lines) + "\n"
