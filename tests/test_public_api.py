"""Public-API surface tests: every __all__ entry exists and imports,
and the ``repro.api`` facade surface is pinned explicitly."""

import dataclasses
import importlib
import json

import pytest

PACKAGES = [
    "repro",
    "repro.api",
    "repro.isa",
    "repro.lang",
    "repro.analysis",
    "repro.emulator",
    "repro.trace",
    "repro.uarch",
    "repro.core",
    "repro.workloads",
    "repro.harness",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_entries_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), package_name
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted_and_unique(package_name):
    package = importlib.import_module(package_name)
    entries = list(package.__all__)
    assert len(entries) == len(set(entries)), package_name


def test_top_level_quickstart_symbols():
    """The README quickstart must keep working."""
    import repro

    trace = repro.workload("gzip").trace(max_instructions=2_000)
    base = repro.table2_config(16)
    svf = base.with_svf(mode="svf", ports=2)
    baseline = repro.simulate(trace, base)
    run = repro.simulate(trace, svf)
    assert run.speedup_over(baseline) > 0

    assert repro.StackValueFile(1024).num_entries == 128
    assert repro.StackCache(1024).num_lines == 32
    assert repro.__version__


def test_docstrings_on_public_classes():
    """Every public class/function carries a docstring."""
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        for name in package.__all__:
            obj = getattr(package, name)
            if callable(obj) and not isinstance(obj, (int, tuple, dict)):
                assert obj.__doc__, f"{package_name}.{name} lacks a docstring"


# ---------------------------------------------------------------------------
# The repro.api facade: the stability boundary is pinned explicitly.
# ---------------------------------------------------------------------------

FACADE_SURFACE = {
    "CertifyResult",
    "ChaosOptions",
    "ChaosResult",
    "CompileOptions",
    "EXPERIMENT_NAMES",
    "ExperimentResult",
    "MachineSpec",
    "ReportOptions",
    "RunResult",
    "SCHEMA_VERSION",
    "SweepOptions",
    "SweepResult",
    "UsageError",
    "certify",
    "certify_json",
    "chaos_check",
    "chaos_json",
    "characterize",
    "compile_source",
    "experiment",
    "generate_report",
    "lint",
    "lint_json",
    "load_suite",
    "predict",
    "run_workload",
    "simulate",
    "simulate_batch",
    "sweep",
    "sweep_json",
    "versioned",
}


def test_facade_surface_pinned():
    from repro import api

    assert set(api.__all__) == FACADE_SURFACE
    # The facade verbs are re-exported from the package root.
    import repro

    for name in ("CompileOptions", "MachineSpec", "RunResult",
                 "SCHEMA_VERSION", "compile_source", "run_workload",
                 "characterize", "simulate", "lint", "certify",
                 "experiment"):
        assert name in repro.__all__, name


def test_option_objects_are_frozen_with_stable_defaults():
    from repro import api

    options = api.CompileOptions()
    assert (options.fp_frames, options.promoted_locals,
            options.opt_level) == (True, 4, 0)
    spec = api.MachineSpec()
    assert (spec.width, spec.svf_mode) == (16, "none")
    with pytest.raises(dataclasses.FrozenInstanceError):
        options.opt_level = 1
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.width = 4
    with pytest.raises(ValueError):
        api.CompileOptions(opt_level=7)


def test_machine_spec_materializes_table2_config():
    from repro import api

    config = api.MachineSpec(width=8, svf_mode="svf", svf_ports=4,
                             svf_capacity=4096).config()
    assert config.decode_width == 8
    assert config.svf.mode == "svf"
    assert config.svf.ports == 4
    assert config.svf.capacity_bytes == 4096
    # No stack unit requested -> untouched baseline sub-config.
    assert api.MachineSpec(width=4).config().svf.mode == "none"


def test_compile_source_and_run_workload():
    from repro import api

    source = "int main() { int x; x = 41; return x + 1; }"
    program = api.compile_source(source)
    assert len(program) > 0
    asm = api.compile_source(source, emit="asm")
    assert "main" in asm
    with pytest.raises(ValueError):
        api.compile_source(source, emit="object")

    result = api.run_workload("mcf", max_instructions=20_000)
    assert result.workload == "mcf.inp"
    assert result.instructions == 20_000
    assert not result.halted


def test_simulate_accepts_spec_config_and_workload_name():
    import repro
    from repro import api

    trace = repro.workload("gzip").trace(max_instructions=2_000)
    by_spec = api.simulate(trace, api.MachineSpec())
    by_config = api.simulate(trace, repro.table2_config(16))
    assert by_spec.cycles == by_config.cycles
    by_name = api.simulate("gzip", max_instructions=2_000)
    assert by_name.cycles == by_spec.cycles


def test_lint_facade_and_versioned_json():
    from repro import api

    reports = api.lint("mcf")
    assert len(reports) == 1 and reports[0].ok
    payload = json.loads(api.lint_json(reports))
    assert payload["schema_version"] == api.SCHEMA_VERSION
    assert payload["ok"] is True

    program = api.compile_source(
        "int main() { int x; x = 1; return x; }"
    )
    assert api.lint(program)[0].ok


def test_experiment_facade_versioned_json():
    from repro import api

    # Unknown names are a usage error (CLI exit 2), not a crash.
    with pytest.raises(api.UsageError):
        api.experiment("fig99")
    result = api.experiment("table2")
    assert result.name == "table2"
    payload = json.loads(result.to_json())
    assert payload["schema_version"] == api.SCHEMA_VERSION
    assert payload["experiment"] == "table2"
    assert payload["text"] == result.render()


def test_every_json_envelope_is_versioned_with_kind():
    """lint/certify/experiment/sweep all share one envelope contract:
    ``schema_version`` (current) plus a ``kind`` discriminator."""
    from repro import api
    from repro.harness.sweep import SweepResult, SweepRow

    program = api.compile_source(
        "int main() { int x; x = 1; return x; }"
    )
    sweep_result = SweepResult(
        suite="round-trip", kind="timing", description="",
        window=1000, repetitions=1, workloads=("164.gzip",),
        factors=("svf_ports",),
        rows=(SweepRow(
            workload="164.gzip", opt_level=0, repetition=0,
            levels=(("svf_ports", 2),),
            metrics={"speedup": 1.0},
        ),),
    )
    envelopes = {
        "lint": api.lint_json(api.lint(program)),
        "certify": api.certify_json(api.certify(program)),
        "experiment": api.experiment("table2").to_json(),
        "sweep": api.sweep_json(sweep_result),
    }
    for kind, text in envelopes.items():
        payload = json.loads(text)
        assert payload["schema_version"] == api.SCHEMA_VERSION, kind
        assert payload["kind"] == kind, kind
    # The sweep run table round-trips byte-identically.
    assert json.loads(sweep_result.run_table_json()) == (
        sweep_result.run_table()
    )
