"""Tests for the command-line interface.

Exit-code contract: every ``cmd_*`` handler returns an int — 0 on
success, 1 when the command ran but found failures, 2 on usage errors
(unknown workload/input names, missing files), which must surface as a
one-line stderr message, never a traceback.
"""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_suite(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "256.bzip2" in out and "175.vpr" in out
        assert "inputs = graphic, program" in out


class TestRun:
    def test_runs_workload(self, capsys):
        assert main(["run", "gzip", "--max-instructions", "5000"]) == 0
        out = capsys.readouterr().out
        assert "5,000 instructions" in out

    def test_input_selection(self, capsys):
        assert main(
            ["run", "bzip2", "--input", "program",
             "--max-instructions", "2000"]
        ) == 0
        assert "bzip2.program" in capsys.readouterr().out

    def test_opt_level_flag(self, capsys):
        assert main(["run", "gzip", "-O1",
                     "--max-instructions", "5000"]) == 0
        assert "5,000 instructions" in capsys.readouterr().out


class TestUsageErrors:
    """Unknown names and missing files: one-line error, exit code 2."""

    def _assert_one_line_error(self, capsys, fragment):
        captured = capsys.readouterr()
        assert fragment in captured.err
        assert captured.err.startswith("repro: ")
        assert captured.err.count("\n") == 1

    def test_run_unknown_workload(self, capsys):
        assert main(["run", "doom"]) == 2
        self._assert_one_line_error(capsys, "unknown benchmark")

    def test_run_unknown_input(self, capsys):
        assert main(["run", "gzip", "--input", "reference"]) == 2
        self._assert_one_line_error(capsys, "unknown input")

    def test_simulate_unknown_workload(self, capsys):
        assert main(["simulate", "doom"]) == 2
        self._assert_one_line_error(capsys, "unknown benchmark")

    def test_characterize_unknown_workload(self, capsys):
        assert main(["characterize", "doom"]) == 2
        self._assert_one_line_error(capsys, "unknown benchmark")

    def test_trace_unknown_workload(self, capsys, tmp_path):
        assert main(["trace", "doom", str(tmp_path / "t.svft")]) == 2
        self._assert_one_line_error(capsys, "unknown benchmark")

    def test_report_unknown_benchmark(self, capsys, tmp_path):
        assert main(["report", "--output", str(tmp_path / "r.md"),
                     "--benchmarks", "doom"]) == 2
        self._assert_one_line_error(capsys, "unknown benchmark")

    def test_compile_missing_file(self, capsys):
        assert main(["compile", "/no/such/file.mc"]) == 2
        self._assert_one_line_error(capsys, "no such source file")

    def test_replay_missing_file(self, capsys):
        assert main(["replay", "/no/such/trace.svft"]) == 2
        self._assert_one_line_error(capsys, "no such trace file")

    def test_every_handler_returns_int(self, tmp_path, capsys):
        # The cheap commands, exercised end to end: handlers must
        # return int (argparse-level SystemExit is a separate path).
        source = tmp_path / "p.mc"
        source.write_text("int main() { return 0; }")
        for argv in (
            ["list"],
            ["run", "mcf", "--max-instructions", "1000"],
            ["compile", str(source)],
            ["lint", "mcf"],
            ["experiment", "table2"],
        ):
            code = main(argv)
            assert isinstance(code, int) and code == 0, argv
        capsys.readouterr()


class TestCharacterize:
    def test_single_workload(self, capsys):
        assert main(
            ["characterize", "gzip", "--max-instructions", "8000"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Figure 2" in out
        assert "Figure 3" in out

    def test_json_format_is_versioned(self, capsys):
        from repro.api import SCHEMA_VERSION

        assert main(
            ["characterize", "gzip", "--max-instructions", "5000",
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert set(payload["figures"]) == {"fig1", "fig2", "fig3"}


class TestSimulate:
    def test_baseline_only(self, capsys):
        assert main(
            ["simulate", "gzip", "--max-instructions", "6000"]
        ) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "IPC" in out

    def test_with_svf(self, capsys):
        assert main(
            ["simulate", "crafty", "--svf", "svf", "--ports", "2",
             "--max-instructions", "6000"]
        ) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "morphed" in out

    def test_stack_cache_mode(self, capsys):
        assert main(
            ["simulate", "gzip", "--svf", "stack_cache",
             "--max-instructions", "6000"]
        ) == 0
        assert "speedup" in capsys.readouterr().out

    def test_width_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["simulate", "gzip", "--width", "7"])


class TestCompile:
    SOURCE = "int main() { print(6 * 7); return 0; }"

    def test_emit_asm(self, tmp_path, capsys):
        source_file = tmp_path / "answer.mc"
        source_file.write_text(self.SOURCE)
        assert main(["compile", str(source_file)]) == 0
        out = capsys.readouterr().out
        assert ".text" in out and "bsr main" in out

    def test_emit_run(self, tmp_path, capsys):
        source_file = tmp_path / "answer.mc"
        source_file.write_text(self.SOURCE)
        assert main(["compile", str(source_file), "--emit", "run"]) == 0
        assert "[42]" in capsys.readouterr().out

    def test_opt_level_same_output(self, tmp_path, capsys):
        source_file = tmp_path / "answer.mc"
        source_file.write_text(
            "int main() { int x; int y; x = 6; y = 7; print(x * y); "
            "return 0; }"
        )
        assert main(["compile", str(source_file), "--emit", "run",
                     "-O1"]) == 0
        assert "[42]" in capsys.readouterr().out


class TestTraceReplay:
    def test_record_and_replay(self, tmp_path, capsys):
        trace_file = str(tmp_path / "gzip.svft")
        assert main(
            ["trace", "gzip", trace_file, "--max-instructions", "4000"]
        ) == 0
        assert "4,000 records" in capsys.readouterr().out
        assert main(["replay", trace_file, "--svf", "svf"]) == 0
        out = capsys.readouterr().out
        assert "4,000 instructions" in out
        assert "speedup" in out


class TestReport:
    def test_generates_full_report(self, tmp_path, capsys):
        output = str(tmp_path / "report.md")
        assert main(
            ["report", "--output", output,
             "--timing-window", "4000", "--functional-window", "4000",
             "--benchmarks", "gzip"]
        ) == 0
        text = open(output).read()
        for marker in ("Table 1", "Figure 5", "Figure 9", "Table 3",
                       "First-touch"):
            assert marker in text, marker
        assert "wrote" in capsys.readouterr().out

    def test_profile_flag_prints_breakdown_not_in_document(
        self, tmp_path, capsys
    ):
        output = str(tmp_path / "report.md")
        # Own cache dir: cells must actually run (a warm cache hit
        # ships no phase snapshot, correctly leaving only "render").
        assert main(
            ["report", "--output", output,
             "--timing-window", "3000", "--functional-window", "3000",
             "--benchmarks", "mcf", "--profile",
             "--cache-dir", str(tmp_path / "cache")]
        ) == 0
        out = capsys.readouterr().out
        assert "Phase profile — full report" in out
        for phase in ("compile", "emulate", "timing", "traffic",
                      "analysis", "render"):
            assert phase in out, phase
        # Cold run against a private cache: every trace and cell is a
        # miss, and the counter block names them.
        assert "cache counters:" in out
        for counter in ("cell_cache_misses", "trace_cache_misses",
                        "sections_rendered"):
            assert counter in out, counter
        # The breakdown goes to stdout only: the document stays
        # byte-comparable with and without --profile.
        assert "Phase profile" not in open(output).read()

    def test_incremental_warm_run_reports_reuse(self, tmp_path, capsys):
        output = str(tmp_path / "report.md")
        argv = ["report", "--output", output,
                "--timing-window", "3000", "--functional-window", "3000",
                "--benchmarks", "mcf", "--profile", "--incremental",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        cold = open(output).read()
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "sections_reused" in out
        assert "section_cache_hits" in out
        assert open(output).read() == cold


class TestProfile:
    def test_profiles_one_workload(self, capsys):
        assert main(["profile", "gzip", "--max-instructions", "3000"]) == 0
        out = capsys.readouterr().out
        assert "gzip.graphic: 3,000 instructions traced" in out
        assert "Phase profile — gzip.graphic" in out
        for phase in ("compile", "emulate", "timing", "traffic",
                      "analysis"):
            assert phase in out, phase
        assert "MIPS" in out

    def test_renders_superblock_replay_counters(self, capsys):
        # The emulator's decode/replay counters surface through the
        # same "cache counters:" block the cache tallies use.
        assert main(["profile", "gzip", "--max-instructions", "4000"]) == 0
        out = capsys.readouterr().out
        assert "cache counters:" in out
        for counter in ("superblock_builds", "superblock_replays",
                        "superblock_replayed_instructions"):
            assert counter in out, counter

    def test_renders_batch_counters(self, capsys):
        # The baseline and SVF runs share one batched trace pass, so
        # the batch counters show up in the "cache counters:" block.
        assert main(["profile", "gzip", "--max-instructions", "3000"]) == 0
        out = capsys.readouterr().out
        assert "batch_configs" in out
        assert "batch_walks_saved" in out

    def test_no_batch_runs_two_walks_without_counters(self, capsys):
        assert main(["profile", "gzip", "--max-instructions", "3000",
                     "--no-batch"]) == 0
        out = capsys.readouterr().out
        assert "gzip.graphic: 3,000 instructions traced" in out
        assert "batch_configs" not in out
        assert "batch_walks_saved" not in out

    def test_unknown_workload(self, capsys):
        assert main(["profile", "doom"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: ") and "unknown benchmark" in err


class TestPredict:
    def test_prediction_report(self, capsys):
        code = main(["predict", "--benchmarks", "gzip",
                     "--max-instructions", "4000", "--jobs", "1"])
        captured = capsys.readouterr()
        assert code == 0, captured.out
        assert "predicted" in captured.out
        # Progress goes to stderr, never stdout.
        assert "[predict]" in captured.err
        assert "[predict]" not in captured.out

    def test_output_file(self, tmp_path, capsys):
        output = str(tmp_path / "predict.md")
        assert main(["predict", "--benchmarks", "mcf",
                     "--max-instructions", "4000", "--jobs", "1",
                     "--output", output]) == 0
        assert "wrote" in capsys.readouterr().out
        assert "predicted" in open(output).read()

    def test_bad_jobs_rejected(self, capsys):
        assert main(["predict", "--jobs", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: ") and "--jobs" in err

    def test_unknown_benchmark(self, capsys):
        assert main(["predict", "--benchmarks", "doom"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestExperiment:
    def test_static_tables(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out
        assert main(["experiment", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig12"])

    def test_json_format_is_versioned(self, capsys):
        from repro.api import SCHEMA_VERSION

        assert main(["experiment", "table1", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["experiment"] == "table1"
        assert "Table 1" in payload["text"]


class TestSweep:
    SUITE = {
        "suite": "cli-unit",
        "kind": "timing",
        "workloads": ["gzip"],
        "window": 2000,
        "base": {"machine": {"svf_mode": "svf"}},
        "grid": {"svf_ports": [1, 2]},
    }

    def write_suite(self, tmp_path, **overrides):
        data = dict(self.SUITE)
        data.update(overrides)
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(data))
        return str(path)

    def test_missing_descriptor_is_usage_error(self, capsys):
        assert main(["sweep", "/no/such/suite.yaml"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: ")
        assert "no such suite descriptor" in err
        assert len(err.strip().splitlines()) == 1

    def test_invalid_descriptor_is_usage_error(self, tmp_path, capsys):
        path = self.write_suite(tmp_path, grid={"bogus_axis": [1]})
        assert main(["sweep", path]) == 2
        err = capsys.readouterr().err
        assert "unknown grid axis" in err
        assert len(err.strip().splitlines()) == 1

    def test_dry_run_prints_plan_without_running(self, tmp_path, capsys):
        path = self.write_suite(tmp_path)
        assert main(["sweep", path, "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "2 cells" in out
        assert "svf_ports=1" in out and "svf_ports=2" in out

    def test_end_to_end_writes_artifacts(self, tmp_path, capsys):
        from repro.api import SCHEMA_VERSION

        path = self.write_suite(tmp_path)
        out_dir = tmp_path / "artifacts"
        assert main(["sweep", path, "--jobs", "1", "--no-cache",
                     "--out", str(out_dir), "--format", "json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["kind"] == "sweep"
        assert payload["ok"] is True
        assert len(payload["rows"]) == 2
        # Progress goes to stderr, never stdout.
        assert "[sweep]" in captured.err
        assert "[sweep]" not in captured.out
        assert sorted(p.name for p in out_dir.iterdir()) == [
            "run_meta.json", "run_table.json", "summary.txt",
        ]
        # The on-disk run table is the printed payload.
        assert json.loads(
            (out_dir / "run_table.json").read_text()
        ) == payload

    def test_no_batch_flag_produces_identical_run_table(
        self, tmp_path, capsys
    ):
        path = self.write_suite(tmp_path)
        batched_dir = tmp_path / "batched"
        plain_dir = tmp_path / "plain"
        assert main(["sweep", path, "--jobs", "1", "--no-cache",
                     "--out", str(batched_dir)]) == 0
        assert main(["sweep", path, "--jobs", "1", "--no-cache",
                     "--out", str(plain_dir), "--no-batch"]) == 0
        capsys.readouterr()
        for artifact in ("run_table.json", "summary.txt"):
            assert (batched_dir / artifact).read_bytes() == \
                (plain_dir / artifact).read_bytes(), artifact
