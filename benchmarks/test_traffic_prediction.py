"""Predicted vs measured SVF traffic, -O0 vs -O1 (tentpole artifact).

Unlike the windowed benchmarks, every workload runs to completion at
both optimization levels: the acceptance property is *bit-identical
program outputs* with reduced dynamic ``$sp``-relative traffic, which
only a full run can certify.  On top of the measurement, the static
per-function bounds of ``repro.analysis.predict`` must dominate the
simulator's ``fills_avoided`` / ``killed_dirty_words`` counters —
predicted >= measured on every workload at every level.
"""

from repro.harness.prediction import traffic_prediction_report


def test_traffic_prediction(benchmark, emit):
    report = benchmark.pedantic(
        lambda: traffic_prediction_report(max_instructions=None),
        rounds=1,
        iterations=1,
    )
    emit("traffic_prediction", report.render())

    assert len(report.rows) == 13

    # Every workload must compute the same thing at both levels.
    differing = [r.name for r in report.rows if not r.outputs_identical]
    assert not differing, f"-O1 changed program outputs: {differing}"

    # Acceptance: >= 8 of 13 workloads reduce $sp-relative traffic.
    assert report.workloads_reduced >= 8, (
        f"only {report.workloads_reduced}/13 workloads reduced traffic"
    )

    # Soundness: the static bounds dominate the dynamic counters.
    violated = [r.name for r in report.rows if not r.bounds_hold]
    assert not violated, f"predictor bounds violated on: {violated}"
