"""Ablation — compiler register promotion (codegen design choice).

DESIGN.md calls out register promotion as the knob that calibrates the
stack share of memory references against the paper's Figure 1 (real
SPEC binaries were compiled optimized).  This ablation quantifies it:
with promotion off (-O0-style), the stack share rises sharply and the
SVF's headroom grows with it.
"""

from repro.harness import render_table
from repro.lang import CodegenOptions
from repro.trace.analysis import AccessDistribution
from repro.workloads import workload

BENCHMARKS = ["186.crafty", "164.gzip", "300.twolf"]


def distribution(name, promoted, window):
    dist = AccessDistribution()
    workload(name).run(
        max_instructions=window,
        trace_sink=dist,
        options=CodegenOptions(promoted_locals=promoted),
    )
    return dist


def run_ablation(window):
    rows = []
    for name in BENCHMARKS:
        optimized = distribution(name, 4, window)
        unoptimized = distribution(name, 0, window)
        rows.append(
            (
                name,
                f"{optimized.stack_fraction:.2f}",
                f"{unoptimized.stack_fraction:.2f}",
                f"{optimized.memory_fraction:.2f}",
                f"{unoptimized.memory_fraction:.2f}",
            )
        )
    return rows


def test_promotion_ablation(benchmark, emit, functional_window):
    window = min(functional_window, 60_000)
    rows = benchmark.pedantic(
        lambda: run_ablation(window), rounds=1, iterations=1
    )
    emit(
        "ablation_promotion",
        render_table(
            ["Benchmark", "stack% (opt)", "stack% (-O0)",
             "mem/instr (opt)", "mem/instr (-O0)"],
            rows,
            title="Ablation: register promotion vs stack share",
        ),
    )
    for name, stack_opt, stack_o0, mem_opt, mem_o0 in rows:
        assert float(stack_o0) >= float(stack_opt) - 0.02, name
        assert float(mem_o0) >= float(mem_opt), name
