"""Differential gate for the batched multi-config timing engine.

``simulate_batch`` interleaves one resumable walk per distinct config
through a single pass over the columns; sequential per-config
``simulate`` calls are the reference.  The two must agree bit-for-bit
on every statistic, across every workload, every ablation axis the
committed suites sweep, fuzzed programs, odd batch sizes, and chunk
boundaries that stop mid-trace — on both the numpy and pure-python
legs.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro import profiling
from repro.emulator import Machine
from repro.isa import assemble
from repro.trace.columnar import ColumnarTrace, set_numpy_enabled
from repro.trace.columnar import _np as _numpy
from repro.uarch import pipeline
from repro.uarch.config import table2_config
from repro.uarch.pipeline import (
    batch_enabled,
    set_batch_enabled,
    simulate,
    simulate_batch,
)
from repro.workloads import ALL_BENCHMARKS, workload

WINDOW = 2_000

_BASE = table2_config(16)

#: The config axes the committed suites ablate (SVF size, banking,
#: granularity, squash handling) plus every routing mode and the
#: predictor/context-switch paths the fast walk special-cases.
GRID = [
    _BASE,
    _BASE.with_svf(mode="svf", ports=16, capacity_bytes=64,
                   no_squash=True),
    _BASE.with_svf(mode="svf", ports=16, capacity_bytes=128,
                   no_squash=True),
    _BASE.with_svf(mode="svf", ports=16, capacity_bytes=256,
                   no_squash=True),
    _BASE.with_svf(mode="svf", ports=1),
    _BASE.with_svf(mode="svf", ports=1, banks=2),
    _BASE.with_svf(mode="svf", ports=1, banks=4),
    _BASE.with_svf(mode="svf", ports=2, granularity=16),
    _BASE.with_svf(mode="ideal"),
    _BASE.with_svf(mode="stack_cache"),
    _BASE.with_svf(mode="svf", ports=2, adaptive=True),
    dataclasses.replace(
        _BASE.with_svf(mode="svf", ports=2), branch_predictor="gshare"
    ),
]

LEGS = [
    pytest.param(False, id="reference"),
    pytest.param(
        True, id="numpy",
        marks=pytest.mark.skipif(
            _numpy is None, reason="numpy unavailable"
        ),
    ),
]


def _assert_stats_equal(reference, batched, label):
    for field in dataclasses.fields(reference):
        ref_value = getattr(reference, field.name)
        bat_value = getattr(batched, field.name)
        assert bat_value == ref_value, (
            f"{label}: {field.name} diverged "
            f"(sequential {ref_value!r}, batched {bat_value!r})"
        )


def _seq_vs_batch(trace, configs, numpy_leg, label):
    previous = set_numpy_enabled(numpy_leg)
    try:
        sequential = [simulate(trace, config) for config in configs]
        batched = simulate_batch(trace, configs)
    finally:
        set_numpy_enabled(previous)
    assert len(batched) == len(configs)
    for i, (ref, bat) in enumerate(zip(sequential, batched)):
        _assert_stats_equal(ref, bat, f"{label}[{i}]")


@pytest.fixture(scope="module")
def gzip_trace():
    return workload("gzip").trace(max_instructions=WINDOW)


@pytest.mark.parametrize("numpy_leg", LEGS)
@pytest.mark.parametrize("bench", ALL_BENCHMARKS)
def test_batch_matches_sequential_on_every_workload(bench, numpy_leg):
    trace = workload(bench).trace(max_instructions=WINDOW)
    _seq_vs_batch(trace, GRID, numpy_leg, bench)


@pytest.mark.parametrize("numpy_leg", LEGS)
@pytest.mark.parametrize("size", [1, 2, 7, len(GRID)])
def test_batch_sizes(gzip_trace, size, numpy_leg):
    _seq_vs_batch(gzip_trace, GRID[:size], numpy_leg, f"size{size}")


@pytest.mark.parametrize("numpy_leg", LEGS)
def test_small_chunks_interleave_mid_trace(
    gzip_trace, numpy_leg, monkeypatch
):
    # A tiny odd chunk forces the round-robin driver through many
    # resume points that land mid-trace, including a short final
    # chunk; duplicates exercise the copy-per-slot fan-out.
    monkeypatch.setattr(pipeline, "_BATCH_CHUNK", 37)
    configs = [GRID[0], GRID[4], GRID[0], GRID[9], GRID[4]]
    _seq_vs_batch(gzip_trace, configs, numpy_leg, "chunk37")


@pytest.mark.parametrize("numpy_leg", LEGS)
@pytest.mark.parametrize("window", [1, 17, 63, 500])
def test_mid_trace_window_stops(window, numpy_leg):
    trace = workload("gzip").trace(max_instructions=window)
    _seq_vs_batch(trace, [GRID[0], GRID[4], GRID[8]], numpy_leg,
                  f"window{window}")


@pytest.mark.parametrize("numpy_leg", LEGS)
def test_empty_trace(numpy_leg):
    _seq_vs_batch(ColumnarTrace(), GRID[:3], numpy_leg, "empty")


def test_duplicate_configs_return_independent_copies(gzip_trace):
    results = simulate_batch(gzip_trace, [GRID[0], GRID[0]])
    assert results[0] == results[1]
    assert results[0] is not results[1]
    results[0].cycles += 1
    results[0].extras["poked"] = 1
    assert results[1].cycles == results[0].cycles - 1
    assert "poked" not in results[1].extras


def test_batch_counters_note_saved_walks(gzip_trace):
    configs = [GRID[0], GRID[4], GRID[0]]  # 3 members, 2 distinct
    with profiling.profiled() as profiler:
        simulate_batch(gzip_trace, configs)
    assert profiler.counters["batch_configs"] == 3
    assert profiler.counters["batch_walks_saved"] == 2


def test_gate_disables_batching_and_counters(gzip_trace):
    previous = set_batch_enabled(False)
    try:
        assert batch_enabled() is False
        with profiling.profiled() as profiler:
            batched = simulate_batch(gzip_trace, GRID[:3])
    finally:
        set_batch_enabled(previous)
    assert "batch_configs" not in profiler.counters
    assert "batch_walks_saved" not in profiler.counters
    sequential = [simulate(gzip_trace, config) for config in GRID[:3]]
    for i, (ref, bat) in enumerate(zip(sequential, batched)):
        _assert_stats_equal(ref, bat, f"gated[{i}]")


# --- fuzzed programs: same step grammar as the columnar gate ---------

REGS = ["r1", "r2", "r3", "r4", "r5"]
ALU_OPS = ["addq", "subq", "mulq", "and", "or", "xor",
           "sll", "srl", "cmpeq", "cmplt"]

_alu = st.one_of(
    st.tuples(st.just("alu"), st.sampled_from(ALU_OPS),
              st.sampled_from(REGS), st.sampled_from(REGS),
              st.sampled_from(REGS)),
    st.tuples(st.just("alui"), st.sampled_from(ALU_OPS),
              st.sampled_from(REGS), st.integers(-200, 200),
              st.sampled_from(REGS)),
)
_memory = st.one_of(
    st.tuples(st.just("store"), st.sampled_from(REGS),
              st.integers(0, 15)),
    st.tuples(st.just("load"), st.sampled_from(REGS),
              st.integers(0, 15)),
)
_branch = st.tuples(st.just("branch"), st.sampled_from(["beq", "bne"]),
                    st.sampled_from(REGS))
_sp_adjust = st.tuples(st.just("sp"), st.sampled_from([-32, -16, 16, 32]))

_step = st.one_of(_alu, _memory, _branch, _sp_adjust)


def _fuzz_source(steps):
    lines = ["main:", "    lda sp, -512(sp)"]
    for i, item in enumerate(steps):
        kind = item[0]
        if kind == "alu":
            _, op, ra, rb, rd = item
            lines.append(f"    {op} {ra}, {rb}, {rd}")
        elif kind == "alui":
            _, op, ra, imm, rd = item
            lines.append(f"    {op} {ra}, {imm}, {rd}")
        elif kind == "store":
            _, reg, slot = item
            lines.append(f"    stq {reg}, {8 * slot}(sp)")
        elif kind == "load":
            _, reg, slot = item
            lines.append(f"    ldq {reg}, {8 * slot}(sp)")
        elif kind == "branch":
            _, op, reg = item
            lines.append(f"    {op} {reg}, skip_{i}")
            lines.append("    addq r1, 1, r1")
            lines.append(f"skip_{i}:")
        else:
            _, imm = item
            lines.append(f"    lda sp, {imm}(sp)")
            lines.append(f"    lda sp, {-imm}(sp)")
    lines.append("    lda sp, 512(sp)")
    lines.append("    halt")
    return "\n".join(lines)


_FUZZ_CONFIGS = [GRID[0], GRID[4], GRID[8], GRID[9], GRID[11]]


class TestFuzzedDifferential:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(_step, min_size=1, max_size=30))
    def test_batch_matches_sequential(self, steps):
        program = assemble(_fuzz_source(steps))
        trace = ColumnarTrace()
        Machine(program).run(trace_sink=trace)
        for numpy_leg in (False, True):
            if numpy_leg and _numpy is None:
                continue
            _seq_vs_batch(trace, _FUZZ_CONFIGS, numpy_leg, "fuzz")
