"""One-pass out-of-order timing model (modified-SimpleScalar analogue).

The model replays the dynamic instruction stream produced by the
functional emulator and computes, for every instruction, the cycle at
which it is fetched, dispatched, issued, completed and committed,
subject to:

* fetch bandwidth, IFQ occupancy and branch-redirect bubbles;
* a unified RUU window (dispatch stalls when the instruction
  ``ruu_size`` older has not committed) and an LSQ window for memory
  operations — the paper's Register Update Unit organization;
* issue width, integer ALU/multiplier pools and cache-port pools;
* the DL1/L2/memory hierarchy of Table 2, with 3-cycle store
  forwarding in the LSQ;
* in-order commit bandwidth.

The stack unit is pluggable (``config.svf.mode``):

``none``
    every reference uses a DL1 port.
``svf``
    ``$sp``-relative references inside the SVF window are *morphed*
    into register moves: the base-register (address calculation)
    dependence disappears, the access uses an SVF port with 1-cycle
    latency, and store→load communication happens through the rename
    map (``entry_ready``) instead of the 3-cycle LSQ poll.  Non-``$sp``
    stack references in range are re-routed at cache-like latency;
    gpr-store → sp-load collisions cost a pipeline squash (Section
    3.2) unless the ``no_squash`` code-generation option is set.
``ideal``
    Figure 5's limit study: every stack reference morphs, with
    unbounded capacity and ports.
``stack_cache``
    the decoupled stack cache: stack references use stack-cache ports
    and refill from the L2; every miss moves whole lines.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from repro.core.stack_cache import StackCache
from repro.core.svf import StackValueFile
from repro.isa.instructions import OpClass
from repro.isa.registers import NUM_REGISTERS, SP
from repro.trace.regions import is_stack_address
from repro.uarch.bpred import make_predictor
from repro.uarch.cache import build_hierarchy
from repro.uarch.config import MachineConfig
from repro.uarch.resources import CyclePool, acquire_all
from repro.uarch.stats import SimStats

_DIV_OPS = ("divq", "remq")


def simulate(trace: Iterable, config: MachineConfig) -> SimStats:
    """Run the timing model over a trace; returns :class:`SimStats`."""
    stats = SimStats(config_name=config.name)
    predictor = make_predictor(config.branch_predictor)
    dl1, l2 = build_hierarchy(config.dl1, config.l2, config.memory_latency)

    svf_conf = config.svf
    mode = svf_conf.mode
    svf: Optional[StackValueFile] = None
    stack_cache: Optional[StackCache] = None
    if mode == "svf":
        svf = StackValueFile(
            capacity_bytes=svf_conf.capacity_bytes,
            granularity=svf_conf.granularity,
        )
        # Writebacks land in the DL1 (write-back path), so data the SVF
        # spills can be re-read at L1 latency.
        svf.writeback_sink = lambda addr: dl1.access(addr, is_write=True)
    elif mode == "stack_cache":
        stack_cache = StackCache(capacity_bytes=svf_conf.capacity_bytes)

    fetch_pool = CyclePool("fetch", config.decode_width)
    dispatch_pool = CyclePool("dispatch", config.decode_width)
    issue_pool = CyclePool("issue", config.issue_width)
    commit_pool = CyclePool("commit", config.commit_width)
    alu_pool = CyclePool("alu", config.int_alus)
    mult_pool = CyclePool("mult", config.int_mults)
    dl1_ports = CyclePool("dl1_ports", config.dl1_ports)
    stack_ports = (
        CyclePool("stack_ports", svf_conf.ports)
        if mode in ("svf", "stack_cache")
        else None
    )
    # Banked SVF: one single-ported pool per bank, selected by the
    # low-order word-address bits (conclusion of the paper: banking is
    # the cheap alternative to true multiporting).
    svf_banks = (
        [CyclePool(f"svf_bank{i}", 1) for i in range(svf_conf.banks)]
        if mode == "svf" and svf_conf.banks > 0
        else None
    )

    reg_ready = [0] * NUM_REGISTERS
    entry_ready = {}  # SVF quad-word -> cycle its renamed value is ready
    last_store = {}  # quad-word -> (index, complete) for LSQ forwarding
    pending_gpr_store = {}  # quad-word -> (index, complete) for squashes

    ifq_ring = deque(maxlen=config.ifq_size)
    ruu_ring = deque(maxlen=config.ruu_size)
    lsq_ring = deque(maxlen=config.lsq_size)

    redirect_at = 0
    decode_block = 0
    prev_dispatch = 0
    last_commit = 0
    sp_seen = False
    # Adaptive disable (Section 3.3): watch the squash rate and shut
    # the SVF off for a cooling period when it misbehaves locally.
    adaptive = svf_conf.adaptive and mode == "svf"
    svf_disabled_until = -1
    window_end = svf_conf.adaptive_window
    window_squashes = 0
    disables = 0
    forward_latency = config.store_forward_latency
    frontend_depth = config.frontend_depth
    dl1_latency = config.dl1.latency

    switch_period = config.context_switch_period
    switch_bytes = 0
    switches = 0

    for index, record in enumerate(trace):
        stats.instructions += 1

        # ------------------------------------------- context switches
        if switch_period and index and index % switch_period == 0:
            switches += 1
            redirect_at = max(
                redirect_at, last_commit + config.context_switch_overhead
            )
            if svf is not None:
                switch_bytes += svf.context_switch()
                entry_ready.clear()
                pending_gpr_store.clear()
            if stack_cache is not None:
                switch_bytes += stack_cache.context_switch()
            last_store.clear()

        # ------------------------------------------------------ fetch
        fetch_floor = redirect_at
        if len(ifq_ring) == config.ifq_size:
            fetch_floor = max(fetch_floor, ifq_ring[0])
        fetch_cycle = fetch_pool.acquire(fetch_floor)

        # ---------------------------------------------------- dispatch
        dispatch_floor = max(
            fetch_cycle + frontend_depth, prev_dispatch, decode_block
        )
        if len(ruu_ring) == config.ruu_size:
            dispatch_floor = max(dispatch_floor, ruu_ring[0])
        if record.is_mem and len(lsq_ring) == config.lsq_size:
            dispatch_floor = max(dispatch_floor, lsq_ring[0])
        dispatch_cycle = dispatch_pool.acquire(dispatch_floor)
        prev_dispatch = dispatch_cycle
        ifq_ring.append(dispatch_cycle)

        # SVF front-end bookkeeping: the speculative $sp copy follows
        # immediate adjustments for free; any other $sp write stalls
        # decode until it resolves (Section 3.1).
        if svf is not None and not sp_seen:
            svf.update_sp(record.sp_value)
            sp_seen = True

        # ----------------------------------------------- routing
        if adaptive and index >= window_end:
            if window_squashes >= svf_conf.adaptive_threshold:
                svf_disabled_until = index + svf_conf.adaptive_off_period
                disables += 1
                svf.context_switch()  # flush dirty state, go cold
                pending_gpr_store.clear()
            window_squashes = 0
            window_end = index + svf_conf.adaptive_window
        svf_active = not adaptive or index >= svf_disabled_until

        route = "dl1"
        qw = 0
        if record.is_mem:
            qw = record.addr & ~7
            on_stack = is_stack_address(record.addr)
            if mode == "ideal" and on_stack:
                route = "fast"
            elif mode == "svf" and on_stack and svf_active:
                if svf.covers(record.addr):
                    route = "fast" if record.base_reg == SP else "reroute"
                else:
                    stats.svf_out_of_range += 1
            elif mode == "stack_cache" and on_stack:
                route = "sc"

        # ------------------------------------------------ readiness
        ready = dispatch_cycle + 1
        drop_base = record.is_mem and (
            (route == "fast" and svf_conf.spec_sp)
            or (config.no_addr_calc and is_stack_address(record.addr))
        )
        if record.is_mem and config.agu_depth and not drop_base:
            # Deep pipelines place address generation several stages
            # past dispatch; morphed references resolved in decode
            # skip those stages entirely (Section 3.1).
            ready += config.agu_depth
        for src in record.srcs:
            if drop_base and src == record.base_reg and (
                not record.is_store or src != record.dst
            ):
                continue
            if reg_ready[src] > ready:
                ready = reg_ready[src]

        # ------------------------------------------- issue + latency
        if record.is_mem:
            if route in ("fast", "reroute"):
                if svf_banks is not None:
                    port_pool = svf_banks[(qw >> 3) % len(svf_banks)]
                else:
                    port_pool = stack_ports
            elif route == "sc":
                port_pool = stack_ports
            else:
                port_pool = dl1_ports
            pools = (
                [issue_pool, port_pool]
                if (port_pool is not None and route != "fast")
                or (route == "fast" and mode == "svf")
                else [issue_pool]
            )
            issue_cycle = acquire_all(pools, ready)
            complete = _memory_complete(
                record,
                index,
                qw,
                route,
                issue_cycle,
                stats,
                config,
                dl1,
                l2,
                svf,
                stack_cache,
                entry_ready,
                last_store,
                pending_gpr_store,
                dl1_latency,
                forward_latency,
            )
            if route == "fast" and record.is_load:
                # Squash check: a pending gpr-store to the same word
                # that has not completed by our issue time means this
                # morphed load read a stale value (Section 3.2).
                pending = pending_gpr_store.get(qw)
                if (
                    pending is not None
                    and pending[0] < index
                    and pending[1] > issue_cycle
                ):
                    if svf_conf.no_squash:
                        complete = max(complete, pending[1] + 1)
                    else:
                        stats.svf_squashes += 1
                        window_squashes += 1
                        redirect_at = max(
                            redirect_at,
                            pending[1] + svf_conf.squash_penalty,
                        )
                        complete = max(
                            complete, pending[1] + svf_conf.fast_latency
                        )
            lsq_placeholder = True
        else:
            fu_pool = (
                mult_pool
                if record.op_class is OpClass.IMULT
                else alu_pool
            )
            issue_cycle = acquire_all([issue_pool, fu_pool], ready)
            if record.op_class is OpClass.IMULT:
                latency = 20 if record.op in _DIV_OPS else 3
            else:
                latency = 1
            complete = issue_cycle + latency
            lsq_placeholder = False

        # --------------------------------------------------- branches
        if record.is_branch:
            stats.branches += 1
            correct = predictor.predict(record)
            if not correct:
                stats.mispredictions += 1
                redirect_at = max(
                    redirect_at, complete + config.mispredict_redirect
                )

        # $sp interlock: unexpected (non-immediate) updates stall
        # decode of everything younger until the new $sp resolves.
        if record.sp_update:
            if svf is not None:
                svf.update_sp(record.sp_value)
            if (
                mode in ("svf", "ideal")
                and record.op == "lda"
                and record.sp_update_immediate != 0
            ):
                pass  # speculative $sp copy tracks immediates for free
            elif mode in ("svf", "ideal"):
                decode_block = max(decode_block, complete)

        # ----------------------------------------------------- commit
        commit_cycle = commit_pool.acquire(max(complete + 1, last_commit))
        last_commit = commit_cycle
        ruu_ring.append(commit_cycle)
        if lsq_placeholder:
            lsq_ring.append(commit_cycle)

        # ---------------------------------------------------- results
        dst = record.dst
        if dst is not None:
            reg_ready[dst] = complete

    stats.cycles = last_commit
    stats.dl1_accesses = dl1.hits + dl1.misses
    stats.dl1_hits = dl1.hits
    stats.dl1_misses = dl1.misses
    stats.l2_misses = l2.misses
    if stack_cache is not None:
        stats.stack_cache_hits = stack_cache.hits
        stats.stack_cache_misses = stack_cache.misses
    if svf is not None:
        stats.svf_fills = svf.fills
    if adaptive:
        stats.extras["svf_disables"] = disables
    if switch_period:
        stats.extras["context_switches"] = switches
        stats.extras["switch_writeback_bytes"] = switch_bytes
    return stats


def _memory_complete(
    record,
    index,
    qw,
    route,
    issue_cycle,
    stats,
    config,
    dl1,
    l2,
    svf,
    stack_cache,
    entry_ready,
    last_store,
    pending_gpr_store,
    dl1_latency,
    forward_latency,
):
    """Latency/state handling for one memory reference."""
    svf_conf = config.svf
    if record.is_load:
        stats.loads += 1
    else:
        stats.stores += 1

    if route == "fast":
        fast_latency = svf_conf.fast_latency
        if svf is not None:
            outcome = svf.access(record.addr, record.size, record.is_store)
            if outcome.filled:
                # A demand fill reads the word from the L1: the data
                # arrives at L1 (or below) latency plus one cycle of
                # SVF insertion.
                fast_latency = dl1.access(record.addr) + 1
        if record.is_store:
            stats.svf_fast_stores += 1
            complete = issue_cycle + svf_conf.fast_latency
            entry_ready[qw] = complete
        else:
            stats.svf_fast_loads += 1
            complete = max(
                issue_cycle + fast_latency,
                entry_ready.get(qw, 0) + 1,
            )
        return complete

    if route == "reroute":
        stats.svf_rerouted += 1
        outcome = svf.access(record.addr, record.size, record.is_store)
        access_latency = svf_conf.reroute_latency
        if outcome.filled:
            access_latency = dl1.access(record.addr) + 1
        if record.is_store:
            # Stores complete into the LSQ as on the DL1 path; the
            # reroute penalty applies to loads, which must poll the
            # SVF after their address resolves.
            complete = issue_cycle + 1
            entry_ready[qw] = complete
            pending_gpr_store[qw] = (index, complete)
        else:
            complete = (
                max(issue_cycle, entry_ready.get(qw, 0)) + access_latency
            )
        return complete

    if route == "sc":
        outcome = stack_cache.access(record.addr, record.size, record.is_store)
        if outcome.hit:
            access_latency = dl1_latency
        else:
            access_latency = l2.access(record.addr, is_write=record.is_store)
        return _lsq_complete(
            record,
            index,
            qw,
            issue_cycle,
            access_latency,
            stats,
            config,
            last_store,
            forward_latency,
        )

    # Default DL1 path.
    if record.is_store:
        access_latency = 1
        dl1.access(record.addr, is_write=True)
    else:
        forwarded = last_store.get(qw)
        if forwarded is not None and forwarded[1] > issue_cycle:
            stats.store_forwards += 1
            return max(issue_cycle, forwarded[1]) + forward_latency
        access_latency = dl1.access(record.addr)
    return _lsq_complete(
        record,
        index,
        qw,
        issue_cycle,
        access_latency,
        stats,
        config,
        last_store,
        forward_latency,
    )


def _lsq_complete(
    record,
    index,
    qw,
    issue_cycle,
    access_latency,
    stats,
    config,
    last_store,
    forward_latency,
):
    """Store-forwarding-aware completion for LSQ-mediated references."""
    if record.is_store:
        complete = issue_cycle + 1
        last_store[qw] = (index, complete)
        return complete
    forwarded = last_store.get(qw)
    if forwarded is not None and forwarded[1] > issue_cycle:
        stats.store_forwards += 1
        return max(issue_cycle, forwarded[1]) + forward_latency
    return issue_cycle + access_latency
