"""Instruction set definition for the Alpha-like ISA.

The set is deliberately modeled on the subset of the Alpha AXP
instruction set that SPECint-style integer code exercises:

* quad-word (64-bit) and long-word (32-bit) loads and stores with
  ``±IMM(base)`` addressing — the only addressing mode, as on Alpha;
* ``lda`` (load address), which the Alpha compiler uses for stack
  pointer adjustments (``lda $sp, -N($sp)``) — the SVF watches exactly
  this instruction to track top-of-stack changes;
* three-operand integer ALU operations, with either a register or an
  immediate second operand;
* compare-and-branch-against-zero conditional branches, unconditional
  branches, and the call/return pair ``bsr``/``ret`` plus their
  indirect forms ``jsr``/``jmp``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional, Tuple

from repro.isa.registers import SP, ZERO, register_name


class OpClass(Enum):
    """Coarse functional classification used by the timing model."""

    IALU = auto()
    IMULT = auto()
    LOAD = auto()
    STORE = auto()
    BRANCH = auto()
    CALL = auto()
    RETURN = auto()
    SYSTEM = auto()


@dataclass(frozen=True)
class OpSpec:
    """Static properties of one opcode."""

    name: str
    op_class: OpClass
    #: memory access size in bytes (0 for non-memory ops)
    mem_size: int = 0
    #: True if the second ALU operand may be an immediate
    allows_imm: bool = True


_SPECS = [
    # Memory operations.
    OpSpec("ldq", OpClass.LOAD, mem_size=8),
    OpSpec("ldl", OpClass.LOAD, mem_size=4),
    OpSpec("stq", OpClass.STORE, mem_size=8),
    OpSpec("stl", OpClass.STORE, mem_size=4),
    # Load-address: rd = rb + imm (an ALU op that uses memory syntax).
    OpSpec("lda", OpClass.IALU),
    # Integer ALU.
    OpSpec("addq", OpClass.IALU),
    OpSpec("subq", OpClass.IALU),
    OpSpec("mulq", OpClass.IMULT),
    OpSpec("divq", OpClass.IMULT),
    OpSpec("remq", OpClass.IMULT),
    OpSpec("and", OpClass.IALU),
    OpSpec("or", OpClass.IALU),
    OpSpec("xor", OpClass.IALU),
    OpSpec("bic", OpClass.IALU),
    OpSpec("sll", OpClass.IALU),
    OpSpec("srl", OpClass.IALU),
    OpSpec("sra", OpClass.IALU),
    OpSpec("cmpeq", OpClass.IALU),
    OpSpec("cmplt", OpClass.IALU),
    OpSpec("cmple", OpClass.IALU),
    OpSpec("cmpult", OpClass.IALU),
    # Control transfer.  Conditional branches test one register vs zero.
    OpSpec("beq", OpClass.BRANCH, allows_imm=False),
    OpSpec("bne", OpClass.BRANCH, allows_imm=False),
    OpSpec("blt", OpClass.BRANCH, allows_imm=False),
    OpSpec("ble", OpClass.BRANCH, allows_imm=False),
    OpSpec("bgt", OpClass.BRANCH, allows_imm=False),
    OpSpec("bge", OpClass.BRANCH, allows_imm=False),
    OpSpec("br", OpClass.BRANCH, allows_imm=False),
    OpSpec("bsr", OpClass.CALL, allows_imm=False),
    OpSpec("jsr", OpClass.CALL, allows_imm=False),
    OpSpec("ret", OpClass.RETURN, allows_imm=False),
    OpSpec("jmp", OpClass.BRANCH, allows_imm=False),
    # System.
    OpSpec("halt", OpClass.SYSTEM, allows_imm=False),
    OpSpec("print", OpClass.SYSTEM, allows_imm=False),
    OpSpec("nop", OpClass.SYSTEM, allows_imm=False),
]

OPCODES = {spec.name: spec for spec in _SPECS}

CONDITIONAL_BRANCHES = {"beq", "bne", "blt", "ble", "bgt", "bge"}


class InstructionError(ValueError):
    """Raised for malformed instructions."""


@dataclass
class Instruction:
    """One static instruction.

    Operand roles by format:

    * memory ops (``ldq rd, imm(rb)`` / ``stq rd, imm(rb)``): ``rd`` is
      the data register (destination for loads, source for stores),
      ``rb`` is the base register, ``imm`` the displacement;
    * ``lda rd, imm(rb)``: ``rd = rb + imm``;
    * ALU ops (``addq ra, rb, rd`` or ``addq ra, imm, rd``);
    * conditional branches (``beq ra, label``): test ``ra`` vs zero;
    * ``br label`` / ``bsr label``; ``jsr rb`` / ``jmp rb``; ``ret``.
    """

    op: str
    rd: Optional[int] = None
    ra: Optional[int] = None
    rb: Optional[int] = None
    imm: Optional[int] = None
    target: Optional[str] = None
    #: resolved branch-target instruction index (filled by the assembler)
    target_index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in OPCODES:
            raise InstructionError(f"unknown opcode {self.op!r}")

    @property
    def spec(self) -> OpSpec:
        return OPCODES[self.op]

    @property
    def op_class(self) -> OpClass:
        return self.spec.op_class

    @property
    def is_load(self) -> bool:
        return self.spec.op_class is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.spec.op_class is OpClass.STORE

    @property
    def is_mem(self) -> bool:
        return self.spec.mem_size > 0

    @property
    def mem_size(self) -> int:
        return self.spec.mem_size

    @property
    def is_branch(self) -> bool:
        return self.spec.op_class in (
            OpClass.BRANCH,
            OpClass.CALL,
            OpClass.RETURN,
        )

    @property
    def is_conditional(self) -> bool:
        return self.op in CONDITIONAL_BRANCHES

    @property
    def is_call(self) -> bool:
        return self.spec.op_class is OpClass.CALL

    @property
    def is_return(self) -> bool:
        return self.spec.op_class is OpClass.RETURN

    @property
    def is_sp_adjust(self) -> bool:
        """True for ``lda $sp, imm($sp)`` — the paper's TOS update."""
        return self.op == "lda" and self.rd == SP and self.rb == SP

    @property
    def writes_sp(self) -> bool:
        """True when this instruction writes the stack pointer."""
        return self.destination_register() == SP

    def source_registers(self) -> Tuple[int, ...]:
        """Registers read by this instruction (excluding $zero)."""
        sources = []
        if self.is_load:
            sources.append(self.rb)
        elif self.is_store:
            sources.append(self.rd)
            sources.append(self.rb)
        elif self.op == "lda":
            sources.append(self.rb)
        elif self.op_class in (OpClass.IALU, OpClass.IMULT):
            sources.append(self.ra)
            if self.rb is not None:
                sources.append(self.rb)
        elif self.is_conditional:
            sources.append(self.ra)
        elif self.op in ("jsr", "jmp"):
            sources.append(self.rb)
        elif self.op == "ret":
            sources.append(self.rb)
        elif self.op == "print":
            sources.append(self.ra)
        return tuple(r for r in sources if r is not None and r != ZERO)

    def destination_register(self) -> Optional[int]:
        """Register written by this instruction, or None."""
        if self.is_load or self.op == "lda":
            dest = self.rd
        elif self.op_class in (OpClass.IALU, OpClass.IMULT):
            dest = self.rd
        elif self.op in ("bsr", "jsr"):
            dest = self.rd  # return-address register
        else:
            dest = None
        if dest == ZERO:
            return None
        return dest

    def render(self) -> str:
        """Render back to assembler syntax."""
        name = self.op
        if self.is_mem or name == "lda":
            return (
                f"{name} {register_name(self.rd)}, "
                f"{self.imm}({register_name(self.rb)})"
            )
        if self.op_class in (OpClass.IALU, OpClass.IMULT):
            second = (
                register_name(self.rb) if self.rb is not None else str(self.imm)
            )
            return (
                f"{name} {register_name(self.ra)}, {second}, "
                f"{register_name(self.rd)}"
            )
        if self.is_conditional:
            return f"{name} {register_name(self.ra)}, {self.target}"
        if name in ("br", "bsr"):
            return f"{name} {self.target}"
        if name in ("jsr", "jmp"):
            return f"{name} {register_name(self.rb)}"
        if name == "print":
            return f"{name} {register_name(self.ra)}"
        return name

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


@dataclass
class Program:
    """A fully assembled program.

    ``instructions`` is the text segment; instruction *i* lives at
    address ``text_base + 4 * i``.  ``data`` is the initial contents of
    the ``.data`` segment and ``symbols`` maps global names to absolute
    data addresses.
    """

    instructions: list = field(default_factory=list)
    labels: dict = field(default_factory=dict)
    data: bytearray = field(default_factory=bytearray)
    symbols: dict = field(default_factory=dict)
    entry: str = "main"

    def label_index(self, label: str) -> int:
        if label not in self.labels:
            raise KeyError(f"undefined label {label!r}")
        return self.labels[label]

    def __len__(self) -> int:
        return len(self.instructions)
