"""Functional memory-traffic simulation (paper Tables 3 and 4).

Drives the SVF and the decoupled stack cache over the same dynamic
instruction stream, without timing, and reports the quad-word traffic
each scheme generates.  This is exactly the paper's Table 3 experiment:
the stack cache moves whole lines on compulsory/capacity/conflict
misses and dirty evictions, while the SVF only moves words that are
demand-read or live-and-dirty.

With ``context_switch_period`` set, both structures are additionally
flushed every N instructions and the average writeback per switch is
recorded (paper Table 4; the paper uses N = 400 000).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, List, Optional

from repro import profiling
from repro.core.stack_cache import StackCache
from repro.core.svf import StackValueFile
from repro.trace.columnar import ColumnarTrace
from repro.trace.regions import STACK_REGION_FLOOR, is_stack_address


@dataclass
class TrafficResult:
    """Quad-word traffic of both schemes over one trace."""

    capacity_bytes: int
    instructions: int = 0
    stack_references: int = 0
    svf_qw_in: int = 0
    svf_qw_out: int = 0
    stack_cache_qw_in: int = 0
    stack_cache_qw_out: int = 0
    # Context-switch accounting (Table 4).
    context_switches: int = 0
    svf_switch_bytes: int = 0
    stack_cache_switch_bytes: int = 0
    # Valid/dirty-bit wins (checked against repro.analysis.predict).
    svf_fills_avoided: int = 0
    svf_killed_words: int = 0
    svf_killed_dirty_words: int = 0

    @property
    def svf_switch_bytes_avg(self) -> float:
        """Average bytes the SVF writes back per context switch."""
        if self.context_switches == 0:
            return 0.0
        return self.svf_switch_bytes / self.context_switches

    @property
    def stack_cache_switch_bytes_avg(self) -> float:
        """Average bytes the stack cache writes back per switch."""
        if self.context_switches == 0:
            return 0.0
        return self.stack_cache_switch_bytes / self.context_switches


class TrafficSimulator:
    """Streaming traffic model; implements the trace-sink protocol."""

    def __init__(
        self,
        capacity_bytes: int = 8192,
        line_size: int = 32,
        context_switch_period: Optional[int] = None,
    ):
        self.svf = StackValueFile(capacity_bytes=capacity_bytes)
        self.stack_cache = StackCache(
            capacity_bytes=capacity_bytes, line_size=line_size
        )
        self.capacity_bytes = capacity_bytes
        self.context_switch_period = context_switch_period
        self._sp_seen = False
        self._instructions = 0
        self._stack_references = 0
        self._switches = 0
        self._svf_switch_bytes = 0
        self._stack_cache_switch_bytes = 0

    def append(self, record) -> None:
        if not self._sp_seen:
            self.svf.update_sp(record.sp_value)
            self._sp_seen = True
        self._instructions += 1
        if record.is_load or record.is_store:
            if is_stack_address(record.addr):
                self._stack_references += 1
                self.svf.access(record.addr, record.size, record.is_store)
                self.stack_cache.access(
                    record.addr, record.size, record.is_store
                )
        if record.sp_update:
            self.svf.update_sp(record.sp_value)
        period = self.context_switch_period
        if period and self._instructions % period == 0:
            self._switches += 1
            self._svf_switch_bytes += self.svf.context_switch()
            self._stack_cache_switch_bytes += (
                self.stack_cache.context_switch()
            )

    def consume_columns(
        self, trace: ColumnarTrace, lo: int = 0, hi: Optional[int] = None
    ) -> None:
        """Drain ``trace[lo:hi)`` (same semantics as ``append``).

        Reads the flag/address columns by index instead of
        materializing records; the model-call sequence is identical to
        feeding the records one by one.  When the numpy backend is on,
        the candidate indices (stack references, ``$sp`` updates and
        context-switch points) are found with one vectorized scan and
        only those instructions are visited.
        """
        hi = len(trace) if hi is None else hi
        col_flags = trace.flags
        col_addr = trace.addr
        col_size = trace.size
        col_sp = trace.sp
        svf = self.svf
        svf_access = svf.access
        sc_access = self.stack_cache.access
        update_sp = svf.update_sp
        stack_floor = STACK_REGION_FLOOR
        period = self.context_switch_period
        instructions = self._instructions
        stack_references = self._stack_references
        if not self._sp_seen and hi > lo:
            update_sp(col_sp[lo])
            self._sp_seen = True
        arrays = trace.as_arrays()
        if arrays is not None:
            import numpy as np

            flags_view = arrays.flags[lo:hi]
            addr_view = arrays.addr[lo:hi]
            interesting = (
                ((flags_view & 3) != 0) & (addr_view >= stack_floor)
            ) | ((flags_view & 32) != 0)
            candidates = np.nonzero(interesting)[0]
            if period:
                first_switch = period - (instructions % period) - 1
                switch_points = np.arange(first_switch, hi - lo, period)
                candidates = np.union1d(candidates, switch_points)
            for relative in candidates.tolist():
                index = relative + lo
                flags = col_flags[index]
                if flags & 3:
                    addr = col_addr[index]
                    if addr >= stack_floor:
                        stack_references += 1
                        is_store = bool(flags & 2)
                        size = col_size[index]
                        svf_access(addr, size, is_store)
                        sc_access(addr, size, is_store)
                if flags & 32:
                    update_sp(col_sp[index])
                if period and (instructions + relative + 1) % period == 0:
                    self._switches += 1
                    self._svf_switch_bytes += svf.context_switch()
                    self._stack_cache_switch_bytes += (
                        self.stack_cache.context_switch()
                    )
            self._instructions = instructions + (hi - lo)
            self._stack_references = stack_references
            return
        for index in range(lo, hi):
            instructions += 1
            flags = col_flags[index]
            if flags & 3:  # load or store
                addr = col_addr[index]
                if addr >= stack_floor:
                    stack_references += 1
                    is_store = bool(flags & 2)
                    size = col_size[index]
                    svf_access(addr, size, is_store)
                    sc_access(addr, size, is_store)
            if flags & 32:  # sp_update
                update_sp(col_sp[index])
            if period and instructions % period == 0:
                self._switches += 1
                self._svf_switch_bytes += svf.context_switch()
                self._stack_cache_switch_bytes += (
                    self.stack_cache.context_switch()
                )
        self._instructions = instructions
        self._stack_references = stack_references

    def result(self) -> TrafficResult:
        return TrafficResult(
            capacity_bytes=self.capacity_bytes,
            instructions=self._instructions,
            stack_references=self._stack_references,
            svf_qw_in=self.svf.qw_in,
            svf_qw_out=self.svf.qw_out,
            stack_cache_qw_in=self.stack_cache.qw_in,
            stack_cache_qw_out=self.stack_cache.qw_out,
            context_switches=self._switches,
            svf_switch_bytes=self._svf_switch_bytes,
            stack_cache_switch_bytes=self._stack_cache_switch_bytes,
            svf_fills_avoided=self.svf.fills_avoided,
            svf_killed_words=self.svf.killed_words,
            svf_killed_dirty_words=self.svf.killed_dirty_words,
        )


def simulate_traffic(
    trace: Iterable,
    capacity_bytes: int = 8192,
    line_size: int = 32,
    context_switch_period: Optional[int] = None,
) -> TrafficResult:
    """Run the Table 3/4 traffic comparison over a finished trace."""
    profiler = profiling.active()
    profile_started = perf_counter() if profiler is not None else 0.0
    simulator = TrafficSimulator(
        capacity_bytes=capacity_bytes,
        line_size=line_size,
        context_switch_period=context_switch_period,
    )
    # Pack plain record sequences into columns so one batched consumer
    # covers every caller (the pack cost is paid once per trace and the
    # column walk more than recovers it).
    simulator.consume_columns(ColumnarTrace.from_records(trace))
    result = simulator.result()
    if profiler is not None:
        profiler.note(
            "traffic", perf_counter() - profile_started, result.instructions
        )
    return result


def traffic_size_sweep(
    trace: List,
    sizes: Iterable[int] = (2048, 4096, 8192),
    line_size: int = 32,
) -> List[TrafficResult]:
    """Table 3: traffic at several SVF / stack-cache sizes."""
    return [
        simulate_traffic(trace, capacity_bytes=size, line_size=line_size)
        for size in sizes
    ]
