"""SPECint2000-inspired workload suite (paper Table 1)."""

from repro.workloads import (  # noqa: F401  (registry imports these)
    bzip2,
    crafty,
    eon,
    gap,
    gcc,
    gzip,
    mcf,
    parser,
    perlbmk,
    twolf,
    vortex,
    vpr,
    x86mix,
)
from repro.workloads.registry import (
    ALL_BENCHMARKS,
    BENCHMARK_ORDER,
    TABLE1_INPUTS,
    Workload,
    all_inputs,
    all_workloads,
    benchmark_names,
    cached_trace,
    clear_trace_cache,
    input_names,
    workload,
)

__all__ = [
    "ALL_BENCHMARKS",
    "BENCHMARK_ORDER",
    "TABLE1_INPUTS",
    "Workload",
    "all_inputs",
    "all_workloads",
    "benchmark_names",
    "cached_trace",
    "clear_trace_cache",
    "input_names",
    "workload",
]
