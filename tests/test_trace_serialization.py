"""Tests for binary trace serialization."""

import pytest

from repro.trace.serialization import (
    TraceFormatError,
    TraceWriter,
    load_trace,
    save_trace,
)
from repro.uarch.config import table2_config
from repro.uarch.pipeline import simulate


FIELDS = (
    "pc", "op", "srcs", "dst", "is_load", "is_store", "addr", "size",
    "base_reg", "displacement", "is_branch", "is_conditional", "taken",
    "next_pc", "sp_value", "sp_update", "sp_update_immediate",
)


class TestRoundTrip:
    def test_records_identical(self, gzip_trace, tmp_path):
        path = str(tmp_path / "gzip.svft")
        count = save_trace(gzip_trace, path)
        assert count == len(gzip_trace)
        restored = load_trace(path)
        assert len(restored) == len(gzip_trace)
        for original, copy in zip(gzip_trace, restored):
            for field in FIELDS:
                assert getattr(copy, field) == getattr(original, field), (
                    field
                )
            assert copy.op_class is original.op_class

    def test_timing_simulation_identical(self, crafty_trace, tmp_path):
        """A reloaded trace must time exactly like the original."""
        path = str(tmp_path / "crafty.svft")
        save_trace(crafty_trace, path)
        restored = load_trace(path)
        config = table2_config(16).with_svf(mode="svf", ports=2)
        original_stats = simulate(crafty_trace, config)
        restored_stats = simulate(restored, config)
        assert restored_stats.cycles == original_stats.cycles
        assert restored_stats.svf_fast_loads == original_stats.svf_fast_loads

    def test_streaming_writer_matches_batch(self, gzip_trace, tmp_path):
        streamed = tmp_path / "streamed.svft"
        with open(streamed, "wb") as stream:
            with TraceWriter(stream) as writer:
                for record in gzip_trace[:500]:
                    writer.append(record)
                assert writer.count == 500
        batch = tmp_path / "batch.svft"
        save_trace(gzip_trace[:500], str(batch))
        assert streamed.read_bytes() == batch.read_bytes()

    def test_writer_as_machine_sink(self, tmp_path):
        from repro.workloads import workload

        path = tmp_path / "direct.svft"
        with open(path, "wb") as stream:
            writer = TraceWriter(stream)
            workload("gzip").run(max_instructions=2_000, trace_sink=writer)
            assert writer.close() == 2_000
        restored = load_trace(str(path))
        assert len(restored) == 2_000


class TestErrors:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.svft"
        path.write_bytes(b"NOTATRACE")
        with pytest.raises(TraceFormatError, match="header"):
            load_trace(str(path))

    def test_truncated_file_rejected(self, gzip_trace, tmp_path):
        path = tmp_path / "cut.svft"
        save_trace(gzip_trace[:10], str(path))
        blob = path.read_bytes()
        path.write_bytes(blob[:-7])
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace(str(path))

    def test_empty_trace_round_trips(self, tmp_path):
        path = str(tmp_path / "empty.svft")
        assert save_trace([], path) == 0
        assert load_trace(path) == []
