"""Shared MiniC snippets and helpers for the workload programs.

Every workload embeds a deterministic LCG so its "input data" is
generated at run time inside the program itself.  That reproduces the
shape of real benchmark runs — an initialization phase followed by a
stable compute phase — which is exactly what the paper's Figure 2
stack-depth curves show.
"""

from __future__ import annotations

#: MiniC pseudo-random number generator (POSIX LCG constants).  Seeded
#: per input set so different inputs produce different data, like the
#: SPEC reference/training inputs do.
RAND_SNIPPET = """
int __rng_state = {seed};

int rand31() {{
    __rng_state = (__rng_state * 1103515245 + 12345) & 2147483647;
    return __rng_state;
}}
"""


def rand_source(seed: int) -> str:
    """Return the LCG helper with the given seed baked in."""
    return RAND_SNIPPET.format(seed=seed)
