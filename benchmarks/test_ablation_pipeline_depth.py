"""Ablation — pipeline depth (the paper's closing claim).

``suites/pipeline_depth.yaml`` sweeps the machine-level ``agu_depth``
axis, which moves the svf-less baseline and the SVF variant together
(the sweep engine's baseline rule); this file asserts the closing
claim over the run-table rows: deeper pipelines increase the SVF's
value.
"""

DEPTHS = (0, 4, 8)


def test_pipeline_depth_ablation(
    benchmark, emit, timing_window, sweep_suite
):
    result = benchmark.pedantic(
        lambda: sweep_suite("pipeline_depth", timing_window),
        rounds=1, iterations=1,
    )
    emit("ablation_pipeline_depth", result.render_summary())
    assert result.ok, [row.error for row in result.rows if not row.ok]

    by_name = {}
    for row in result.rows:
        by_name.setdefault(row.workload, {})[
            row.level("agu_depth")
        ] = row.metric("speedup")

    shallow = sum(s[DEPTHS[0]] for s in by_name.values()) / len(by_name)
    deep = sum(s[DEPTHS[-1]] for s in by_name.values()) / len(by_name)
    assert deep > shallow, (
        "deeper pipelines should increase the SVF's value"
    )
    for name, speedups in by_name.items():
        assert speedups[DEPTHS[-1]] >= speedups[DEPTHS[0]] - 0.02, name
