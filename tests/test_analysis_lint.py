"""Lint driver, golden suite-wide results, mutation catch, CLI."""

import json

import pytest

from repro.analysis import (
    Severity,
    lint_all,
    lint_program,
    lint_workload,
    render_reports,
    reports_to_json,
)
from repro.cli import main
from repro.isa import SP, Instruction
from repro.workloads import ALL_BENCHMARKS, workload

#: Diagnostic passes the generated code is *expected* to trigger at
#: sub-error severity.  These are waivers, not defects: dead frame
#: stores and address escapes are exactly the stack behaviour the
#: paper's SVF machinery measures and handles (dirty-bit writeback
#: elision, $gpr re-routing) — see DESIGN.md.
EXPECTED_INFO_PASSES = {"dead-store", "escape", "cfg"}


@pytest.fixture(scope="module")
def suite_reports():
    return lint_all()


@pytest.fixture(scope="module")
def suite_reports_o1():
    from repro.lang.codegen import CodegenOptions

    return lint_all(options=CodegenOptions(opt_level=1))


@pytest.mark.lint
class TestGoldenSuite:
    def test_covers_all_13_registry_workloads(self, suite_reports):
        assert len(suite_reports) == len(ALL_BENCHMARKS) == 13

    def test_every_workload_error_clean(self, suite_reports):
        failed = {
            report.name: [d.render() for d in report.errors]
            for report in suite_reports
            if report.errors
        }
        assert not failed, f"codegen broke stack discipline: {failed}"

    def test_every_workload_warning_clean(self, suite_reports):
        # Stronger than the CI gate: today's compiler output has no
        # first-read or escape-to-memory warnings either.  If codegen
        # legitimately changes, downgrade this to a waiver list.
        noisy = {
            report.name: [d.render() for d in report.warnings]
            for report in suite_reports
            if report.warnings
        }
        assert not noisy, f"unexpected warnings: {noisy}"

    def test_info_diagnostics_only_from_expected_passes(self, suite_reports):
        unexpected = [
            (report.name, d.render())
            for report in suite_reports
            for d in report.infos
            if d.pass_name not in EXPECTED_INFO_PASSES
        ]
        assert not unexpected

    def test_linter_finds_real_stack_behaviour(self, suite_reports):
        # The suite is not trivially silent: the SVF-relevant
        # behaviours (elided writebacks, re-routed $gpr accesses)
        # must show up somewhere across the 13 programs.
        passes = {
            d.pass_name for report in suite_reports for d in report.infos
        }
        assert "dead-store" in passes
        assert "escape" in passes

    def test_crafty_dead_function_found(self, suite_reports):
        # crafty's MiniC source defines next_state but never calls it;
        # the call-graph pass must report the dead function instead of
        # mislabelling its body as unreachable blocks of evaluate.
        crafty = next(r for r in suite_reports if r.name == "crafty.ref")
        assert any(
            d.function == "next_state" and "never called" in d.message
            for d in crafty.infos
        )


@pytest.mark.lint
class TestGoldenSuiteOptimized:
    """The tier-1 gate also lints the optimizer's -O1 output.

    The dataflow passes rewrite frame traffic; whatever they emit must
    still satisfy every stack-discipline invariant the SVF relies on.
    """

    def test_covers_all_13_registry_workloads(self, suite_reports_o1):
        assert len(suite_reports_o1) == len(ALL_BENCHMARKS) == 13

    def test_optimized_output_error_clean(self, suite_reports_o1):
        failed = {
            report.name: [d.render() for d in report.errors]
            for report in suite_reports_o1
            if report.errors
        }
        assert not failed, f"-O1 broke stack discipline: {failed}"

    def test_optimized_output_warning_clean(self, suite_reports_o1):
        noisy = {
            report.name: [d.render() for d in report.warnings]
            for report in suite_reports_o1
            if report.warnings
        }
        assert not noisy, f"-O1 introduced warnings: {noisy}"

    def test_optimizer_removes_dead_stores(self, suite_reports, suite_reports_o1):
        # The dead stores the -O0 suite is full of are exactly what
        # dead-store elimination deletes: the -O1 suite must carry
        # strictly fewer dead-store diagnostics overall.
        def dead_stores(reports):
            return sum(
                1
                for report in reports
                for d in report.infos
                if d.pass_name == "dead-store"
            )

        assert dead_stores(suite_reports_o1) < dead_stores(suite_reports)


class TestMutationCatch:
    def _mutate_epilogue(self, program):
        """Nop out one epilogue ``lda $sp, +FRAME($sp)`` restore."""
        for index, instruction in enumerate(program.instructions):
            if instruction.is_sp_adjust and instruction.imm > 0:
                program.instructions[index] = Instruction("nop")
                return index
        raise AssertionError("no epilogue $sp restore found")

    def test_dropped_epilogue_restore_is_caught(self):
        program = workload("gzip").program()
        assert lint_program(program).ok
        self._mutate_epilogue(program)
        report = lint_program(program, name="gzip-mutated")
        assert not report.ok
        assert any(
            d.pass_name == "sp-balance" and "unbalanced $sp" in d.message
            for d in report.errors
        )

    def test_corrupted_frame_size_is_caught(self):
        program = workload("mcf").program()
        for index, instruction in enumerate(program.instructions):
            if instruction.is_sp_adjust and instruction.imm > 0:
                # Restore 16 bytes too many: $sp pops above the entry.
                program.instructions[index] = Instruction(
                    "lda", rd=SP, rb=SP, imm=instruction.imm + 16
                )
                break
        report = lint_program(program, name="mcf-mutated")
        errors = [d for d in report.errors if d.pass_name == "sp-balance"]
        assert errors

    def test_mutated_store_out_of_frame_is_caught(self):
        program = workload("vortex").program()
        for index, instruction in enumerate(program.instructions):
            if (
                instruction.is_store
                and instruction.rb == SP
                and instruction.imm is not None
            ):
                program.instructions[index] = Instruction(
                    instruction.op,
                    rd=instruction.rd,
                    rb=SP,
                    imm=instruction.imm + 100_000,
                )
                break
        report = lint_program(program, name="vortex-mutated")
        assert any(d.pass_name == "frame-bounds" for d in report.errors)


class TestLibraryAPI:
    def test_lint_workload_by_short_name(self):
        report = lint_workload("gzip")
        assert report.name == "gzip.graphic"
        assert report.ok

    def test_render_reports_footer(self, suite_reports):
        text = render_reports(suite_reports)
        assert "13 workload(s) linted" in text

    def test_json_roundtrip(self, suite_reports):
        payload = json.loads(reports_to_json(suite_reports))
        assert payload["ok"] is True
        assert len(payload["workloads"]) == 13
        sample = payload["workloads"][0]
        assert {"name", "ok", "counts", "diagnostics"} <= set(sample)

    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO


@pytest.mark.lint
class TestCLI:
    def test_lint_single_workload(self, capsys):
        assert main(["lint", "gzip"]) == 0
        out = capsys.readouterr().out
        assert "gzip.graphic" in out and "clean" in out

    def test_lint_all_smoke(self, capsys):
        # The CI gate: every registry workload, all five passes,
        # nonzero exit on any error-severity diagnostic.
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert "13 workload(s) linted: 0 error(s)" in out

    def test_json_format(self, capsys):
        assert main(["lint", "crafty", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["workloads"][0]["name"] == "crafty.ref"

    def test_max_info_truncates(self, capsys):
        assert main(["lint", "eon", "--max-info", "2"]) == 0
        out = capsys.readouterr().out
        assert "more info diagnostics" in out

    def test_requires_target(self, capsys):
        assert main(["lint"]) == 2

    def test_all_conflicts_with_workload(self, capsys):
        assert main(["lint", "gzip", "--all"]) == 2

    def test_nonzero_exit_on_errors(self, capsys, monkeypatch):
        import repro.api as api
        from repro.analysis.report import Diagnostic, LintReport

        def fake_lint(benchmark, input_name=None, options=None):
            return LintReport(
                name="broken.ref",
                diagnostics=[Diagnostic(
                    Severity.ERROR, "sp-balance", "main", 3,
                    "returns with unbalanced $sp (net offset -32)",
                )],
            )

        # cmd_lint goes through the repro.api facade.
        monkeypatch.setattr(api, "lint_workload", fake_lint)
        assert main(["lint", "broken"]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_unknown_workload_one_line_error(self, capsys):
        assert main(["lint", "doom"]) == 2
        captured = capsys.readouterr()
        assert "unknown benchmark" in captured.err
        assert captured.err.count("\n") == 1

    def test_lint_accepts_opt_level(self, capsys):
        assert main(["lint", "mcf", "-O1"]) == 0
        assert "mcf.inp: clean" in capsys.readouterr().out

    def test_json_format_is_versioned(self, capsys):
        from repro.api import SCHEMA_VERSION

        assert main(["lint", "mcf", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION
