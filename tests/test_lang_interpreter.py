"""Differential tests: reference interpreter vs the compiled path.

The AST interpreter and the full pipeline (codegen -> assembler ->
emulator) must print identical output for every program.  This is the
strongest correctness statement the toolchain makes about itself.
"""

import pytest

from repro.emulator import run_program
from repro.lang import compile_program
from repro.lang.interpreter import InterpreterError, interpret
from repro.workloads import workload


def both_outputs(source, max_instructions=3_000_000):
    machine, _ = run_program(
        compile_program(source), max_instructions=max_instructions
    )
    assert machine.halted, "compiled program did not halt"
    reference = interpret(source)
    return machine.output, reference.output


def assert_agree(source):
    compiled, interpreted = both_outputs(source)
    assert compiled == interpreted


class TestBasicAgreement:
    @pytest.mark.parametrize(
        "expression",
        [
            "1 + 2 * 3",
            "(-7) / 2",
            "(-7) % 2",
            "1 << 20 >> 3",
            "(-1) >> 1",
            "~5 & 12 | 3 ^ 9",
            "(3 < 4) + (4 <= 4) + (5 > 6) + (7 == 7) + (8 != 8)",
            "1 && 2 || 0",
            "0 && (1 / 1)",
        ],
    )
    def test_expressions(self, expression):
        assert_agree(
            f"int main() {{ print({expression}); return 0; }}"
        )

    def test_control_flow(self):
        assert_agree(
            """
            int main() {
                int total = 0;
                for (int i = 0; i < 20; i += 1) {
                    if (i % 3 == 0) { continue; }
                    if (i > 15) { break; }
                    total += i;
                }
                while (total % 7 != 0) { total += 1; }
                print(total);
                return 0;
            }
            """
        )

    def test_recursion_and_globals(self):
        assert_agree(
            """
            int calls = 0;
            int ack(int m, int n) {
                calls += 1;
                if (m == 0) { return n + 1; }
                if (n == 0) { return ack(m - 1, 1); }
                return ack(m - 1, ack(m, n - 1));
            }
            int main() {
                print(ack(2, 3));
                print(calls);
                return 0;
            }
            """
        )

    def test_arrays_and_pointers(self):
        assert_agree(
            """
            int scale(int *values, int n, int factor) {
                for (int i = 0; i < n; i += 1) {
                    values[i] = values[i] * factor;
                }
                return values[n - 1];
            }
            int main() {
                int data[6];
                for (int i = 0; i < 6; i += 1) { data[i] = i + 1; }
                print(scale(&data[0], 6, 3));
                int *p = &data[2];
                *p = 100;
                print(data[2]);
                print(p[1]);
                return 0;
            }
            """
        )

    def test_heap_allocation(self):
        assert_agree(
            """
            int main() {
                int *a = alloc(4);
                int *b = alloc(4);
                for (int i = 0; i < 4; i += 1) { a[i] = i; b[i] = i * i; }
                int total = 0;
                for (int i = 0; i < 4; i += 1) { total += a[i] + b[i]; }
                print(total);
                print(b - a);  // pointer distance is well-defined
                return 0;
            }
            """
        )

    def test_interpreter_detects_division_by_zero(self):
        with pytest.raises(InterpreterError, match="division"):
            interpret("int main() { int z = 0; print(1 / z); return 0; }")

    def test_step_limit(self):
        with pytest.raises(InterpreterError, match="step limit"):
            interpret("int main() { while (1) { } return 0; }",
                      max_steps=1_000)


class TestWorkloadAgreement:
    """Every workload, at reduced scale, on both execution paths."""

    CASES = [
        ("bzip2", dict(blocks=1, block=48)),
        ("crafty", dict(positions=1, depth=4)),
        ("eon", dict(width=3, height=2, spheres=2, bounces=1)),
        ("gap", dict(degree=10, rounds=2)),
        ("gcc", dict(units=1, depth=4, frame_buffer=8, frame_touch=4)),
        ("gzip", dict(window=96, passes=1)),
        ("mcf", dict(nodes=12, arcs=30, sources=2, max_sweeps=4)),
        ("parser", dict(sentences=2, depth=5, min_depth=3)),
        ("twolf", dict(cells=6, nets=8, steps=3)),
        ("vortex", dict(transactions=30)),
        ("perlbmk", dict(scripts=1, loop_count=5, vm_stack=48)),
        ("vpr", dict(width=5, height=5, nets=2, queue=40)),
    ]

    @pytest.mark.parametrize(
        "name,params", CASES, ids=[c[0] for c in CASES]
    )
    def test_workload_agrees(self, name, params):
        source = workload(name).source(**params)
        compiled, interpreted = both_outputs(source)
        assert compiled == interpreted, name
