#!/usr/bin/env python
"""Head-to-head: SVF vs the decoupled stack cache (paper Section 5.3).

Reproduces the paper's central comparison on a few benchmarks:

* performance at matched ports — (2+2) SVF vs (2+2) stack cache vs the
  (2+0) baseline (Figure 7);
* quad-word traffic at 2/4/8 KB (Table 3);
* writeback bytes per context switch (Table 4).

Run:  python examples/svf_vs_stackcache.py
"""

from repro.core import simulate_traffic
from repro.harness import percent, render_table
from repro.uarch import simulate, table2_config
from repro.workloads import workload

BENCHMARKS = ["186.crafty", "252.eon", "300.twolf"]
WINDOW = 50_000


def performance_rows():
    base = table2_config(16, dl1_ports=2)
    rows = []
    for name in BENCHMARKS:
        trace = workload(name).trace(max_instructions=WINDOW)
        baseline = simulate(trace, base)
        stack_cache = simulate(
            trace, base.with_svf(mode="stack_cache", ports=2)
        )
        svf = simulate(trace, base.with_svf(mode="svf", ports=2))
        no_squash = simulate(
            trace, base.with_svf(mode="svf", ports=2, no_squash=True)
        )
        rows.append(
            (
                name,
                f"{baseline.ipc:.2f}",
                percent(stack_cache.speedup_over(baseline)),
                percent(svf.speedup_over(baseline)),
                percent(no_squash.speedup_over(baseline)),
                svf.svf_squashes,
            )
        )
    return rows


def traffic_rows():
    rows = []
    for name in BENCHMARKS:
        trace = workload(name).trace(max_instructions=WINDOW)
        for size in (2048, 8192):
            result = simulate_traffic(trace, capacity_bytes=size)
            rows.append(
                (
                    f"{name} @{size // 1024}KB",
                    result.stack_cache_qw_in,
                    result.stack_cache_qw_out,
                    result.svf_qw_in,
                    result.svf_qw_out,
                )
            )
    return rows


def context_switch_rows():
    rows = []
    for name in BENCHMARKS:
        trace = workload(name).trace(max_instructions=WINDOW)
        result = simulate_traffic(
            trace, capacity_bytes=8192, context_switch_period=WINDOW // 10
        )
        rows.append(
            (
                name,
                f"{result.stack_cache_switch_bytes_avg:.0f}",
                f"{result.svf_switch_bytes_avg:.0f}",
            )
        )
    return rows


def main() -> None:
    print(render_table(
        ["Benchmark", "base IPC", "(2+2)$ cache", "(2+2) SVF",
         "(2+2) SVF no_squash", "squashes"],
        performance_rows(),
        title="Performance vs the (2+0) baseline (16-wide, Figure 7)",
    ))
    print()
    print(render_table(
        ["Configuration", "$ QW in", "$ QW out", "SVF QW in", "SVF QW out"],
        traffic_rows(),
        title="Memory traffic (Table 3)",
    ))
    print()
    print(render_table(
        ["Benchmark", "stack cache B/switch", "SVF B/switch"],
        context_switch_rows(),
        title="Context-switch writeback (Table 4)",
    ))


if __name__ == "__main__":
    main()
