"""252.eon — probabilistic ray tracer (fixed-point vector math).

Models eon's distinguishing trait from the paper: it is the one
SPECint2000 benchmark where general-purpose-register stack accesses
dominate (over 45% of its stack accesses).  Small vector-math helpers
receive *pointers to the caller's stack-allocated vectors and scalars*
(out-parameters), so callees store through ``$gpr`` into the caller's
frame and the caller immediately reloads the same slots ``$sp``-
relative — the exact store-through-gpr / load-through-sp collision
pattern that causes SVF load squashes (Section 3.2, Figure 7).
"""

from __future__ import annotations

from repro.workloads.common import rand_source

_TEMPLATE = """
int spheres[{sphere_words}];
int hit_count = 0;

int dot3(int *a, int *b) {{
    return (a[0] * b[0] + a[1] * b[1] + a[2] * b[2]) >> 8;
}}

int scale_add(int *out, int *base, int *direction, int t) {{
    out[0] = base[0] + ((direction[0] * t) >> 8);
    out[1] = base[1] + ((direction[1] * t) >> 8);
    out[2] = base[2] + ((direction[2] * t) >> 8);
    return 0;
}}

int intersect_sphere(int *ray, int sphere_index, int *t_out) {{
    int center[3];
    center[0] = spheres[sphere_index * 4];
    center[1] = spheres[sphere_index * 4 + 1];
    center[2] = spheres[sphere_index * 4 + 2];
    int radius = spheres[sphere_index * 4 + 3];
    int oc[3];
    oc[0] = ray[0] - center[0];
    oc[1] = ray[1] - center[1];
    oc[2] = ray[2] - center[2];
    int dir[3];
    dir[0] = ray[3];
    dir[1] = ray[4];
    dir[2] = ray[5];
    int b = dot3(&oc[0], &dir[0]);
    int c = dot3(&oc[0], &oc[0]) - ((radius * radius) >> 8);
    int disc = ((b * b) >> 8) - c;
    if (disc < 0) {{
        return 0;
    }}
    int root = disc >> 1;
    int guess = disc;
    while (guess * guess > disc * 256 && guess > 1) {{
        guess = (guess + (disc * 256) / guess) >> 1;
    }}
    root = guess;
    t_out[0] = -b - root;
    if (t_out[0] < 0) {{
        return 0;
    }}
    return 1;
}}

int shade(int *point, int *normal, int material) {{
    int light[3];
    light[0] = 256;
    light[1] = 256;
    light[2] = 128;
    int diffuse = dot3(normal, &light[0]);
    if (diffuse < 0) {{
        diffuse = 0;
    }}
    int ambient = (material & 63) + 8;
    return ambient + ((diffuse * (material & 255)) >> 8);
}}

int trace_ray(int ox, int oy, int dx, int dy, int dz, int bounce) {{
    // Per-ray sample buffer: eon's recursive rays carry fat frames,
    // producing the deep stack oscillation behind its Table 3 traffic.
    int samples[64];
    for (int s = 0; s < 64; s += 4) {{
        samples[s] = ox + s * dy;
    }}
    int ray[6];
    ray[0] = ox;
    ray[1] = oy;
    ray[2] = 0;
    ray[3] = dx;
    ray[4] = dy;
    ray[5] = dz;
    int nearest_t = 1000000000;
    int nearest_sphere = -1;
    for (int s = 0; s < {spheres}; s += 1) {{
        int t = 0;
        if (intersect_sphere(&ray[0], s, &t) != 0) {{
            if (t < nearest_t) {{
                nearest_t = t;
                nearest_sphere = s;
            }}
        }}
    }}
    if (nearest_sphere < 0) {{
        int env = {background};
        if (bounce > 0) {{
            // Environment sampling: scatter a continuation ray, so the
            // ray tree always reaches its full depth.
            env += trace_ray(ox + dx, oy + dy, dy, -dx, dz, bounce - 1) >> 3;
        }}
        return env + (samples[(env & 31) + 8] & 3);
    }}
    hit_count += 1;
    int point[3];
    int origin[3];
    origin[0] = ox;
    origin[1] = oy;
    origin[2] = 0;
    int direction[3];
    direction[0] = dx;
    direction[1] = dy;
    direction[2] = dz;
    scale_add(&point[0], &origin[0], &direction[0], nearest_t);
    int normal[3];
    normal[0] = point[0] - spheres[nearest_sphere * 4];
    normal[1] = point[1] - spheres[nearest_sphere * 4 + 1];
    normal[2] = point[2] - spheres[nearest_sphere * 4 + 2];
    int color = shade(&point[0], &normal[0], spheres[nearest_sphere * 4 + 3]);
    if (bounce > 0) {{
        color += trace_ray(point[0], point[1], -dx, dy, -dz, bounce - 1) >> 2;
    }}
    color += samples[(color & 31) + 4] & 3;
    return color;
}}

int main() {{
    for (int s = 0; s < {spheres}; s += 1) {{
        spheres[s * 4] = (rand31() & 1023) - 512;
        spheres[s * 4 + 1] = (rand31() & 1023) - 512;
        spheres[s * 4 + 2] = 256 + (rand31() & 511);
        spheres[s * 4 + 3] = 64 + (rand31() & 127);
    }}
    int image_checksum = 0;
    for (int y = 0; y < {height}; y += 1) {{
        for (int x = 0; x < {width}; x += 1) {{
            int dx = (x * 512) / {width} - 256;
            int dy = (y * 512) / {height} - 256;
            image_checksum += trace_ray(dx, dy, dx, dy, 256, {bounces});
        }}
    }}
    print(image_checksum);
    print(hit_count);
    return 0;
}}
"""


def make_source(
    width: int = 12,
    height: int = 10,
    spheres: int = 6,
    bounces: int = 1,
    seed: int = 252,
    background: int = 16,
) -> str:
    """Build the eon workload (cook = direct lighting, kajiya = bounced)."""
    return rand_source(seed) + _TEMPLATE.format(
        width=width,
        height=height,
        spheres=spheres,
        sphere_words=4 * spheres,
        bounces=bounces,
        background=background,
    )


INPUTS = {
    "cook": dict(seed=252, bounces=2, background=16),
    "kajiya": dict(seed=90125, bounces=7, background=8, width=10, height=8),
}
