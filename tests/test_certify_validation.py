"""Static-vs-dynamic cross-validation of every certificate.

The acceptance contract of the certifier: on all 13 registry
workloads (full runs, no instruction cap) the observed maximum stack
depth never exceeds the certified bound and every observed
computed-base stack access happens in a function the certificate
names; on the adversarial family the same soundness holds *and* every
member is flagged.
"""

import pytest

from repro.harness.certification import (
    render_validations,
    validate_adversarial,
    validate_certificate,
    validate_workload,
)
from repro.trace.columnar import ColumnarTrace
from repro.workloads import ALL_BENCHMARKS, workload
from repro.workloads.adversarial import ADVERSARIAL


@pytest.fixture(scope="module")
def registry_validations():
    """(certificate, validation) per benchmark, full runs, computed once."""
    return {
        benchmark_name: validate_workload(workload(benchmark_name))
        for benchmark_name in ALL_BENCHMARKS
    }


class TestRegistryValidation:
    @pytest.mark.parametrize("benchmark_name", ALL_BENCHMARKS)
    def test_full_run_stays_inside_certificate(
        self, benchmark_name, registry_validations
    ):
        certificate, validation = registry_validations[benchmark_name]
        assert validation.halted, benchmark_name
        assert validation.depth_ok, validation.render()
        assert validation.escapes_ok, validation.render()
        assert validation.ok
        if certificate.depth_bound is not None:
            assert validation.observed_depth <= certificate.depth_bound
        # Observed computed-base functions ⊆ certified set, verbatim.
        assert set(validation.observed_gpr) <= set(validation.certified_gpr)

    def test_bounds_are_tight_somewhere(self, registry_validations):
        # The recurrence is exact for non-recursive programs: at least
        # one workload must *attain* its certified bound, else the
        # bound computation is vacuously loose.
        attained = sum(
            1
            for certificate, validation in registry_validations.values()
            if certificate.depth_bound is not None
            and validation.observed_depth == certificate.depth_bound
        )
        assert attained >= 5, f"bound attained on only {attained} workloads"


class TestAdversarialValidation:
    @pytest.mark.parametrize(
        "member", ADVERSARIAL, ids=[m.name for m in ADVERSARIAL]
    )
    def test_flagged_and_still_sound(self, member):
        certificate, validation = validate_adversarial(member)
        kinds = {flag.kind for flag in certificate.flags}
        assert set(member.expected_flags) <= kinds, member.name
        # Soundness holds even for contract breakers: the (possibly
        # degraded) certificate claims must cover the observed run.
        assert validation.ok, validation.render()


class TestValidationMechanics:
    def test_depth_violation_detected(self):
        # Certify gzip but hand the validator a *forged* certificate
        # with a too-small bound: validation must fail loudly.
        work = workload("gzip")
        from repro.harness.certification import certify_workload

        certificate = certify_workload(work)
        trace = ColumnarTrace()
        work.run(trace_sink=trace)
        certificate.depth_bound = 8  # forged
        result = validate_certificate(certificate, trace)
        assert not result.depth_ok
        assert not result.ok
        assert any("EXCEEDS" in note for note in result.notes)

    def test_escape_violation_detected(self):
        # Forge the verdicts so the certified gpr set is empty on a
        # workload that demonstrably uses computed-base accesses.
        work = workload("bzip2")
        from repro.harness.certification import certify_workload

        certificate = certify_workload(work)
        assert certificate.gpr_functions()
        trace = ColumnarTrace()
        work.run(trace_sink=trace)
        for verdict in certificate.verdicts.values():
            object.__setattr__(verdict, "gpr_access", False)
        result = validate_certificate(certificate, trace)
        assert not result.escapes_ok
        assert not result.ok

    def test_empty_trace_validates(self):
        from repro.analysis.certify import certify_program
        from repro.isa import assemble

        program = assemble(".text\nmain:\n    ret\n")
        certificate = certify_program(program, name="trivial")
        result = validate_certificate(certificate, ColumnarTrace())
        assert result.ok
        assert result.observed_depth == 0

    def test_render_footer(self):
        certificate, validation = validate_adversarial(ADVERSARIAL[0])
        text = render_validations([validation])
        assert "1 run(s) validated" in text
        assert "all sound" in text

    def test_api_validate_roundtrip(self):
        from repro import api

        (result,) = api.certify("mcf", validate=True)
        assert result.validation is not None
        assert result.validation.ok
        assert result.ok
