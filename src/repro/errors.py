"""Shared error contract of the toolkit.

:class:`UsageError` is the one exception callers are expected to
handle: it means the *request* was malformed (unknown benchmark or
input names, conflicting flags), not that the toolkit failed.  The CLI
maps it to exit code 2 with a one-line stderr message — never a
traceback — as documented in :mod:`repro.cli`; library callers can
catch it to validate user-supplied benchmark subsets up front.

It lives in its own leaf module so every layer (workload registry,
experiment drivers, facade, CLI) can raise or catch it without import
cycles.
"""

from __future__ import annotations


class UsageError(Exception):
    """A malformed request: bad names or flags, reported without traceback."""


__all__ = ["UsageError"]
