#!/usr/bin/env python
"""Design-space exploration: size x ports x width for the SVF.

The paper's conclusion pitches the SVF as a design *option*: "the die
area allocated to the SVF can be reallocated from space that
otherwise would've gone to a larger first-level cache."  This example
treats the repository as the design tool that claim implies: sweep SVF
capacity and port count across machine widths and print the speedup
surface, so an architect can pick the smallest configuration that
captures the benefit (the paper's answer: 8 KB, 2 ports).

Run:  python examples/design_space_sweep.py
"""

from repro.harness import percent, render_table
from repro.uarch import simulate, table2_config
from repro.workloads import workload

BENCHMARK = "186.crafty"
WINDOW = 40_000
CAPACITIES = (2048, 4096, 8192)
PORTS = (1, 2, 4)
WIDTHS = (4, 8, 16)


def main() -> None:
    trace = workload(BENCHMARK).trace(max_instructions=WINDOW)
    print(f"workload {BENCHMARK}, {WINDOW:,}-instruction window\n")

    for width in WIDTHS:
        base = table2_config(width, dl1_ports=2)
        baseline = simulate(trace, base)
        rows = []
        for capacity in CAPACITIES:
            row = [f"{capacity // 1024} KB"]
            for ports in PORTS:
                run = simulate(
                    trace,
                    base.with_svf(
                        mode="svf", capacity_bytes=capacity, ports=ports
                    ),
                )
                row.append(percent(run.speedup_over(baseline)))
            rows.append(tuple(row))
        print(render_table(
            ["SVF size", *[f"{p} port(s)" for p in PORTS]],
            rows,
            title=(
                f"{width}-wide machine "
                f"(baseline IPC {baseline.ipc:.2f})"
            ),
        ))
        print()

    print("Reading the surface: gains grow with width (Figure 5), the "
          "second port captures\nmost of the port benefit (Figure 6), and "
          "capacity beyond the workload's active\nstack region buys "
          "nothing (Section 2's 8 KB sizing argument).")


if __name__ == "__main__":
    main()
