"""Unit tests for the instruction model."""

import pytest

from repro.isa.instructions import (
    Instruction,
    InstructionError,
    OPCODES,
    OpClass,
)
from repro.isa.registers import RA, SP, ZERO


class TestOpcodeTable:
    def test_memory_ops_have_sizes(self):
        assert OPCODES["ldq"].mem_size == 8
        assert OPCODES["ldl"].mem_size == 4
        assert OPCODES["stq"].mem_size == 8
        assert OPCODES["stl"].mem_size == 4

    def test_lda_is_alu_not_memory(self):
        assert OPCODES["lda"].op_class is OpClass.IALU
        assert OPCODES["lda"].mem_size == 0

    def test_classes(self):
        assert OPCODES["mulq"].op_class is OpClass.IMULT
        assert OPCODES["bsr"].op_class is OpClass.CALL
        assert OPCODES["ret"].op_class is OpClass.RETURN
        assert OPCODES["beq"].op_class is OpClass.BRANCH

    def test_unknown_opcode_rejected(self):
        with pytest.raises(InstructionError):
            Instruction("frobnicate")


class TestSourceDestSets:
    def test_load(self):
        instr = Instruction("ldq", rd=1, rb=SP, imm=16)
        assert instr.source_registers() == (SP,)
        assert instr.destination_register() == 1
        assert instr.is_load and instr.is_mem and not instr.is_store

    def test_store_reads_data_and_base(self):
        instr = Instruction("stq", rd=5, rb=SP, imm=0)
        assert set(instr.source_registers()) == {5, SP}
        assert instr.destination_register() is None
        assert instr.is_store

    def test_alu_reg_form(self):
        instr = Instruction("addq", ra=1, rb=2, rd=3)
        assert set(instr.source_registers()) == {1, 2}
        assert instr.destination_register() == 3

    def test_alu_imm_form(self):
        instr = Instruction("addq", ra=1, imm=5, rd=3)
        assert instr.source_registers() == (1,)

    def test_zero_register_filtered(self):
        instr = Instruction("addq", ra=ZERO, rb=ZERO, rd=ZERO)
        assert instr.source_registers() == ()
        assert instr.destination_register() is None

    def test_conditional_branch(self):
        instr = Instruction("beq", ra=4, target="loop")
        assert instr.source_registers() == (4,)
        assert instr.destination_register() is None
        assert instr.is_branch and instr.is_conditional

    def test_bsr_writes_ra(self):
        instr = Instruction("bsr", rd=RA, target="callee")
        assert instr.destination_register() == RA
        assert instr.is_call

    def test_ret_reads_ra(self):
        instr = Instruction("ret", rb=RA)
        assert instr.source_registers() == (RA,)
        assert instr.is_return and instr.is_branch

    def test_jsr_reads_target_register_writes_ra(self):
        instr = Instruction("jsr", rd=RA, rb=4)
        assert instr.source_registers() == (4,)
        assert instr.destination_register() == RA

    def test_lda_reads_base(self):
        instr = Instruction("lda", rd=SP, rb=SP, imm=-32)
        assert instr.source_registers() == (SP,)
        assert instr.destination_register() == SP

    def test_print_reads_operand(self):
        instr = Instruction("print", ra=3)
        assert instr.source_registers() == (3,)


class TestRender:
    @pytest.mark.parametrize(
        "instr,expected",
        [
            (Instruction("ldq", rd=1, rb=SP, imm=16), "ldq r1, 16(sp)"),
            (Instruction("addq", ra=1, rb=2, rd=3), "addq r1, r2, r3"),
            (Instruction("addq", ra=1, imm=-4, rd=3), "addq r1, -4, r3"),
            (Instruction("beq", ra=4, target="x"), "beq r4, x"),
            (Instruction("br", target="x"), "br x"),
            (Instruction("ret", rb=RA), "ret"),
            (Instruction("halt"), "halt"),
        ],
    )
    def test_render(self, instr, expected):
        assert instr.render() == expected
