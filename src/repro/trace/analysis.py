"""Streaming trace analyses reproducing the paper's Figures 1-3.

Each analysis implements two consumption protocols:

* the trace-sink protocol (an ``append`` method), so it can be
  attached directly to :meth:`repro.emulator.Machine.run` and consume
  the dynamic instruction stream without storing it — this remains the
  reference implementation;
* the batched protocol (``consume_columns(trace, lo, hi)``), which
  walks a :class:`~repro.trace.columnar.ColumnarTrace`'s flat columns
  without materializing a :class:`TraceRecord` per instruction.  When
  the optional numpy backend is enabled
  (:meth:`ColumnarTrace.as_arrays`), region classification and
  histogram accumulation run as vectorized reductions over the column
  views; otherwise a pure-python index walk over the packed columns is
  used.

``tests/test_analysis_columnar.py`` differentially gates all three
paths (append / python columns / numpy columns) field-for-field on the
whole workload suite plus fuzzed traces.

:func:`consume_trace` is the dispatcher the harness uses: it feeds one
trace to many sinks, batching where a sink supports it and sharing a
single record-materialization pass for any that do not, and notes the
``analysis`` phase into the active :mod:`repro.profiling` profiler.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import profiling
from repro.emulator.memory import DATA_BASE, HEAP_BASE
from repro.isa.registers import FP, SP
from repro.trace.columnar import ColumnarTrace
from repro.trace.records import TraceRecord
from repro.trace.regions import (
    AccessMethod,
    STACK_REGION_FLOOR,
    classify_access,
)


@dataclass
class AccessDistribution:
    """Figure 1: run-time memory-access distribution.

    Counts data references by region and access method, normalized to
    total memory references, plus the fraction of all instructions that
    access memory.
    """

    total_instructions: int = 0
    memory_references: int = 0
    counts: Dict[AccessMethod, int] = field(
        default_factory=lambda: {method: 0 for method in AccessMethod}
    )

    def append(self, record: TraceRecord) -> None:
        self.total_instructions += 1
        if not (record.is_load or record.is_store):
            return
        self.memory_references += 1
        self.counts[classify_access(record.addr, record.base_reg)] += 1

    def consume_columns(
        self, trace: ColumnarTrace, lo: int = 0, hi: Optional[int] = None
    ) -> None:
        """Batched form of ``append`` over ``trace[lo:hi)``."""
        hi = len(trace) if hi is None else hi
        arrays = trace.as_arrays()
        if arrays is not None:
            self._consume_arrays(arrays, lo, hi)
        else:
            self._consume_python(trace, lo, hi)

    def _consume_python(self, trace: ColumnarTrace, lo: int, hi: int) -> None:
        """Reference batched path: index walk over the packed columns.

        Region classification is inlined from
        :func:`repro.trace.regions.classify_access` (the TEXT region
        folds into OTHER there, so ``addr < DATA_BASE`` covers both).
        """
        col_flags = trace.flags
        col_addr = trace.addr
        col_base = trace.base
        stack_floor = STACK_REGION_FLOOR
        heap_base = HEAP_BASE
        data_base = DATA_BASE
        sp_count = fp_count = gpr_count = 0
        global_count = heap_count = other_count = 0
        memory = 0
        for index in range(lo, hi):
            if not col_flags[index] & 3:  # neither load nor store
                continue
            memory += 1
            addr = col_addr[index]
            if addr >= stack_floor:
                base = col_base[index]
                if base == SP:
                    sp_count += 1
                elif base == FP:
                    fp_count += 1
                else:
                    gpr_count += 1
            elif addr >= heap_base:
                heap_count += 1
            elif addr >= data_base:
                global_count += 1
            else:
                other_count += 1
        self.total_instructions += hi - lo
        self.memory_references += memory
        counts = self.counts
        counts[AccessMethod.STACK_SP] += sp_count
        counts[AccessMethod.STACK_FP] += fp_count
        counts[AccessMethod.STACK_GPR] += gpr_count
        counts[AccessMethod.GLOBAL] += global_count
        counts[AccessMethod.HEAP] += heap_count
        counts[AccessMethod.OTHER] += other_count

    def _consume_arrays(self, arrays, lo: int, hi: int) -> None:
        """Vectorized batched path over the numpy column views."""
        flags = arrays.flags[lo:hi]
        addr = arrays.addr[lo:hi]
        base = arrays.base[lo:hi]
        memory = (flags & 3) != 0
        stack = memory & (addr >= STACK_REGION_FLOOR)
        sp_count = int((stack & (base == SP)).sum())
        fp_count = int((stack & (base == FP)).sum())
        stack_count = int(stack.sum())
        nonstack = memory & ~stack
        heap_count = int((nonstack & (addr >= HEAP_BASE)).sum())
        global_count = int(
            (nonstack & (addr >= DATA_BASE) & (addr < HEAP_BASE)).sum()
        )
        memory_count = int(memory.sum())
        self.total_instructions += hi - lo
        self.memory_references += memory_count
        counts = self.counts
        counts[AccessMethod.STACK_SP] += sp_count
        counts[AccessMethod.STACK_FP] += fp_count
        counts[AccessMethod.STACK_GPR] += stack_count - sp_count - fp_count
        counts[AccessMethod.GLOBAL] += global_count
        counts[AccessMethod.HEAP] += heap_count
        counts[AccessMethod.OTHER] += (
            memory_count - stack_count - heap_count - global_count
        )

    @property
    def memory_fraction(self) -> float:
        """Fraction of executed instructions that reference memory."""
        if self.total_instructions == 0:
            return 0.0
        return self.memory_references / self.total_instructions

    def fraction(self, method: AccessMethod) -> float:
        """Fraction of memory references with the given classification."""
        if self.memory_references == 0:
            return 0.0
        return self.counts[method] / self.memory_references

    @property
    def stack_fraction(self) -> float:
        """Fraction of memory references that touch the stack."""
        return (
            self.fraction(AccessMethod.STACK_SP)
            + self.fraction(AccessMethod.STACK_FP)
            + self.fraction(AccessMethod.STACK_GPR)
        )

    @property
    def sp_fraction_of_stack(self) -> float:
        """Fraction of *stack* references that are $sp-relative."""
        stack_total = (
            self.counts[AccessMethod.STACK_SP]
            + self.counts[AccessMethod.STACK_FP]
            + self.counts[AccessMethod.STACK_GPR]
        )
        if stack_total == 0:
            return 0.0
        return self.counts[AccessMethod.STACK_SP] / stack_total


@dataclass
class StackDepthProfile:
    """Figure 2: stack-depth variation over time.

    Logs the TOS depth (in 64-bit units below the stack base, matching
    the paper's y-axis) at every ``$sp`` update.
    """

    stack_base: int
    samples: List[Tuple[int, int]] = field(default_factory=list)
    max_depth: int = 0

    def append(self, record: TraceRecord) -> None:
        if not record.sp_update:
            return
        depth = (self.stack_base - record.sp_value) // 8
        self.samples.append((record.index, depth))
        if depth > self.max_depth:
            self.max_depth = depth

    def consume_columns(
        self, trace: ColumnarTrace, lo: int = 0, hi: Optional[int] = None
    ) -> None:
        """Batched form of ``append`` over ``trace[lo:hi)``.

        Sample indices stay absolute trace positions, matching the
        ``record.index`` values of the streaming path.
        """
        hi = len(trace) if hi is None else hi
        arrays = trace.as_arrays()
        if arrays is not None:
            self._consume_arrays(arrays, lo, hi)
        else:
            self._consume_python(trace, lo, hi)

    def _consume_python(self, trace: ColumnarTrace, lo: int, hi: int) -> None:
        col_flags = trace.flags
        col_sp = trace.sp
        stack_base = self.stack_base
        samples_append = self.samples.append
        max_depth = self.max_depth
        for index in range(lo, hi):
            if not col_flags[index] & 32:  # not an sp_update
                continue
            depth = (stack_base - col_sp[index]) // 8
            samples_append((index, depth))
            if depth > max_depth:
                max_depth = depth
        self.max_depth = max_depth

    def _consume_arrays(self, arrays, lo: int, hi: int) -> None:
        import numpy as np

        flags = arrays.flags[lo:hi]
        updates = np.nonzero((flags & 32) != 0)[0]
        if not updates.size:
            return
        # int64 cast before the subtraction: uint64 would wrap if the
        # stack base ever sat below $sp.
        sp_values = arrays.sp[lo:hi][updates].astype(np.int64)
        depths = (self.stack_base - sp_values) // 8
        self.samples.extend(
            zip((updates + lo).tolist(), depths.tolist())
        )
        top = int(depths.max())
        if top > self.max_depth:
            self.max_depth = top

    def depth_series(self, points: int = 100) -> List[int]:
        """Resample the depth curve to a fixed number of points."""
        if not self.samples or points <= 0:
            return []
        if len(self.samples) <= points:
            return [depth for _, depth in self.samples]
        step = len(self.samples) / points
        return [
            self.samples[int(i * step)][1] for i in range(points)
        ]

    def stable_range(self, skip_fraction: float = 0.2) -> Tuple[int, int]:
        """(min, max) depth after the initialization phase."""
        if not self.samples:
            return (0, 0)
        start = int(len(self.samples) * skip_fraction)
        depths = [depth for _, depth in self.samples[start:]] or [
            self.samples[-1][1]
        ]
        return (min(depths), max(depths))


@dataclass
class OffsetLocality:
    """Figure 3: cumulative distribution of offsets from the TOS.

    For each stack reference, the offset is ``addr - $sp`` (the stack
    grows down, so live data sits at addresses >= ``$sp``).  The paper
    plots the within-function CDF on a log10 x-axis and reports the
    average distance and the fraction within 8 KB.
    """

    histogram: Dict[int, int] = field(default_factory=dict)
    total: int = 0
    sum_offsets: int = 0
    beyond_tos: int = 0

    def append(self, record: TraceRecord) -> None:
        if not (record.is_load or record.is_store):
            return
        from repro.trace.regions import is_stack_address

        if not is_stack_address(record.addr):
            return
        offset = record.addr - record.sp_value
        if offset < 0:
            self.beyond_tos += 1
            return
        self.total += 1
        self.sum_offsets += offset
        self.histogram[offset] = self.histogram.get(offset, 0) + 1

    def consume_columns(
        self, trace: ColumnarTrace, lo: int = 0, hi: Optional[int] = None
    ) -> None:
        """Batched form of ``append`` over ``trace[lo:hi)``."""
        hi = len(trace) if hi is None else hi
        arrays = trace.as_arrays()
        if arrays is not None:
            self._consume_arrays(arrays, lo, hi)
        else:
            self._consume_python(trace, lo, hi)

    def _consume_python(self, trace: ColumnarTrace, lo: int, hi: int) -> None:
        col_flags = trace.flags
        col_addr = trace.addr
        col_sp = trace.sp
        stack_floor = STACK_REGION_FLOOR
        histogram = self.histogram
        total = 0
        sum_offsets = 0
        beyond = 0
        for index in range(lo, hi):
            if not col_flags[index] & 3:
                continue
            addr = col_addr[index]
            if addr < stack_floor:
                continue
            offset = addr - col_sp[index]
            if offset < 0:
                beyond += 1
                continue
            total += 1
            sum_offsets += offset
            histogram[offset] = histogram.get(offset, 0) + 1
        self.total += total
        self.sum_offsets += sum_offsets
        self.beyond_tos += beyond

    def _consume_arrays(self, arrays, lo: int, hi: int) -> None:
        import numpy as np

        flags = arrays.flags[lo:hi]
        addr = arrays.addr[lo:hi]
        stack = np.nonzero(
            ((flags & 3) != 0) & (addr >= STACK_REGION_FLOOR)
        )[0]
        if not stack.size:
            return
        # int64 casts before the subtraction: the columns are uint64
        # and a reference beyond the TOS (addr < $sp) would wrap.
        offsets = addr[stack].astype(np.int64) - arrays.sp[lo:hi][
            stack
        ].astype(np.int64)
        beyond = offsets < 0
        self.beyond_tos += int(beyond.sum())
        covered = offsets[~beyond]
        if not covered.size:
            return
        self.total += int(covered.size)
        self.sum_offsets += int(covered.sum())
        values, counts = np.unique(covered, return_counts=True)
        histogram = self.histogram
        for offset, count in zip(values.tolist(), counts.tolist()):
            histogram[offset] = histogram.get(offset, 0) + count

    @property
    def average_offset(self) -> float:
        """Average distance (bytes) of a stack reference from the TOS."""
        if self.total == 0:
            return 0.0
        return self.sum_offsets / self.total

    def fraction_within(self, limit_bytes: int) -> float:
        """Fraction of stack references within ``limit_bytes`` of TOS."""
        if self.total == 0:
            return 0.0
        covered = sum(
            count
            for offset, count in self.histogram.items()
            if offset <= limit_bytes
        )
        return covered / self.total

    def cdf(self) -> List[Tuple[int, float]]:
        """The cumulative distribution as (offset, fraction) pairs."""
        cumulative = 0
        points = []
        for offset in sorted(self.histogram):
            cumulative += self.histogram[offset]
            points.append((offset, cumulative / self.total))
        return points

    def log_cdf(self, buckets: int = 32) -> List[Tuple[float, float]]:
        """CDF resampled onto a log10 grid (the paper's x-axis)."""
        if self.total == 0:
            return []
        max_offset = max(self.histogram)
        top = math.log10(max(max_offset, 1) + 1)
        grid = [10 ** (top * (i + 1) / buckets) - 1 for i in range(buckets)]
        grid[-1] = float(max_offset)  # guard against float rounding
        cdf_points = self.cdf()
        out = []
        position = 0
        cumulative = 0.0
        for edge in grid:
            while position < len(cdf_points) and cdf_points[position][0] <= edge:
                cumulative = cdf_points[position][1]
                position += 1
            out.append((edge, cumulative))
        return out


class MultiSink:
    """Fan a trace stream out to several sinks (and optionally keep it)."""

    def __init__(self, *sinks, keep: bool = False):
        self.sinks = list(sinks)
        self.records: List[TraceRecord] = []
        self._keep = keep

    def append(self, record: TraceRecord) -> None:
        for sink in self.sinks:
            sink.append(record)
        if self._keep:
            self.records.append(record)

    def consume_columns(
        self, trace: ColumnarTrace, lo: int = 0, hi: Optional[int] = None
    ) -> None:
        """Fan a column window out, batching sinks that support it.

        Sinks without ``consume_columns`` (and the ``keep`` copy, which
        needs materialized records) share one record-materialization
        pass.
        """
        hi = len(trace) if hi is None else hi
        legacy = []
        for sink in self.sinks:
            consume = getattr(sink, "consume_columns", None)
            if consume is None:
                legacy.append(sink)
            else:
                consume(trace, lo, hi)
        if legacy or self._keep:
            record_at = trace.record_at
            records = self.records
            for index in range(lo, hi):
                record = record_at(index)
                for sink in legacy:
                    sink.append(record)
                if self._keep:
                    records.append(record)


def consume_trace(
    trace,
    sinks: Sequence,
    lo: int = 0,
    hi: Optional[int] = None,
) -> int:
    """Feed ``trace[lo:hi)`` to every sink; returns instructions fed.

    The harness-side dispatcher for the batched analysis protocol:

    * on a :class:`ColumnarTrace`, sinks implementing
      ``consume_columns`` walk the flat columns (vectorized when the
      numpy backend is on); any remaining ``append``-only sinks share
      one record-materialization pass;
    * on a plain record sequence every sink falls back to ``append``.

    Wall time and instruction count are noted as the ``analysis``
    phase of the active :mod:`repro.profiling` profiler.
    """
    profiler = profiling.active()
    started = perf_counter() if profiler is not None else 0.0
    if isinstance(trace, ColumnarTrace):
        end = len(trace) if hi is None else hi
        legacy = []
        for sink in sinks:
            consume = getattr(sink, "consume_columns", None)
            if consume is None:
                legacy.append(sink)
            else:
                consume(trace, lo, end)
        if legacy:
            record_at = trace.record_at
            for index in range(lo, end):
                record = record_at(index)
                for sink in legacy:
                    sink.append(record)
        count = end - lo
    else:
        records = trace if lo == 0 and hi is None else trace[lo:hi]
        count = 0
        for record in records:
            for sink in sinks:
                sink.append(record)
            count += 1
    if profiler is not None:
        profiler.note("analysis", perf_counter() - started, count)
    return count
