"""Per-workload signature tests.

Each SPEC-inspired workload was built to exhibit one distinguishing
behaviour from the paper (gcc's depth, eon's gpr accesses, perlbmk's
giant frame, gzip's flatness...).  These tests pin those signatures so
workload edits can't silently erase the property an experiment relies
on.
"""

import pytest

from repro.emulator.memory import STACK_BASE
from repro.trace.analysis import AccessDistribution, StackDepthProfile
from repro.trace.regions import AccessMethod
from repro.workloads import workload

WINDOW = 40_000


@pytest.fixture(scope="module")
def profiles():
    """(distribution, depth) per benchmark, one emulation each."""
    out = {}
    names = [
        "bzip2", "crafty", "eon", "gap", "gcc", "gzip", "mcf",
        "parser", "twolf", "vortex", "perlbmk", "vpr",
    ]
    for name in names:
        distribution = AccessDistribution()
        depth = StackDepthProfile(stack_base=STACK_BASE)

        class _Both:
            def append(self, record, d=distribution, s=depth):
                d.append(record)
                s.append(record)

        workload(name).run(max_instructions=WINDOW, trace_sink=_Both())
        out[name] = (distribution, depth)
    return out


class TestCallDepthSignatures:
    def test_crafty_recursion_band(self, profiles):
        """Figure 2: crafty has a wide, active recursion band."""
        _, depth = profiles["crafty"]
        low, high = depth.stable_range()
        assert high - low > 100  # oscillates over hundreds of words

    def test_gzip_is_flat(self, profiles):
        _, depth = profiles["gzip"]
        assert depth.max_depth < 60

    def test_mcf_is_flat(self, profiles):
        _, depth = profiles["mcf"]
        assert depth.max_depth < 60

    def test_perlbmk_has_the_giant_frame(self, profiles):
        """The interpreter frame exceeds 8 KB (1000+ words)."""
        _, depth = profiles["perlbmk"]
        assert depth.max_depth > 1000

    def test_gcc_is_among_the_deepest(self, profiles):
        _, gcc_depth = profiles["gcc"]
        shallower = ["gzip", "mcf", "vortex", "twolf", "bzip2"]
        for other in shallower:
            assert gcc_depth.max_depth > profiles[other][1].max_depth


class TestAccessMethodSignatures:
    def test_eon_is_gpr_heavy(self, profiles):
        distribution, _ = profiles["eon"]
        gpr = distribution.fraction(AccessMethod.STACK_GPR)
        assert gpr > 0.15

    def test_eon_uses_fp_frames(self, profiles):
        distribution, _ = profiles["eon"]
        assert distribution.fraction(AccessMethod.STACK_FP) > 0.01

    def test_gzip_is_pure_sp(self, profiles):
        distribution, _ = profiles["gzip"]
        assert distribution.sp_fraction_of_stack > 0.95

    def test_mcf_and_gap_hit_the_heap(self, profiles):
        for name in ("mcf", "gap"):
            distribution, _ = profiles[name]
            assert distribution.fraction(AccessMethod.HEAP) > 0.1, name

    def test_vortex_touches_heap_records(self, profiles):
        distribution, _ = profiles["vortex"]
        assert distribution.fraction(AccessMethod.HEAP) > 0.05

    def test_every_workload_references_the_stack(self, profiles):
        for name, (distribution, _) in profiles.items():
            assert distribution.stack_fraction > 0.03, name


class TestCallReturnBalance:
    """Paper Section 2: call/return $sp adjustments exactly cancel."""

    @pytest.mark.parametrize("name", ["crafty", "gcc", "parser"])
    def test_sp_restored_across_calls(self, name):
        trace = workload(name).trace(max_instructions=WINDOW)
        # Pair each call with its return via the return address and
        # check $sp is identical at both points.
        call_stack = []
        violations = 0
        for record in trace:
            if record.op in ("bsr", "jsr"):
                call_stack.append((record.pc + 4, record.sp_value))
            elif record.op == "ret" and call_stack:
                return_to, sp_at_call = call_stack[-1]
                if record.next_pc == return_to:
                    call_stack.pop()
                    # $sp before the epilogue already restored it.
                    if record.sp_value != sp_at_call:
                        violations += 1
        assert violations == 0

    def test_sp_adjustments_come_in_cancelling_pairs(self):
        """Every frame allocation has a matching deallocation size."""
        trace = workload("crafty").trace(max_instructions=WINDOW)
        open_frames = []
        for record in trace:
            if record.sp_update and record.sp_update_immediate:
                change = record.sp_update_immediate
                if change < 0:
                    open_frames.append(-change)
                elif open_frames:
                    assert change == open_frames.pop()
