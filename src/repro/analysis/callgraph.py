"""Whole-program call graph over the CFG layer (``repro certify``).

:mod:`repro.analysis.cfg` already records direct ``bsr`` edges per
function; this module turns them into the structure interprocedural
analysis needs:

* **call sites with static callees** — every ``bsr``/``jsr`` site as a
  :class:`CallSite`, with ``callee=None`` for indirect calls whose
  target the static graph cannot name;
* **SCC condensation** — Tarjan's algorithm (iterative, so deep call
  chains cannot overflow the Python stack) yields the strongly
  connected components in *bottom-up* order: every callee SCC appears
  before its callers, which is exactly the order summary computation
  consumes (:mod:`repro.analysis.summaries`);
* **recursion detection** — a function is recursive when its SCC has
  more than one member (mutual recursion) or carries a self edge
  (direct recursion); :meth:`CallGraph.recursion_cycle` produces a
  concrete cycle witness for the certificate;
* **reachability & witness paths** — the live set from the program
  entry, and a shortest call path from the entry to any function, used
  to attach counterexample paths to certifier flags.

The graph is *incomplete* in the presence of indirect calls (``jsr``);
:attr:`CallGraph.unknown_callers` names the functions containing them
so downstream verdicts can degrade honestly instead of claiming a
bound the program may exceed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import ProgramCFG, build_cfg
from repro.isa.instructions import Program


@dataclass(frozen=True)
class CallSite:
    """One static call instruction inside ``caller``."""

    caller: str
    index: int  # program-wide instruction index
    #: static callee name; None for an indirect (``jsr``) call
    callee: Optional[str]

    @property
    def is_indirect(self) -> bool:
        return self.callee is None


@dataclass
class CallGraph:
    """Direct call graph plus its SCC condensation and witness helpers."""

    pcfg: ProgramCFG
    #: function containing the program entry label (None if absent)
    root: Optional[str]
    #: caller -> set of *named* callees (indirect edges excluded)
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    #: caller -> its call sites in program order
    sites: Dict[str, List[CallSite]] = field(default_factory=dict)
    #: functions containing at least one indirect (``jsr``) call site
    unknown_callers: Set[str] = field(default_factory=set)
    #: strongly connected components, bottom-up (callees first)
    sccs: List[Tuple[str, ...]] = field(default_factory=list)
    #: function name -> index into :attr:`sccs`
    scc_of: Dict[str, int] = field(default_factory=dict)
    #: functions on a call cycle (self loop or SCC of size > 1)
    recursive: Set[str] = field(default_factory=set)

    def is_recursive(self, name: str) -> bool:
        return name in self.recursive

    def callees(self, name: str) -> Set[str]:
        return self.edges.get(name, set())

    def reachable(self) -> Set[str]:
        """Functions reachable from the entry along *named* edges.

        With indirect calls present the set is a lower bound; callers
        must consult :attr:`unknown_callers` before trusting it as an
        exhaustive live set.
        """
        if self.root is None:
            return set()
        live = {self.root}
        work = [self.root]
        while work:
            for callee in self.edges.get(work.pop(), ()):
                if callee not in live:
                    live.add(callee)
                    work.append(callee)
        return live

    def transitive_callees(self, name: str) -> Set[str]:
        """Every function reachable from ``name`` (excluding ``name``
        itself unless it sits on a cycle)."""
        seen: Set[str] = set()
        work = list(self.edges.get(name, ()))
        while work:
            current = work.pop()
            if current in seen:
                continue
            seen.add(current)
            work.extend(self.edges.get(current, ()))
        return seen

    def call_path(self, target: str) -> Optional[List[str]]:
        """Shortest entry→``target`` call chain, or None if unreachable."""
        if self.root is None or target not in self.pcfg.functions:
            return None
        if target == self.root:
            return [self.root]
        parent: Dict[str, str] = {}
        queue = [self.root]
        seen = {self.root}
        while queue:
            nxt: List[str] = []
            for caller in queue:
                for callee in sorted(self.edges.get(caller, ())):
                    if callee in seen:
                        continue
                    seen.add(callee)
                    parent[callee] = caller
                    if callee == target:
                        path = [callee]
                        while path[-1] in parent:
                            path.append(parent[path[-1]])
                        return list(reversed(path))
                    nxt.append(callee)
            queue = nxt
        return None

    def recursion_cycle(self, name: str) -> Optional[List[str]]:
        """A concrete call cycle through ``name`` (first == last), or
        None when ``name`` is not recursive."""
        if name not in self.recursive:
            return None
        if name in self.edges.get(name, ()):
            return [name, name]
        members = set(self.sccs[self.scc_of[name]])
        # BFS within the SCC from name's callees back to name.
        parent: Dict[str, str] = {}
        queue = [c for c in sorted(self.edges.get(name, ())) if c in members]
        seen = set(queue)
        for callee in queue:
            parent[callee] = name
        while queue:
            current = queue.pop(0)
            if current == name:
                break
            for callee in sorted(self.edges.get(current, ())):
                if callee not in members or callee in seen:
                    continue
                seen.add(callee)
                parent[callee] = current
                queue.append(callee)
        if name not in parent:
            return None  # pragma: no cover - SCC membership guarantees a cycle
        cycle = [name]
        current = name
        while True:
            current = parent[current]
            cycle.append(current)
            if current == name:
                break
        return list(reversed(cycle))


def build_call_graph(source) -> CallGraph:
    """Build the :class:`CallGraph` of a :class:`Program` or
    an already-constructed :class:`ProgramCFG`."""
    pcfg = source if isinstance(source, ProgramCFG) else build_cfg(source)
    program: Program = pcfg.program

    entry_index = program.labels.get(program.entry, 0)
    root = None
    for name, function in pcfg.functions.items():
        if function.start == entry_index:
            root = name
            break
    if root is None and pcfg.functions:
        # Hand-written sources may park the entry mid-function; fall
        # back to the function containing the entry index.
        containing = pcfg.function_at(entry_index)
        root = containing.name if containing is not None else None

    graph = CallGraph(pcfg=pcfg, root=root)
    start_to_name = {f.start: f.name for f in pcfg.functions.values()}
    for name, function in pcfg.functions.items():
        graph.edges[name] = set()
        graph.sites[name] = []
        for site in function.call_sites:
            instruction = program.instructions[site]
            callee: Optional[str] = None
            if instruction.op == "bsr" and instruction.target_index is not None:
                callee = start_to_name.get(instruction.target_index)
                if callee is None:
                    # bsr into the middle of a function: cfg records it
                    # as a call target entry, so this only happens for
                    # degenerate hand-written code. Treat as unknown.
                    graph.unknown_callers.add(name)
                else:
                    graph.edges[name].add(callee)
            else:  # jsr
                graph.unknown_callers.add(name)
            graph.sites[name].append(CallSite(name, site, callee))

    _condense(graph)
    return graph


def _condense(graph: CallGraph) -> None:
    """Tarjan SCCs, iterative; fills sccs/scc_of/recursive bottom-up."""
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]

    names = list(graph.pcfg.functions)

    def strongconnect(start: str) -> None:
        work: List[Tuple[str, List[str], int]] = [
            (start, sorted(graph.edges.get(start, ())), 0)
        ]
        index_of[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, callees, position = work[-1]
            if position < len(callees):
                work[-1] = (node, callees, position + 1)
                callee = callees[position]
                if callee not in index_of:
                    index_of[callee] = lowlink[callee] = counter[0]
                    counter[0] += 1
                    stack.append(callee)
                    on_stack.add(callee)
                    work.append(
                        (callee, sorted(graph.edges.get(callee, ())), 0)
                    )
                elif callee in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[callee])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    scc_id = len(graph.sccs)
                    graph.sccs.append(tuple(sorted(component)))
                    for member in component:
                        graph.scc_of[member] = scc_id

    for name in names:
        if name not in index_of:
            strongconnect(name)

    for component in graph.sccs:
        if len(component) > 1:
            graph.recursive.update(component)
        else:
            only = component[0]
            if only in graph.edges.get(only, ()):
                graph.recursive.add(only)


__all__ = ["CallGraph", "CallSite", "build_call_graph"]
