"""repro — reproduction of "Stack Value File: Custom Microarchitecture
for the Stack" (Lee, Smelyanskiy, Newburn, Tyson — HPCA 2001).

Layers, bottom-up:

* :mod:`repro.isa` — Alpha-like 64-bit RISC ISA and assembler;
* :mod:`repro.lang` — MiniC compiler (the workload substrate);
* :mod:`repro.analysis` — static CFG/dataflow analysis and the
  stack-discipline linter guarding the toolchain's output;
* :mod:`repro.emulator` — functional emulator producing dynamic traces;
* :mod:`repro.trace` — trace records, region classification, analyses;
* :mod:`repro.uarch` — out-of-order timing model (Table 2 machines);
* :mod:`repro.core` — the Stack Value File, the decoupled stack-cache
  baseline, and the traffic/context-switch models;
* :mod:`repro.workloads` — the SPECint2000-inspired suite (Table 1);
* :mod:`repro.harness` — one experiment driver per table/figure.

Quick start::

    from repro.workloads import workload
    from repro.uarch import table2_config, simulate

    trace = workload("crafty").trace(max_instructions=50_000)
    base = table2_config(16)
    svf = base.with_svf(mode="svf", ports=2)
    print(simulate(trace, svf).speedup_over(simulate(trace, base)))
"""

__version__ = "1.0.0"

from repro.analysis import LintReport, Severity, lint_all, lint_program
from repro.core import StackCache, StackValueFile
from repro.uarch import MachineConfig, SimStats, simulate, table2_config
from repro.workloads import all_workloads, workload

__all__ = [
    "LintReport",
    "MachineConfig",
    "Severity",
    "SimStats",
    "StackCache",
    "StackValueFile",
    "__version__",
    "all_workloads",
    "lint_all",
    "lint_program",
    "simulate",
    "table2_config",
    "workload",
]
