"""Lint driver: run the SVF-safety passes over programs and workloads.

This is the library API behind ``repro lint``:

* :func:`lint_program` — lint one assembled :class:`Program`;
* :func:`lint_assembly` — convenience for hand-written assembler text;
* :func:`lint_workload` — compile one registry workload and lint it;
* :func:`lint_all` — every registry benchmark (including the
  partial-word extension), one report per workload.

A lint run is purely static — no emulation — so linting the whole
suite costs roughly one compile per workload and is cheap enough to
gate every simulation campaign (and CI) on a clean result.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.cfg import build_cfg
from repro.analysis.report import LintReport
from repro.analysis.stackcheck import check_program
from repro.isa.instructions import Program


def lint_program(program: Program, name: str = "program") -> LintReport:
    """Run every stack-discipline pass over one assembled program."""
    pcfg = build_cfg(program)
    diagnostics = check_program(program, pcfg)
    return LintReport(
        name=name,
        diagnostics=diagnostics,
        instruction_count=len(program),
        function_count=len(pcfg.functions),
    )


def lint_assembly(source: str, entry: str = "main",
                  name: str = "assembly") -> LintReport:
    """Assemble ``source`` and lint the result.

    A source without the entry label (e.g. an empty file) still lints:
    it assembles as a functionless program and reports clean with an
    explicit "(no functions)" note rather than failing.
    """
    from repro.isa.assembler import AssemblerError, assemble

    try:
        program = assemble(source, entry=entry)
    except AssemblerError as exc:
        if "missing entry label" not in str(exc):
            raise
        program = assemble(f"{source}\n{entry}:\n", entry=entry)
    return lint_program(program, name=name)


def lint_workload(
    benchmark: str,
    input_name: Optional[str] = None,
    options=None,
) -> LintReport:
    """Compile one registry workload and lint the generated code."""
    from repro.workloads import workload

    work = workload(benchmark, input_name)
    return lint_program(work.program(options), name=work.full_name)


def lint_all(options=None, jobs: Optional[int] = None) -> List[LintReport]:
    """Lint every registry benchmark (first input set of each).

    Covers the twelve Table-1 workloads plus the ``ext.x86mix``
    partial-word extension — all 13 registry entries.  ``jobs`` fans
    the suite over the parallel engine (``None``/``1`` runs inline);
    reports come back in registry order either way.
    """
    from repro.workloads import ALL_BENCHMARKS

    if jobs is None or jobs == 1:
        return [
            lint_workload(benchmark, options=options)
            for benchmark in ALL_BENCHMARKS
        ]

    from repro.harness.parallel import EngineOptions, TaskCell, run_cells

    params = ()
    if options is not None:
        params = (("opt_level", options.opt_level),)
    cells = [
        TaskCell(section="lint", benchmark=benchmark, window=None,
                 params=params)
        for benchmark in ALL_BENCHMARKS
    ]
    outcomes = run_cells(
        cells, EngineOptions(jobs=jobs, cache_dir=None)
    )
    reports: List[LintReport] = []
    for outcome in outcomes:
        if not outcome.ok:
            raise RuntimeError(
                f"lint worker failed on {outcome.cell.benchmark}: "
                f"{outcome.error}"
            )
        reports.append(outcome.payload)
    return reports
