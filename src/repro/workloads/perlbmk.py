"""253.perlbmk — scripting-language interpreter (bytecode VM).

Models the Perl interpreter's dispatch loop: a bytecode program runs on
a VM whose *operand stack lives in the interpreter frame* as a large
local array.  The VM stack is accessed through computed addresses and
the interpreter's own locals are ``$sp``-relative, giving the large,
frequently written stack working set behind the paper's perlbmk
anomaly (its working set fits the 64 KB L1 but not an 8 KB stack
cache, Figure 7).
"""

from __future__ import annotations

from repro.workloads.common import rand_source

# Opcodes: 0=halt 1=push 2=add 3=sub 4=mul 5=dup 6=swap 7=jgtz 8=call 9=mod
_TEMPLATE = """
int code[{code_size}];
int code_length = 0;
int dispatch_count = 0;

int emit(int op, int operand) {{
    code[code_length] = op;
    code[code_length + 1] = operand;
    code_length += 2;
    return code_length;
}}

int native_helper(int x) {{
    int local_table[8];
    for (int i = 0; i < 8; i += 1) {{
        local_table[i] = x * (i + 3);
    }}
    int acc = 0;
    for (int i = 0; i < 8; i += 1) {{
        acc ^= local_table[i];
    }}
    return acc & 1023;
}}

int interpret() {{
    int vm_stack[{vm_stack}];
    // Scrub the operand stack before each script, like the
    // interpreter's mark-stack initialization: the whole 8 KB frame
    // is written every invocation, so the active stack working set
    // exceeds any stack-cache capacity (the paper's perlbmk anomaly)
    // and dirties words that each native call pushes out of the SVF
    // window (its Table 3 out-traffic).
    for (int i = 0; i < {vm_stack}; i += 1) {{
        vm_stack[i] = i ^ code_length;
    }}
    int sp_index = 0;
    int pc = 0;
    int result = 0;
    while (pc < code_length) {{
        int op = code[pc];
        int operand = code[pc + 1];
        pc += 2;
        dispatch_count += 1;
        if (op == 0) {{
            break;
        }}
        if (op == 1) {{
            vm_stack[sp_index] = operand;
            sp_index += 1;
        }}
        if (op == 2 && sp_index >= 2) {{
            vm_stack[sp_index - 2] = vm_stack[sp_index - 2] + vm_stack[sp_index - 1];
            sp_index -= 1;
        }}
        if (op == 3 && sp_index >= 2) {{
            vm_stack[sp_index - 2] = vm_stack[sp_index - 2] - vm_stack[sp_index - 1];
            sp_index -= 1;
        }}
        if (op == 4 && sp_index >= 2) {{
            vm_stack[sp_index - 2] = (vm_stack[sp_index - 2] * vm_stack[sp_index - 1]) & 1048575;
            sp_index -= 1;
        }}
        if (op == 5 && sp_index >= 1 && sp_index < {vm_stack}) {{
            vm_stack[sp_index] = vm_stack[sp_index - 1];
            sp_index += 1;
        }}
        if (op == 6 && sp_index >= 2) {{
            int tmp = vm_stack[sp_index - 1];
            vm_stack[sp_index - 1] = vm_stack[sp_index - 2];
            vm_stack[sp_index - 2] = tmp;
        }}
        if (op == 7 && sp_index >= 1) {{
            sp_index -= 1;
            if (vm_stack[sp_index] > 0 && operand < code_length) {{
                pc = operand;
            }}
        }}
        if (op == 8 && sp_index >= 1) {{
            vm_stack[sp_index - 1] = native_helper(vm_stack[sp_index - 1]);
        }}
        if (op == 9 && sp_index >= 2) {{
            int divisor = vm_stack[sp_index - 1];
            if (divisor == 0) {{
                divisor = 1;
            }}
            vm_stack[sp_index - 2] = vm_stack[sp_index - 2] % divisor;
            sp_index -= 1;
        }}
        if (sp_index >= {vm_stack}) {{
            sp_index = {vm_stack} - 1;
        }}
    }}
    if (sp_index > 0) {{
        result = vm_stack[sp_index - 1];
    }}
    return result;
}}

int generate_script(int flavor) {{
    code_length = 0;
    emit(1, 7 + flavor);
    emit(1, {loop_count});
    // loop body: duplicate counter, do arithmetic, decrement, loop
    int loop_start = code_length;
    emit(5, 0);
    emit(8, 0);
    emit(1, 3);
    emit(4, 0);
    emit(1, 17);
    emit(9, 0);
    emit(3, 0);
    emit(1, 1);
    emit(3, 0);
    emit(5, 0);
    emit(7, loop_start);
    emit(0, 0);
    return code_length;
}}

int main() {{
    int checksum = 0;
    for (int script = 0; script < {scripts}; script += 1) {{
        generate_script(rand31() & 7);
        checksum += interpret();
    }}
    print(checksum);
    print(dispatch_count);
    return 0;
}}
"""


def make_source(
    scripts: int = 16,
    loop_count: int = 60,
    vm_stack: int = 2048,
    code_size: int = 128,
    seed: int = 253,
) -> str:
    """Build the perlbmk workload (``vm_stack`` sets frame size)."""
    return rand_source(seed) + _TEMPLATE.format(
        scripts=scripts,
        loop_count=loop_count,
        vm_stack=vm_stack,
        code_size=code_size,
    )


INPUTS = {"scrabbl": dict(seed=253)}
