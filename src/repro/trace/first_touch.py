"""First-touch analysis of stack words (paper Section 7, contribution 1).

The paper lists among the distinguishing characteristics of stack
references "a much higher percentage of first reference store
operations (making per word valid bits attractive)": a word exposed by
stack growth is uninitialized, so its first access after allocation is
almost always a store.  A conventional cache cannot exploit this (it
fills the line either way); the SVF's valid bits turn it into zero
fill traffic.

:class:`FirstTouchProfile` measures it directly: it tracks allocation
events via ``$sp`` decreases and classifies the first reference to
each newly exposed quad-word.  For contrast it also classifies first
touches to non-stack (global/heap) words, where loads come first far
more often.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.trace.records import TraceRecord
from repro.trace.regions import is_stack_address


@dataclass
class FirstTouchProfile:
    """Streaming trace sink measuring first-touch store fractions."""

    #: stack words allocated (exposed by an $sp decrease) but untouched
    _pending: Set[int] = field(default_factory=set)
    _previous_sp: int = 0
    _seen_other: Dict[int, bool] = field(default_factory=dict)
    #: max words tracked per allocation (guards giant frames)
    allocation_cap: int = 4096

    stack_first_stores: int = 0
    stack_first_loads: int = 0
    other_first_stores: int = 0
    other_first_loads: int = 0

    def append(self, record: TraceRecord) -> None:
        if self._previous_sp == 0:
            self._previous_sp = record.sp_value
        if record.is_load or record.is_store:
            word = record.addr & ~7
            if is_stack_address(record.addr):
                if word in self._pending:
                    self._pending.discard(word)
                    if record.is_store:
                        self.stack_first_stores += 1
                    else:
                        self.stack_first_loads += 1
            elif word not in self._seen_other:
                self._seen_other[word] = True
                if record.is_store:
                    self.other_first_stores += 1
                else:
                    self.other_first_loads += 1
        if record.sp_update:
            new_sp = record.sp_value
            if new_sp < self._previous_sp:
                exposed = min(
                    (self._previous_sp - new_sp) // 8, self.allocation_cap
                )
                for index in range(exposed):
                    self._pending.add(new_sp + 8 * index)
            else:
                # Deallocation kills pending-but-untouched words.
                for word in [
                    w for w in self._pending if w < new_sp
                ]:
                    self._pending.discard(word)
            self._previous_sp = new_sp

    @property
    def stack_first_store_fraction(self) -> float:
        """Fraction of freshly allocated stack words written first."""
        total = self.stack_first_stores + self.stack_first_loads
        if total == 0:
            return 0.0
        return self.stack_first_stores / total

    @property
    def other_first_store_fraction(self) -> float:
        """Same metric for global/heap words (the contrast)."""
        total = self.other_first_stores + self.other_first_loads
        if total == 0:
            return 0.0
        return self.other_first_stores / total
