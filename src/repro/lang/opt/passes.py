"""Dataflow-driven optimization passes over assembled programs.

All four passes run on the :mod:`repro.analysis` infrastructure — the
reconstructed :class:`FunctionCFG`, the worklist solver, and the
entry-relative frame-slot canonicalization of :class:`FrameContext` —
so the optimizer proves its facts with exactly the machinery the lint
passes use to check them.

``forward-slots``
    Redundant-load forwarding.  A forward must-analysis tracks
    ``(entry-relative quad offset, register)`` pairs that are known to
    hold the slot's current value (established by a ``stq`` or ``ldq``
    of that slot).  A later ``ldq`` of an available slot becomes a
    register move, or disappears entirely when its own destination
    already holds the value (the reload-after-spill pattern).

``dead-stores``
    Liveness-driven dead-store elimination for private frame slots,
    reusing the lint ``dead-store`` pass verbatim: every store it
    proves unobservable before frame death is deleted.  This is the
    static twin of the SVF's dirty-bit writeback elision — the
    optimizer removes at compile time what the hardware would kill at
    frame death.

``dead-code``
    Backward register liveness over the full register file; effect-free
    instructions (``lda``, ALU except the trapping ``divq``/``remq``,
    loads from tracked frame slots) whose destination is dead are
    deleted.  Mops up the moves and address computations the first two
    passes orphan.

``coalesce-slots``
    Frame-slot coalescing: private, whole-quad scalar slots whose live
    ranges never overlap are merged onto one representative offset,
    shrinking the frame's hot footprint (the frame allocation itself
    is left untouched, so frame-bounds discipline is preserved).

Passes that change the memory image (``dead-stores``,
``coalesce-slots``) are gated on a program-wide precondition: every
function analyzable, no frame-bounds/sp-balance errors, and no
first-read warnings anywhere.  Under that discipline — which is also
the SVF paper's own assumption about compiled stack code — a frame
slot's lifetime ends at frame death and no later activation can
observe stale bytes, so dropping or relocating dead stores is
invisible to the program.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.cfg import FunctionCFG
from repro.analysis.dataflow import BACKWARD, SetProblem, solve
from repro.analysis.stackcheck import FrameContext, dead_store_pass
from repro.isa.instructions import Instruction, OpClass
from repro.isa.registers import (
    ARG_REGISTERS,
    FP,
    GP,
    RA,
    SP,
    TEMP_REGISTERS,
    V0,
    ZERO,
)
from repro.lang.opt.ir import EditSet

#: Registers a callee may clobber: pairs bound to them die at calls.
_CALLER_SAVED = (
    frozenset(TEMP_REGISTERS) | frozenset(ARG_REGISTERS) | {V0, RA}
)

#: Registers assumed live at every function exit: everything the
#: calling convention lets the caller observe (return value, callee
#: saves, the stack/frame/global pointers, the return address).
_EXIT_LIVE = frozenset(range(32)) - frozenset(TEMP_REGISTERS) - frozenset(
    ARG_REGISTERS
) - {ZERO} | {V0}


def _is_quad_slot(slot: Optional[Tuple[int, int]]) -> bool:
    return slot is not None and slot[1] == 8 and slot[0] % 8 == 0


# ---------------------------------------------------------------------------
# forward-slots: redundant-load forwarding
# ---------------------------------------------------------------------------


class _AvailablePairs(SetProblem):
    """Must-analysis: ``(quad offset, register)`` pairs where the
    register is known to hold the slot's current value."""

    may = False
    direction = "forward"

    def __init__(self, context: FrameContext):
        self.context = context

    def step(self, cfg, index, value):
        _available_step(self.context, index, value)


def _kill_register(value: set, register: int) -> None:
    for pair in [p for p in value if p[1] == register]:
        value.discard(pair)


def _kill_overlap(value: set, offset: int, size: int) -> None:
    for pair in [
        p for p in value
        if p[0] < offset + size and offset < p[0] + 8
    ]:
        value.discard(pair)


def _kill_exposed(context: FrameContext, value: set) -> None:
    """Kill pairs whose slot is reachable through a taken address."""
    for pair in [
        p for p in value if not context.is_private(p[0], 8)
    ]:
        value.discard(pair)


def _available_step(context: FrameContext, index: int, value: set) -> None:
    instruction = context.cfg.instruction(index)
    if instruction.is_store:
        slot = context.slot(index)
        if slot is None:
            # Computed-address store: may hit any aliased slot.
            _kill_exposed(context, value)
            return
        _kill_overlap(value, slot[0], slot[1])
        if _is_quad_slot(slot):
            value.add((slot[0], instruction.rd))
        return
    if instruction.is_load:
        _kill_register(value, instruction.rd)
        slot = context.slot(index)
        if _is_quad_slot(slot) and instruction.rd != ZERO:
            value.add((slot[0], instruction.rd))
        return
    if instruction.is_call:
        # The callee may clobber caller-saved registers, write aliased
        # slots through escaped pointers, and overwrite anything below
        # the current $sp with its own frame.
        for register in _CALLER_SAVED:
            _kill_register(value, register)
        _kill_exposed(context, value)
        sp, _fp = context.offsets.get(index, (None, None))
        if isinstance(sp, int):
            for pair in [p for p in value if p[0] < sp]:
                value.discard(pair)
        return
    destination = instruction.destination_register()
    if destination is not None:
        _kill_register(value, destination)


def forward_loads_pass(context: FrameContext, edits: EditSet) -> Dict[str, int]:
    """Rewrite redundant quad loads of available frame slots."""
    cfg = context.cfg
    result = solve(cfg, _AvailablePairs(context))
    reachable = context.reachable
    counts = {"forwarded": 0, "deleted": 0}
    for block in cfg.blocks:
        if block.id not in reachable:
            continue
        fact = result.inputs[block.id]
        value = set() if fact is None else set(fact)
        for index in block.indices():
            instruction = cfg.instruction(index)
            slot = context.slot(index)
            if (
                instruction.is_load
                and _is_quad_slot(slot)
                and instruction.rd != ZERO
            ):
                holders = sorted(
                    register for offset, register in value
                    if offset == slot[0]
                )
                if instruction.rd in holders:
                    # The destination already holds the value: the
                    # reload-after-spill pattern.  Drop the load.
                    edits.delete(index)
                    counts["deleted"] += 1
                elif holders:
                    edits.replace(index, Instruction(
                        "addq",
                        ra=holders[0],
                        imm=0,
                        rd=instruction.rd,
                    ))
                    counts["forwarded"] += 1
            _available_step(context, index, value)
    return counts


# ---------------------------------------------------------------------------
# dead-stores: writebacks the SVF would kill, removed statically
# ---------------------------------------------------------------------------


def dead_store_elimination(context: FrameContext, edits: EditSet) -> int:
    """Delete every store the lint ``dead-store`` pass proves dead."""
    deleted = 0
    for diagnostic in dead_store_pass(context):
        edits.delete(diagnostic.index)
        deleted += 1
    return deleted


# ---------------------------------------------------------------------------
# dead-code: effect-free instructions with dead destinations
# ---------------------------------------------------------------------------


class _LiveRegisters(SetProblem):
    """May-analysis (backward): registers whose value is still needed."""

    may = True
    direction = BACKWARD

    def boundary(self, cfg):
        return _EXIT_LIVE

    def step(self, cfg, index, value):
        _live_register_step(cfg.instruction(index), value)


def _live_register_step(instruction: Instruction, value: set) -> None:
    if instruction.is_call:
        # The callee may read its argument registers and everything
        # addressed off the stack/global pointers; its writes to $ra
        # and $v0 are not treated as kills (conservative).
        value.update(ARG_REGISTERS)
        value.update((SP, FP, GP))
    else:
        destination = instruction.destination_register()
        if destination is not None:
            value.discard(destination)
    value.update(instruction.source_registers())


def _deletable_without_side_effects(
    context: FrameContext, index: int, instruction: Instruction
) -> bool:
    if instruction.op in ("divq", "remq"):
        return False  # may trap on a zero divisor
    if instruction.op_class in (OpClass.IALU, OpClass.IMULT):
        return True  # includes lda
    if instruction.is_load:
        # Only loads from tracked constant frame slots are provably
        # safe to drop; a computed address could fault.
        return context.slot(index) is not None
    return False


def dead_code_pass(context: FrameContext, edits: EditSet) -> int:
    """Delete effect-free instructions whose destination is dead."""
    cfg = context.cfg
    result = solve(cfg, _LiveRegisters())
    deleted = 0
    for block in cfg.blocks:
        if block.id not in context.reachable:
            continue
        live = set(result.inputs[block.id])
        for index in reversed(list(block.indices())):
            instruction = cfg.instruction(index)
            destination = instruction.destination_register()
            if (
                destination is not None
                and destination not in live
                and _deletable_without_side_effects(
                    context, index, instruction
                )
            ):
                edits.delete(index)
                deleted += 1
                # A deleted instruction reads nothing: skip its step so
                # whole dead chains fall in one walk.
                continue
            _live_register_step(instruction, live)
    return deleted


# ---------------------------------------------------------------------------
# coalesce-slots: merge disjointly-live private quad slots
# ---------------------------------------------------------------------------


class _PrivateByteLiveness(SetProblem):
    """May-analysis (backward): private frame bytes read later."""

    may = True
    direction = BACKWARD

    def __init__(self, context: FrameContext):
        self.context = context

    def step(self, cfg, index, value):
        _private_live_step(self.context, index, value)


def _private_live_step(context: FrameContext, index: int, value: set) -> None:
    instruction = context.cfg.instruction(index)
    slot = context.slot(index)
    if slot is None or not context.is_private(*slot):
        return
    offset, size = slot
    if instruction.is_load:
        value.update(range(offset, offset + size))
    elif instruction.is_store:
        value.difference_update(range(offset, offset + size))


def _coalesce_candidates(
    context: FrameContext,
) -> Tuple[Set[int], Dict[int, List[int]]]:
    """Offsets eligible for merging and their access sites.

    A quad offset qualifies when every access to its bytes is a
    whole-quad constant access to a private slot — a scalar local or
    spill slot, never an array element or a partially-written word —
    made at the frame's full depth, so a remapped displacement can
    never reach below ``$sp`` in code that moves ``$sp`` mid-function.
    """
    accesses: Dict[int, List[int]] = defaultdict(list)
    partial_bytes: Set[int] = set()
    ineligible: Set[int] = set()
    for block in context.cfg.blocks:
        for index in block.indices():
            instruction = context.cfg.instruction(index)
            if not instruction.is_mem:
                continue
            slot = context.slot(index)
            if slot is None or not context.is_private(*slot):
                continue
            if _is_quad_slot(slot):
                accesses[slot[0]].append(index)
                sp, _fp = context.offsets.get(index, (None, None))
                if sp != context.deepest_sp:
                    ineligible.add(slot[0])
            else:
                partial_bytes.update(range(slot[0], slot[0] + slot[1]))
    candidates = {
        offset for offset in accesses
        if offset not in ineligible
        and not partial_bytes.intersection(range(offset, offset + 8))
    }
    return candidates, accesses


def coalesce_slots_pass(context: FrameContext, edits: EditSet) -> int:
    """Merge disjointly-live candidate slots onto representatives."""
    cfg = context.cfg
    candidates, accesses = _coalesce_candidates(context)
    if len(candidates) < 2:
        return 0
    liveness = solve(cfg, _PrivateByteLiveness(context))

    # A slot live into the function entry is read before any write on
    # some path; relocating it would change which bytes that read sees.
    entry_live = liveness.outputs[cfg.entry.id]
    candidates = {
        offset for offset in candidates
        if not entry_live.intersection(range(offset, offset + 8))
    }
    if len(candidates) < 2:
        return 0

    # Def-point interference: a store into one candidate while another
    # candidate's bytes are still live-after means their live ranges
    # overlap.  With no read-before-write paths (checked above) every
    # live range starts at a store, so this catches every overlap.
    interference: Set[Tuple[int, int]] = set()
    for block in cfg.blocks:
        if block.id not in context.reachable:
            continue
        live = set(liveness.inputs[block.id])
        for index in reversed(list(block.indices())):
            instruction = cfg.instruction(index)
            slot = context.slot(index)
            if (
                instruction.is_store
                and _is_quad_slot(slot)
                and slot[0] in candidates
            ):
                for other in candidates:
                    if other != slot[0] and live.intersection(
                        range(other, other + 8)
                    ):
                        interference.add(
                            (min(slot[0], other), max(slot[0], other))
                        )
            _private_live_step(context, index, live)

    # Greedy assignment in deterministic (deepest-first) order.
    groups: List[List[int]] = []
    assignment: Dict[int, int] = {}
    for offset in sorted(candidates):
        for group in groups:
            if all(
                (min(offset, member), max(offset, member))
                not in interference
                for member in group
            ):
                group.append(offset)
                assignment[offset] = group[0]
                break
        else:
            groups.append([offset])
            assignment[offset] = offset

    merged = 0
    for offset, representative in assignment.items():
        if representative == offset:
            continue
        merged += 1
        delta = representative - offset
        for index in accesses[offset]:
            instruction = cfg.instruction(index)
            edits.replace(index, dataclasses.replace(
                instruction, imm=instruction.imm + delta
            ))
    return merged
