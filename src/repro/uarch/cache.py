"""Set-associative cache model with LRU replacement and write-back.

Used for the DL1 and the unified L2 of Table 2.  The model is
functional-plus-latency: each access returns the total load-use latency
implied by where the data was found (DL1 hit = 3, L2 hit = 16,
memory = 16 + 60 cycles with the paper's parameters), and traffic
counters record line movements.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.uarch.config import CacheConfig


class Cache:
    """One cache level; ``next_level`` chains to the L2 / memory."""

    def __init__(
        self,
        config: CacheConfig,
        next_level: Optional["Cache"] = None,
        memory_latency: int = 60,
        name: str = "cache",
    ):
        self.config = config
        self.name = name
        self.next_level = next_level
        self.memory_latency = memory_latency
        self.num_sets = max(1, config.size // (config.line_size * config.assoc))
        #: set index -> list of (tag, dirty), most recent last
        self._sets: Dict[int, List[Tuple[int, bool]]] = {}
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.fills = 0

    def _locate(self, addr: int) -> Tuple[int, int]:
        line_number = addr // self.config.line_size
        return line_number % self.num_sets, line_number // self.num_sets

    def access(self, addr: int, is_write: bool = False) -> int:
        """Access one address; returns the total latency in cycles."""
        index, tag = self._locate(addr)
        ways = self._sets.setdefault(index, [])
        for position, (way_tag, dirty) in enumerate(ways):
            if way_tag == tag:
                self.hits += 1
                ways.pop(position)
                ways.append((tag, dirty or is_write))
                return self.config.latency
        # Miss: fetch from the next level (or memory).
        self.misses += 1
        self.fills += 1
        if self.next_level is not None:
            below = self.next_level.access(addr, is_write=False)
        else:
            below = self.memory_latency
        if len(ways) >= self.config.assoc:
            _, victim_dirty = ways.pop(0)
            if victim_dirty:
                self.writebacks += 1
                if self.next_level is not None:
                    self.next_level.mark_dirty_fill()
        ways.append((tag, is_write))
        # Total load-use latency: this level's lookup plus the fill.
        return self.config.latency + below

    def mark_dirty_fill(self) -> None:
        """Account for a writeback arriving from the level above."""
        # Writebacks are absorbed by write buffers; no latency modeled.
        pass

    def probe(self, addr: int) -> bool:
        """True if ``addr`` is currently resident (no state change)."""
        index, tag = self._locate(addr)
        return any(t == tag for t, _ in self._sets.get(index, ()))

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.misses / total


def build_hierarchy(
    dl1: CacheConfig, l2: CacheConfig, memory_latency: int
) -> Tuple[Cache, Cache]:
    """Build the DL1 -> L2 -> memory chain of Table 2."""
    level2 = Cache(l2, next_level=None, memory_latency=memory_latency, name="L2")
    level1 = Cache(dl1, next_level=level2, name="DL1")
    return level1, level2
