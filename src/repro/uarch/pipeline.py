"""One-pass out-of-order timing model (modified-SimpleScalar analogue).

The model replays the dynamic instruction stream produced by the
functional emulator and computes, for every instruction, the cycle at
which it is fetched, dispatched, issued, completed and committed,
subject to:

* fetch bandwidth, IFQ occupancy and branch-redirect bubbles;
* a unified RUU window (dispatch stalls when the instruction
  ``ruu_size`` older has not committed) and an LSQ window for memory
  operations — the paper's Register Update Unit organization;
* issue width, integer ALU/multiplier pools and cache-port pools;
* the DL1/L2/memory hierarchy of Table 2, with 3-cycle store
  forwarding in the LSQ;
* in-order commit bandwidth.

The stack unit is pluggable (``config.svf.mode``):

``none``
    every reference uses a DL1 port.
``svf``
    ``$sp``-relative references inside the SVF window are *morphed*
    into register moves: the base-register (address calculation)
    dependence disappears, the access uses an SVF port with 1-cycle
    latency, and store→load communication happens through the rename
    map (``entry_ready``) instead of the 3-cycle LSQ poll.  Non-``$sp``
    stack references in range are re-routed at cache-like latency;
    gpr-store → sp-load collisions cost a pipeline squash (Section
    3.2) unless the ``no_squash`` code-generation option is set.
``ideal``
    Figure 5's limit study: every stack reference morphs, with
    unbounded capacity and ports.
``stack_cache``
    the decoupled stack cache: stack references use stack-cache ports
    and refill from the L2; every miss moves whole lines.

The loop reads the trace column-wise (:class:`ColumnarTrace`; other
iterables are packed on entry).  Two implementations share the exact
cycle-for-cycle semantics and are differentially gated against each
other:

* :func:`_simulate_reference` — the pure-python reference walk.  It
  probes the per-cycle resource pools as raw ``{cycle: used}`` dicts
  (the structural semantics of
  :class:`repro.uarch.resources.CyclePool`, inlined because pool
  probes dominate the profile).
* :func:`_simulate_fast` — the vectorized-window walk, used when the
  numpy backend is enabled.  Columns become flat lists once, derived
  per-instruction values (quad-word address, stack-region test, FU
  latency class) are precomputed as whole-column numpy expressions,
  and the occupancy pools live in dense
  :class:`~repro.uarch.resources.CycleWindow` windows so each
  probe/take is two list indexings instead of dict hashing.
"""

from __future__ import annotations

import copy
import os
from collections import deque
from time import perf_counter
from typing import Iterable, List, Optional

from repro import profiling
from repro.core.stack_cache import StackCache
from repro.core.svf import StackValueFile
from repro.isa.encoding import OPCODE_NUMBERS
from repro.isa.instructions import OPCODES, OpClass
from repro.isa.registers import NUM_REGISTERS, SP
from repro.trace import columnar as _columnar
from repro.trace.columnar import ColumnarTrace
from repro.trace.regions import STACK_REGION_FLOOR
from repro.uarch.bpred import make_predictor
from repro.uarch.cache import build_hierarchy
from repro.uarch.config import MachineConfig
from repro.uarch.resources import CycleWindow, grow_windows
from repro.uarch.stats import SimStats

_DIV_OPS = ("divq", "remq")

#: Completion latency of IMULT ops by opcode number (0 = not an IMULT).
_MULT_LATENCY = [0] * (len(OPCODE_NUMBERS) + 1)
for _name, _num in OPCODE_NUMBERS.items():
    if OPCODES[_name].op_class is OpClass.IMULT:
        _MULT_LATENCY[_num] = 20 if _name in _DIV_OPS else 3

_LDA = OPCODE_NUMBERS["lda"]

#: Integer route codes for memory references.
_R_DL1 = 0
_R_FAST = 1
_R_REROUTE = 2
_R_SC = 3

#: Chunk size for the batched round-robin drive: large enough that the
#: per-chunk generator hand-off cost vanishes, small enough that every
#: config's walk revisits the same stretch of columns while it is warm.
_BATCH_CHUNK = 16384

_BATCH_ENABLED = os.environ.get("REPRO_BATCH", "1") != "0"


def batch_enabled() -> bool:
    """Is the batched multi-config engine enabled?

    Defaults to on; export ``REPRO_BATCH=0`` (worker processes inherit
    it) or call :func:`set_batch_enabled` to force the sequential
    per-config reference path.
    """
    return _BATCH_ENABLED


def set_batch_enabled(enabled: bool) -> bool:
    """Enable/disable batched simulation; returns the previous setting."""
    global _BATCH_ENABLED
    previous = _BATCH_ENABLED
    _BATCH_ENABLED = bool(enabled)
    return previous


def simulate(trace: Iterable, config: MachineConfig) -> SimStats:
    """Run the timing model over a trace; returns :class:`SimStats`.

    Dispatches to the vectorized-window walk when the numpy backend is
    enabled (:func:`repro.trace.columnar.set_numpy_enabled`), else to
    the pure-python reference walk; the two are cycle-identical.
    """
    if not isinstance(trace, ColumnarTrace):
        trace = ColumnarTrace.from_records(trace)
    if _columnar._np is not None and _columnar._NUMPY_ENABLED:
        return _simulate_fast(trace, config)
    return _simulate_reference(trace, config)


def simulate_batch(trace: Iterable, configs) -> List[SimStats]:
    """Evaluate many configs in one pass over the trace.

    Returns one :class:`SimStats` per config, in input order, each
    stat-identical to what sequential per-config :func:`simulate`
    calls would produce (``tests/test_pipeline_batch.py`` is the
    differential gate).  The win is structural: every config's walk is
    a chunk-resumable generator, and a round-robin driver interleaves
    them through the columns one :data:`_BATCH_CHUNK` at a time, so
    the trace is walked once per batch instead of once per config; on
    the numpy leg all steppers additionally share one
    :class:`_FastColumns` precompute.  Duplicate configs (a common
    case: ablation grids share one baseline) are simulated once and
    returned as independent copies.

    With batching disabled (:func:`set_batch_enabled` /
    ``REPRO_BATCH=0``) or a single config this degrades to sequential
    :func:`simulate` calls and emits no batch counters.
    """
    configs = list(configs)
    if not isinstance(trace, ColumnarTrace):
        trace = ColumnarTrace.from_records(trace)
    if not configs:
        return []
    if len(configs) == 1 or not _BATCH_ENABLED:
        return [simulate(trace, config) for config in configs]

    # MachineConfig is frozen/hashable: dedup to one walk per distinct
    # config, insertion-ordered so walk order is deterministic.
    slots: dict = {}
    for config in configs:
        if config not in slots:
            slots[config] = len(slots)
    unique = list(slots)

    profiler = profiling.active()
    profile_started = perf_counter() if profiler is not None else 0.0
    n = len(trace.pc)
    if _columnar._np is not None and _columnar._NUMPY_ENABLED:
        columns = _FastColumns(trace)
        steppers = [_fast_stepper(config, columns) for config in unique]
    else:
        steppers = [
            _reference_stepper(trace, config) for config in unique
        ]
    for stepper in steppers:
        next(stepper)
    lo = 0
    while lo < n:
        hi = lo + _BATCH_CHUNK
        if hi > n:
            hi = n
        for stepper in steppers:
            stepper.send((lo, hi))
        lo = hi
    results = [_finish_stepper(stepper) for stepper in steppers]
    if profiler is not None:
        profiler.note(
            "timing", perf_counter() - profile_started, n * len(unique)
        )
        profiler.count("batch_configs", len(configs))
        profiler.count("batch_walks_saved", len(configs) - 1)

    out: List[SimStats] = []
    claimed = set()
    for config in configs:
        slot = slots[config]
        stats = results[slot]
        if slot in claimed:
            stats = copy.deepcopy(stats)
        else:
            claimed.add(slot)
        out.append(stats)
    return out


def _finish_stepper(stepper) -> SimStats:
    """Finalize a timing stepper; returns its :class:`SimStats`."""
    try:
        stepper.send(None)
    except StopIteration as stop:
        return stop.value
    raise RuntimeError("timing stepper yielded after finalization")


def _simulate_reference(trace: ColumnarTrace, config: MachineConfig) -> SimStats:
    """Pure-python reference walk (dict pools; see module docstring)."""
    profiler = profiling.active()
    profile_started = perf_counter() if profiler is not None else 0.0
    stepper = _reference_stepper(trace, config)
    next(stepper)
    stepper.send((0, len(trace.pc)))
    stats = _finish_stepper(stepper)
    if profiler is not None:
        profiler.note(
            "timing", perf_counter() - profile_started, len(trace.pc)
        )
    return stats


def _reference_stepper(trace: ColumnarTrace, config: MachineConfig):
    """Resumable reference walk: a generator driven in index chunks.

    Runs setup up to its first ``yield``, then walks every half-open
    ``(lo, hi)`` index range sent into it, carrying all
    microarchitectural state across chunks; sending ``None`` finalizes
    and raises ``StopIteration`` whose ``value`` is the
    :class:`~repro.uarch.stats.SimStats`.  Driven with one ``(0, n)``
    chunk by :func:`_simulate_reference` (so the solo path pays no
    per-instruction overhead over the pre-batch loop) and round-robin
    in :data:`_BATCH_CHUNK`-sized chunks by :func:`simulate_batch`.
    """
    stats = SimStats(config_name=config.name)
    predictor = make_predictor(config.branch_predictor)
    # Perfect prediction is the common case; skip the call entirely.
    predict_bits = getattr(predictor, "predict_bits", None)
    if config.branch_predictor == "perfect":
        predict_bits = None
    dl1, l2 = build_hierarchy(config.dl1, config.l2, config.memory_latency)

    svf_conf = config.svf
    mode = svf_conf.mode
    svf: Optional[StackValueFile] = None
    stack_cache: Optional[StackCache] = None
    if mode == "svf":
        svf = StackValueFile(
            capacity_bytes=svf_conf.capacity_bytes,
            granularity=svf_conf.granularity,
        )
        # Writebacks land in the DL1 (write-back path), so data the SVF
        # spills can be re-read at L1 latency.
        svf.writeback_sink = lambda addr: dl1.access(addr, is_write=True)
    elif mode == "stack_cache":
        stack_cache = StackCache(capacity_bytes=svf_conf.capacity_bytes)

    # Resource pools as raw {cycle: units-used} dicts (CyclePool,
    # inlined): the earliest cycle >= floor with a free unit wins.
    fetch_used: dict = {}
    fetch_width = config.decode_width
    dispatch_used: dict = {}
    dispatch_width = config.decode_width
    issue_used: dict = {}
    issue_width = config.issue_width
    commit_used: dict = {}
    commit_width = config.commit_width
    alu_used: dict = {}
    alu_width = config.int_alus
    mult_used: dict = {}
    mult_width = config.int_mults
    dl1_used: dict = {}
    dl1_width = config.dl1_ports
    stack_used: Optional[dict] = None
    stack_width = svf_conf.ports
    if mode in ("svf", "stack_cache"):
        stack_used = {}
    # Banked SVF: one single-ported pool per bank, selected by the
    # low-order word-address bits (conclusion of the paper: banking is
    # the cheap alternative to true multiporting).
    bank_used = None
    num_banks = svf_conf.banks
    if mode == "svf" and num_banks > 0:
        bank_used = [dict() for _ in range(num_banks)]

    reg_ready = [0] * NUM_REGISTERS
    entry_ready = {}  # SVF quad-word -> cycle its renamed value is ready
    last_store = {}  # quad-word -> (index, complete) for LSQ forwarding
    pending_gpr_store = {}  # quad-word -> (index, complete) for squashes

    ifq_size = config.ifq_size
    ruu_size = config.ruu_size
    lsq_size = config.lsq_size
    ifq_ring = deque(maxlen=ifq_size)
    ruu_ring = deque(maxlen=ruu_size)
    lsq_ring = deque(maxlen=lsq_size)

    redirect_at = 0
    decode_block = 0
    prev_dispatch = 0
    last_commit = 0
    sp_seen = False
    # Adaptive disable (Section 3.3): watch the squash rate and shut
    # the SVF off for a cooling period when it misbehaves locally.
    adaptive = svf_conf.adaptive and mode == "svf"
    svf_disabled_until = -1
    window_end = svf_conf.adaptive_window
    window_squashes = 0
    disables = 0
    forward_latency = config.store_forward_latency
    frontend_depth = config.frontend_depth
    dl1_latency = config.dl1.latency
    agu_depth = config.agu_depth
    no_addr_calc = config.no_addr_calc
    spec_sp = svf_conf.spec_sp
    mispredict_redirect = config.mispredict_redirect
    sp_block_mode = mode in ("svf", "ideal")
    mode_ideal = mode == "ideal"
    mode_svf = mode == "svf"
    mode_sc = mode == "stack_cache"
    stack_floor = STACK_REGION_FLOOR

    switch_period = config.context_switch_period
    switch_overhead = config.context_switch_overhead
    switch_bytes = 0
    switches = 0

    branches = 0
    mispredictions = 0

    col_pc = trace.pc
    col_opcode = trace.opcode
    col_flags = trace.flags
    col_size = trace.size
    col_base = trace.base
    col_dst = trace.dst
    col_nsrc = trace.nsrc
    col_src0 = trace.src0
    col_src1 = trace.src1
    col_spimm = trace.spimm
    col_addr = trace.addr
    col_sp = trace.sp
    n = len(col_pc)

    bounds = yield
    while bounds is not None:
        lo, hi = bounds
        for index in range(lo, hi):
            flags = col_flags[index]
            is_mem = flags & 3

            # ------------------------------------------- context switches
            if switch_period and index and index % switch_period == 0:
                switches += 1
                redirect_at = max(redirect_at, last_commit + switch_overhead)
                if svf is not None:
                    switch_bytes += svf.context_switch()
                    entry_ready.clear()
                    pending_gpr_store.clear()
                if stack_cache is not None:
                    switch_bytes += stack_cache.context_switch()
                last_store.clear()

            # ------------------------------------------------------ fetch
            fetch_floor = redirect_at
            if len(ifq_ring) == ifq_size:
                head = ifq_ring[0]
                if head > fetch_floor:
                    fetch_floor = head
            cycle = fetch_floor
            used = fetch_used.get(cycle, 0)
            while used >= fetch_width:
                cycle += 1
                used = fetch_used.get(cycle, 0)
            fetch_used[cycle] = used + 1
            fetch_cycle = cycle

            # ---------------------------------------------------- dispatch
            dispatch_floor = fetch_cycle + frontend_depth
            if prev_dispatch > dispatch_floor:
                dispatch_floor = prev_dispatch
            if decode_block > dispatch_floor:
                dispatch_floor = decode_block
            if len(ruu_ring) == ruu_size:
                head = ruu_ring[0]
                if head > dispatch_floor:
                    dispatch_floor = head
            if is_mem and len(lsq_ring) == lsq_size:
                head = lsq_ring[0]
                if head > dispatch_floor:
                    dispatch_floor = head
            cycle = dispatch_floor
            used = dispatch_used.get(cycle, 0)
            while used >= dispatch_width:
                cycle += 1
                used = dispatch_used.get(cycle, 0)
            dispatch_used[cycle] = used + 1
            dispatch_cycle = cycle
            prev_dispatch = dispatch_cycle
            ifq_ring.append(dispatch_cycle)

            # SVF front-end bookkeeping: the speculative $sp copy follows
            # immediate adjustments for free; any other $sp write stalls
            # decode until it resolves (Section 3.1).
            if svf is not None and not sp_seen:
                svf.update_sp(col_sp[index])
                sp_seen = True

            # ----------------------------------------------- routing
            if adaptive and index >= window_end:
                if window_squashes >= svf_conf.adaptive_threshold:
                    svf_disabled_until = index + svf_conf.adaptive_off_period
                    disables += 1
                    svf.context_switch()  # flush dirty state, go cold
                    pending_gpr_store.clear()
                window_squashes = 0
                window_end = index + svf_conf.adaptive_window

            route = _R_DL1
            qw = 0
            addr = 0
            drop_base = False
            if is_mem:
                addr = col_addr[index]
                qw = addr & ~7
                on_stack = addr >= stack_floor
                if on_stack:
                    if mode_ideal:
                        route = _R_FAST
                    elif mode_svf and (
                        not adaptive or index >= svf_disabled_until
                    ):
                        if svf.covers(addr):
                            route = (
                                _R_FAST
                                if col_base[index] == SP
                                else _R_REROUTE
                            )
                        else:
                            stats.svf_out_of_range += 1
                    elif mode_sc:
                        route = _R_SC
                drop_base = (route == _R_FAST and spec_sp) or (
                    no_addr_calc and on_stack
                )

            # ------------------------------------------------ readiness
            ready = dispatch_cycle + 1
            if is_mem and agu_depth and not drop_base:
                # Deep pipelines place address generation several stages
                # past dispatch; morphed references resolved in decode
                # skip those stages entirely (Section 3.1).
                ready += agu_depth
            nsrc = col_nsrc[index]
            if nsrc:
                if drop_base:
                    base = col_base[index]
                    src = col_src0[index]
                    if src != base and reg_ready[src] > ready:
                        ready = reg_ready[src]
                    if nsrc > 1:
                        src = col_src1[index]
                        if src != base and reg_ready[src] > ready:
                            ready = reg_ready[src]
                else:
                    when = reg_ready[col_src0[index]]
                    if when > ready:
                        ready = when
                    if nsrc > 1:
                        when = reg_ready[col_src1[index]]
                        if when > ready:
                            ready = when

            # ------------------------------------------- issue + latency
            if is_mem:
                if route == _R_DL1:
                    port_used = dl1_used
                    port_width = dl1_width
                elif route == _R_SC:
                    port_used = stack_used
                    port_width = stack_width
                elif bank_used is not None:
                    port_used = bank_used[(qw >> 3) % num_banks]
                    port_width = 1
                else:  # svf ports, or None in ideal mode (no port limit)
                    port_used = stack_used
                    port_width = stack_width
                cycle = ready
                if port_used is None:
                    used = issue_used.get(cycle, 0)
                    while used >= issue_width:
                        cycle += 1
                        used = issue_used.get(cycle, 0)
                    issue_used[cycle] = used + 1
                else:
                    while True:
                        used = issue_used.get(cycle, 0)
                        if used < issue_width:
                            port_use = port_used.get(cycle, 0)
                            if port_use < port_width:
                                issue_used[cycle] = used + 1
                                port_used[cycle] = port_use + 1
                                break
                        cycle += 1
                issue_cycle = cycle
                is_store = flags & 2
                complete = _memory_complete(
                    is_store,
                    addr,
                    col_size[index],
                    index,
                    qw,
                    route,
                    issue_cycle,
                    stats,
                    config,
                    dl1,
                    l2,
                    svf,
                    stack_cache,
                    entry_ready,
                    last_store,
                    pending_gpr_store,
                    dl1_latency,
                    forward_latency,
                )
                if route == _R_FAST and not is_store:
                    # Squash check: a pending gpr-store to the same word
                    # that has not completed by our issue time means this
                    # morphed load read a stale value (Section 3.2).
                    pending = pending_gpr_store.get(qw)
                    if (
                        pending is not None
                        and pending[0] < index
                        and pending[1] > issue_cycle
                    ):
                        if svf_conf.no_squash:
                            complete = max(complete, pending[1] + 1)
                        else:
                            stats.svf_squashes += 1
                            window_squashes += 1
                            redirect_at = max(
                                redirect_at,
                                pending[1] + svf_conf.squash_penalty,
                            )
                            complete = max(
                                complete, pending[1] + svf_conf.fast_latency
                            )
                lsq_placeholder = True
            else:
                latency = _MULT_LATENCY[col_opcode[index]]
                if latency:
                    fu_used = mult_used
                    fu_width = mult_width
                else:
                    fu_used = alu_used
                    fu_width = alu_width
                    latency = 1
                cycle = ready
                while True:
                    used = issue_used.get(cycle, 0)
                    if used < issue_width:
                        fu_use = fu_used.get(cycle, 0)
                        if fu_use < fu_width:
                            issue_used[cycle] = used + 1
                            fu_used[cycle] = fu_use + 1
                            break
                    cycle += 1
                issue_cycle = cycle
                complete = issue_cycle + latency
                lsq_placeholder = False

            # --------------------------------------------------- branches
            if flags & 4:
                branches += 1
                if predict_bits is not None and not predict_bits(
                    col_pc[index], flags & 8, flags & 16
                ):
                    mispredictions += 1
                    redirect_at = max(
                        redirect_at, complete + mispredict_redirect
                    )

            # $sp interlock: unexpected (non-immediate) updates stall
            # decode of everything younger until the new $sp resolves.
            if flags & 32:
                if svf is not None:
                    svf.update_sp(col_sp[index])
                if sp_block_mode and not (
                    col_opcode[index] == _LDA and col_spimm[index] != 0
                ):
                    # A speculative $sp copy tracks immediate adjustments
                    # for free; anything else blocks decode.
                    if complete > decode_block:
                        decode_block = complete
            # ----------------------------------------------------- commit
            cycle = complete + 1
            if last_commit > cycle:
                cycle = last_commit
            used = commit_used.get(cycle, 0)
            while used >= commit_width:
                cycle += 1
                used = commit_used.get(cycle, 0)
            commit_used[cycle] = used + 1
            commit_cycle = cycle
            last_commit = commit_cycle
            ruu_ring.append(commit_cycle)
            if lsq_placeholder:
                lsq_ring.append(commit_cycle)

            # ---------------------------------------------------- results
            dst = col_dst[index]
            if dst >= 0:
                reg_ready[dst] = complete
        bounds = yield

    stats.instructions = n
    stats.branches = branches
    stats.mispredictions = mispredictions
    stats.cycles = last_commit
    stats.dl1_accesses = dl1.hits + dl1.misses
    stats.dl1_hits = dl1.hits
    stats.dl1_misses = dl1.misses
    stats.l2_misses = l2.misses
    if stack_cache is not None:
        stats.stack_cache_hits = stack_cache.hits
        stats.stack_cache_misses = stack_cache.misses
    if svf is not None:
        stats.svf_fills = svf.fills
    if adaptive:
        stats.extras["svf_disables"] = disables
    if switch_period:
        stats.extras["context_switches"] = switches
        stats.extras["switch_writeback_bytes"] = switch_bytes
    return stats


class _FastColumns:
    """Config-invariant per-trace precompute for the vectorized walk.

    Everything the fast walk derives from the trace alone — the flat
    python lists, the quad-word/stack-region/FU-latency columns, the
    branch count — is computed once here.  The solo path builds one
    per call (the same cost the pre-batch code paid inline);
    :func:`simulate_batch` builds one and shares it across every
    config in the batch, which is where the batched fast path gets
    its second win on top of the single trace walk.  ``pc_list`` is
    lazy because only non-perfect predictors read the PC column.
    """

    __slots__ = (
        "n", "flags_l", "opcode_l", "size_l", "nsrc_l", "src0_l",
        "src1_l", "base_l", "dst_l", "sp_l", "spimm_l", "addr_l",
        "qw_l", "on_stack_l", "fu_latency_l", "total_branches",
        "_trace", "_pc_l",
    )

    def __init__(self, trace: ColumnarTrace):
        np = _columnar._np
        self._trace = trace
        self._pc_l = None
        self.n = n = len(trace.pc)
        self.flags_l = list(trace.flags)
        self.opcode_l = list(trace.opcode)
        self.size_l = list(trace.size)
        self.nsrc_l = list(trace.nsrc)
        self.src0_l = list(trace.src0)
        self.src1_l = list(trace.src1)
        self.base_l = trace.base.tolist()
        self.dst_l = trace.dst.tolist()
        self.sp_l = trace.sp.tolist()
        self.spimm_l = trace.spimm.tolist()
        self.addr_l = trace.addr.tolist()
        if n:
            flags_np = np.frombuffer(trace.flags, dtype=np.uint8)
            addr_np = np.frombuffer(trace.addr, dtype="<u8")
            opcode_np = np.frombuffer(trace.opcode, dtype=np.uint8)
            self.qw_l = (
                addr_np & np.uint64(0xFFFF_FFFF_FFFF_FFF8)
            ).tolist()
            self.on_stack_l = (
                addr_np >= np.uint64(STACK_REGION_FLOOR)
            ).tolist()
            self.fu_latency_l = np.asarray(
                _MULT_LATENCY, dtype=np.int64
            )[opcode_np].tolist()
            self.total_branches = int(np.count_nonzero(flags_np & 4))
        else:
            self.qw_l = []
            self.on_stack_l = []
            self.fu_latency_l = []
            self.total_branches = 0

    def pc_list(self) -> list:
        if self._pc_l is None:
            self._pc_l = self._trace.pc.tolist()
        return self._pc_l


def _simulate_fast(trace: ColumnarTrace, config: MachineConfig) -> SimStats:
    """Vectorized-window walk (numpy-gated; see module docstring).

    Cycle-for-cycle identical to :func:`_simulate_reference` — the
    differential gate in ``tests/test_pipeline_vectorized.py`` holds
    the two walks equal on every workload and config family.  The
    speedups are structural, not semantic: columns become flat python
    lists once, derived per-instruction values are precomputed as
    whole-column numpy expressions, resource pools are dense
    :class:`~repro.uarch.resources.CycleWindow` occupancy windows, the
    IFQ/RUU/LSQ rings read the dispatch/commit history lists directly,
    and the memory-completion helper is inlined route by route.
    """
    profiler = profiling.active()
    profile_started = perf_counter() if profiler is not None else 0.0
    stepper = _fast_stepper(config, _FastColumns(trace))
    next(stepper)
    stepper.send((0, len(trace.pc)))
    stats = _finish_stepper(stepper)
    if profiler is not None:
        profiler.note(
            "timing", perf_counter() - profile_started, len(trace.pc)
        )
    return stats


def _fast_stepper(config: MachineConfig, columns: _FastColumns):
    """Resumable vectorized walk over pre-shared columns.

    Same chunked-generator protocol as :func:`_reference_stepper`;
    all trace-derived state comes from ``columns`` so a batch of
    steppers shares one :class:`_FastColumns`.
    """
    stats = SimStats(config_name=config.name)
    predictor = make_predictor(config.branch_predictor)
    predict_bits = getattr(predictor, "predict_bits", None)
    if config.branch_predictor == "perfect":
        predict_bits = None
    dl1, l2 = build_hierarchy(config.dl1, config.l2, config.memory_latency)

    svf_conf = config.svf
    mode = svf_conf.mode
    svf: Optional[StackValueFile] = None
    stack_cache: Optional[StackCache] = None
    if mode == "svf":
        svf = StackValueFile(
            capacity_bytes=svf_conf.capacity_bytes,
            granularity=svf_conf.granularity,
        )
        svf.writeback_sink = lambda addr: dl1.access(addr, is_write=True)
    elif mode == "stack_cache":
        stack_cache = StackCache(capacity_bytes=svf_conf.capacity_bytes)

    n = columns.n

    # -------------------------- columns shared across the whole batch
    flags_l = columns.flags_l
    opcode_l = columns.opcode_l
    size_l = columns.size_l
    nsrc_l = columns.nsrc_l
    src0_l = columns.src0_l
    src1_l = columns.src1_l
    base_l = columns.base_l
    dst_l = columns.dst_l
    sp_l = columns.sp_l
    spimm_l = columns.spimm_l
    addr_l = columns.addr_l
    pc_l = columns.pc_list() if predict_bits is not None else None
    qw_l = columns.qw_l
    on_stack_l = columns.on_stack_l
    fu_latency_l = columns.fu_latency_l
    total_branches = columns.total_branches

    # --------------------------------------- dense occupancy windows
    # The horizon tracks the highest commit cycle so far; every cycle
    # any probe can touch this instruction is bounded by the horizon
    # plus one worst-case latency/penalty chain, so one growth check
    # per instruction keeps every list indexing in bounds.
    fetch_width = config.decode_width
    dispatch_width = config.decode_width
    issue_width = config.issue_width
    commit_width = config.commit_width
    alu_width = config.int_alus
    mult_width = config.int_mults
    dl1_width = config.dl1_ports
    stack_width = svf_conf.ports
    forward_latency = config.store_forward_latency
    margin = (
        256
        + config.frontend_depth
        + config.agu_depth
        + 24
        + 2 * (config.dl1.latency + config.l2.latency
               + config.memory_latency)
        + config.mispredict_redirect
        + svf_conf.squash_penalty
        + config.context_switch_overhead
        + forward_latency
    )
    capacity = n + margin + 64
    windows = [
        CycleWindow("issue", issue_width, capacity),
        CycleWindow("alu", alu_width, capacity),
        CycleWindow("mult", mult_width, capacity),
        CycleWindow("dl1_ports", dl1_width, capacity),
    ]
    issue_slots = windows[0].slots
    alu_slots = windows[1].slots
    mult_slots = windows[2].slots
    dl1_slots = windows[3].slots
    stack_slots = None
    if mode in ("svf", "stack_cache"):
        stack_window = CycleWindow("stack_ports", stack_width, capacity)
        windows.append(stack_window)
        stack_slots = stack_window.slots
    bank_slots = None
    num_banks = svf_conf.banks
    if mode == "svf" and num_banks > 0:
        bank_windows = [
            CycleWindow(f"svf_bank{i}", 1, capacity)
            for i in range(num_banks)
        ]
        windows.extend(bank_windows)
        bank_slots = [w.slots for w in bank_windows]
    pool_len = capacity

    reg_ready = [0] * NUM_REGISTERS
    entry_ready = {}
    last_store = {}
    pending_gpr_store = {}
    er_get = entry_ready.get
    ls_get = last_store.get
    pg_get = pending_gpr_store.get

    ifq_size = config.ifq_size
    ruu_size = config.ruu_size
    lsq_size = config.lsq_size
    # Ring heads read the dispatch/commit/LSQ-commit history directly:
    # the head of a size-k ring fed once per instruction is the value
    # appended k instructions ago.
    disp_hist: list = []
    disp_append = disp_hist.append
    commit_hist: list = []
    commit_append = commit_hist.append
    lsq_hist: list = []
    lsq_append = lsq_hist.append
    mem_count = 0

    redirect_at = 0
    decode_block = 0
    horizon = 0
    # Fetch/dispatch/commit floors are provably non-decreasing (every
    # floor term — redirect_at, the ring heads, the previous cycle of
    # the same stage, decode_block — only ever grows), so each of the
    # three pools collapses to a scalar (current cycle, units used)
    # pair: a probe either lands on the current cycle, advances one
    # when it is full, or jumps forward to a higher floor.  Cycles the
    # floor jumps over can never be probed again.
    fetch_cur = -1
    fetch_cnt = fetch_width
    disp_cur = -1
    disp_cnt = dispatch_width
    commit_cur = 0
    commit_cnt = 0
    sp_seen = svf is None
    adaptive = svf_conf.adaptive and mode == "svf"
    svf_disabled_until = -1
    window_end = svf_conf.adaptive_window
    window_squashes = 0
    disables = 0
    frontend_depth = config.frontend_depth
    dl1_latency = config.dl1.latency
    agu_depth = config.agu_depth
    no_addr_calc = config.no_addr_calc
    spec_sp = svf_conf.spec_sp
    mispredict_redirect = config.mispredict_redirect
    sp_block_mode = mode in ("svf", "ideal")
    mode_ideal = mode == "ideal"
    mode_svf = mode == "svf"
    mode_sc = mode == "stack_cache"
    svf_fast_latency = svf_conf.fast_latency
    reroute_latency = svf_conf.reroute_latency
    no_squash = svf_conf.no_squash
    squash_penalty = svf_conf.squash_penalty
    adaptive_threshold = svf_conf.adaptive_threshold
    adaptive_off_period = svf_conf.adaptive_off_period
    adaptive_window = svf_conf.adaptive_window
    sp_reg = SP
    lda_op = _LDA
    dl1_access = dl1.access
    svf_access = svf.access if svf is not None else None
    svf_covers = svf.covers if svf is not None else None

    switch_period = config.context_switch_period
    switch_overhead = config.context_switch_overhead
    switch_bytes = 0
    switches = 0

    branches = 0
    mispredictions = 0
    stores = 0
    loads = 0
    store_forwards = 0
    fast_stores = 0
    fast_loads = 0
    rerouted = 0
    out_of_range = 0
    squashes = 0

    bounds = yield
    while bounds is not None:
        lo, hi = bounds
        for index in range(lo, hi):
            if horizon + margin >= pool_len:
                pool_len = grow_windows(windows, horizon + 2 * margin + 1024)
            flags = flags_l[index]
            is_mem = flags & 3

            # ------------------------------------------- context switches
            if switch_period and index and index % switch_period == 0:
                switches += 1
                when = commit_cur + switch_overhead
                if when > redirect_at:
                    redirect_at = when
                if svf is not None:
                    switch_bytes += svf.context_switch()
                    entry_ready.clear()
                    pending_gpr_store.clear()
                if stack_cache is not None:
                    switch_bytes += stack_cache.context_switch()
                last_store.clear()

            # ------------------------------------------------------ fetch
            cycle = redirect_at
            if index >= ifq_size:
                head = disp_hist[index - ifq_size]
                if head > cycle:
                    cycle = head
            if cycle > fetch_cur:
                fetch_cur = cycle
                fetch_cnt = 1
            elif fetch_cnt < fetch_width:
                fetch_cnt += 1
            else:
                fetch_cur += 1
                fetch_cnt = 1
            fetch_cycle = fetch_cur

            # ---------------------------------------------------- dispatch
            cycle = fetch_cycle + frontend_depth
            if disp_cur > cycle:
                cycle = disp_cur
            if decode_block > cycle:
                cycle = decode_block
            if index >= ruu_size:
                head = commit_hist[index - ruu_size]
                if head > cycle:
                    cycle = head
            if is_mem and mem_count >= lsq_size:
                head = lsq_hist[mem_count - lsq_size]
                if head > cycle:
                    cycle = head
            if cycle > disp_cur:
                disp_cur = cycle
                disp_cnt = 1
            elif disp_cnt < dispatch_width:
                disp_cnt += 1
            else:
                disp_cur += 1
                disp_cnt = 1
            dispatch_cycle = disp_cur
            disp_append(dispatch_cycle)

            if not sp_seen:
                svf.update_sp(sp_l[index])
                sp_seen = True

            # ----------------------------------------------- routing
            if adaptive and index >= window_end:
                if window_squashes >= adaptive_threshold:
                    svf_disabled_until = index + adaptive_off_period
                    disables += 1
                    svf.context_switch()
                    pending_gpr_store.clear()
                window_squashes = 0
                window_end = index + adaptive_window

            # -------------------------- routing, readiness, issue, latency
            if is_mem:
                addr = addr_l[index]
                qw = qw_l[index]
                on_stack = on_stack_l[index]
                route = _R_DL1
                if on_stack:
                    if mode_ideal:
                        route = _R_FAST
                    elif mode_svf and (
                        not adaptive or index >= svf_disabled_until
                    ):
                        if svf_covers(addr):
                            route = (
                                _R_FAST
                                if base_l[index] == sp_reg
                                else _R_REROUTE
                            )
                        else:
                            out_of_range += 1
                    elif mode_sc:
                        route = _R_SC
                drop_base = (route == _R_FAST and spec_sp) or (
                    no_addr_calc and on_stack
                )
                ready = dispatch_cycle + 1
                if agu_depth and not drop_base:
                    ready += agu_depth
                nsrc = nsrc_l[index]
                if nsrc:
                    if drop_base:
                        base = base_l[index]
                        src = src0_l[index]
                        if src != base and reg_ready[src] > ready:
                            ready = reg_ready[src]
                        if nsrc > 1:
                            src = src1_l[index]
                            if src != base and reg_ready[src] > ready:
                                ready = reg_ready[src]
                    else:
                        when = reg_ready[src0_l[index]]
                        if when > ready:
                            ready = when
                        if nsrc > 1:
                            when = reg_ready[src1_l[index]]
                            if when > ready:
                                ready = when
                if route == _R_DL1:
                    port_slots = dl1_slots
                    port_width = dl1_width
                elif route == _R_SC:
                    port_slots = stack_slots
                    port_width = stack_width
                elif bank_slots is not None:
                    port_slots = bank_slots[(qw >> 3) % num_banks]
                    port_width = 1
                else:  # svf ports, or None in ideal mode (no port limit)
                    port_slots = stack_slots
                    port_width = stack_width
                cycle = ready
                if port_slots is None:
                    used = issue_slots[cycle]
                    while used >= issue_width:
                        cycle += 1
                        used = issue_slots[cycle]
                    issue_slots[cycle] = used + 1
                else:
                    while True:
                        used = issue_slots[cycle]
                        if used < issue_width:
                            port_use = port_slots[cycle]
                            if port_use < port_width:
                                issue_slots[cycle] = used + 1
                                port_slots[cycle] = port_use + 1
                                break
                        cycle += 1
                issue_cycle = cycle
                is_store = flags & 2
                if is_store:
                    stores += 1
                else:
                    loads += 1
                # Inlined _memory_complete, route by route.
                if route == _R_DL1:
                    if is_store:
                        dl1_access(addr, True)
                        complete = issue_cycle + 1
                        last_store[qw] = (index, complete)
                    else:
                        forwarded = ls_get(qw)
                        if forwarded is not None and forwarded[1] > issue_cycle:
                            store_forwards += 1
                            when = forwarded[1]
                            complete = (
                                issue_cycle if issue_cycle > when else when
                            ) + forward_latency
                        else:
                            complete = issue_cycle + dl1_access(addr)
                elif route == _R_FAST:
                    fast_latency = svf_fast_latency
                    if svf is not None:
                        outcome = svf_access(addr, size_l[index], is_store != 0)
                        if outcome.filled:
                            fast_latency = dl1_access(addr) + 1
                    if is_store:
                        fast_stores += 1
                        complete = issue_cycle + svf_fast_latency
                        entry_ready[qw] = complete
                    else:
                        fast_loads += 1
                        complete = issue_cycle + fast_latency
                        when = er_get(qw, 0) + 1
                        if when > complete:
                            complete = when
                        # Squash check (Section 3.2): a pending gpr-store
                        # to the same word not complete by our issue time.
                        pending = pg_get(qw)
                        if (
                            pending is not None
                            and pending[0] < index
                            and pending[1] > issue_cycle
                        ):
                            when = pending[1]
                            if no_squash:
                                if when + 1 > complete:
                                    complete = when + 1
                            else:
                                squashes += 1
                                window_squashes += 1
                                if when + squash_penalty > redirect_at:
                                    redirect_at = when + squash_penalty
                                if when + svf_fast_latency > complete:
                                    complete = when + svf_fast_latency
                elif route == _R_REROUTE:
                    rerouted += 1
                    outcome = svf_access(addr, size_l[index], is_store != 0)
                    access_latency = reroute_latency
                    if outcome.filled:
                        access_latency = dl1_access(addr) + 1
                    if is_store:
                        complete = issue_cycle + 1
                        entry_ready[qw] = complete
                        pending_gpr_store[qw] = (index, complete)
                    else:
                        when = er_get(qw, 0)
                        complete = (
                            issue_cycle if issue_cycle > when else when
                        ) + access_latency
                else:  # _R_SC
                    outcome = stack_cache.access(
                        addr, size_l[index], is_store != 0
                    )
                    if outcome.hit:
                        access_latency = dl1_latency
                    else:
                        access_latency = l2.access(addr, is_store != 0)
                    if is_store:
                        complete = issue_cycle + 1
                        last_store[qw] = (index, complete)
                    else:
                        forwarded = ls_get(qw)
                        if forwarded is not None and forwarded[1] > issue_cycle:
                            store_forwards += 1
                            when = forwarded[1]
                            complete = (
                                issue_cycle if issue_cycle > when else when
                            ) + forward_latency
                        else:
                            complete = issue_cycle + access_latency
            else:
                ready = dispatch_cycle + 1
                nsrc = nsrc_l[index]
                if nsrc:
                    when = reg_ready[src0_l[index]]
                    if when > ready:
                        ready = when
                    if nsrc > 1:
                        when = reg_ready[src1_l[index]]
                        if when > ready:
                            ready = when
                latency = fu_latency_l[index]
                if latency:
                    fu_slots = mult_slots
                    fu_width = mult_width
                else:
                    fu_slots = alu_slots
                    fu_width = alu_width
                    latency = 1
                cycle = ready
                while True:
                    used = issue_slots[cycle]
                    if used < issue_width:
                        fu_use = fu_slots[cycle]
                        if fu_use < fu_width:
                            issue_slots[cycle] = used + 1
                            fu_slots[cycle] = fu_use + 1
                            break
                    cycle += 1
                complete = cycle + latency

            # --------------------------------------------------- branches
            if predict_bits is not None and flags & 4:
                branches += 1
                if not predict_bits(pc_l[index], flags & 8, flags & 16):
                    mispredictions += 1
                    when = complete + mispredict_redirect
                    if when > redirect_at:
                        redirect_at = when

            # $sp interlock: unexpected (non-immediate) updates stall
            # decode of everything younger until the new $sp resolves.
            if flags & 32:
                if svf is not None:
                    svf.update_sp(sp_l[index])
                if sp_block_mode and not (
                    opcode_l[index] == lda_op and spimm_l[index] != 0
                ):
                    if complete > decode_block:
                        decode_block = complete
            # ----------------------------------------------------- commit
            cycle = complete + 1
            if cycle > commit_cur:
                commit_cur = cycle
                commit_cnt = 1
            elif commit_cnt < commit_width:
                commit_cnt += 1
            else:
                commit_cur += 1
                commit_cnt = 1
            cycle = commit_cur
            commit_append(cycle)
            if is_mem:
                lsq_append(cycle)
                mem_count += 1
            horizon = cycle

            # ---------------------------------------------------- results
            dst = dst_l[index]
            if dst >= 0:
                reg_ready[dst] = complete
        bounds = yield

    stats.instructions = n
    stats.branches = total_branches if predict_bits is None else branches
    stats.mispredictions = mispredictions
    stats.cycles = commit_cur
    stats.dl1_accesses = dl1.hits + dl1.misses
    stats.dl1_hits = dl1.hits
    stats.dl1_misses = dl1.misses
    stats.l2_misses = l2.misses
    stats.stores = stores
    stats.loads = loads
    stats.store_forwards = store_forwards
    stats.svf_fast_stores = fast_stores
    stats.svf_fast_loads = fast_loads
    stats.svf_rerouted = rerouted
    stats.svf_out_of_range = out_of_range
    stats.svf_squashes = squashes
    if stack_cache is not None:
        stats.stack_cache_hits = stack_cache.hits
        stats.stack_cache_misses = stack_cache.misses
    if svf is not None:
        stats.svf_fills = svf.fills
    if adaptive:
        stats.extras["svf_disables"] = disables
    if switch_period:
        stats.extras["context_switches"] = switches
        stats.extras["switch_writeback_bytes"] = switch_bytes
    return stats


def _memory_complete(
    is_store,
    addr,
    size,
    index,
    qw,
    route,
    issue_cycle,
    stats,
    config,
    dl1,
    l2,
    svf,
    stack_cache,
    entry_ready,
    last_store,
    pending_gpr_store,
    dl1_latency,
    forward_latency,
):
    """Latency/state handling for one memory reference."""
    svf_conf = config.svf
    if is_store:
        stats.stores += 1
    else:
        stats.loads += 1

    if route == _R_FAST:
        fast_latency = svf_conf.fast_latency
        if svf is not None:
            outcome = svf.access(addr, size, bool(is_store))
            if outcome.filled:
                # A demand fill reads the word from the L1: the data
                # arrives at L1 (or below) latency plus one cycle of
                # SVF insertion.
                fast_latency = dl1.access(addr) + 1
        if is_store:
            stats.svf_fast_stores += 1
            complete = issue_cycle + svf_conf.fast_latency
            entry_ready[qw] = complete
        else:
            stats.svf_fast_loads += 1
            complete = max(
                issue_cycle + fast_latency,
                entry_ready.get(qw, 0) + 1,
            )
        return complete

    if route == _R_REROUTE:
        stats.svf_rerouted += 1
        outcome = svf.access(addr, size, bool(is_store))
        access_latency = svf_conf.reroute_latency
        if outcome.filled:
            access_latency = dl1.access(addr) + 1
        if is_store:
            # Stores complete into the LSQ as on the DL1 path; the
            # reroute penalty applies to loads, which must poll the
            # SVF after their address resolves.
            complete = issue_cycle + 1
            entry_ready[qw] = complete
            pending_gpr_store[qw] = (index, complete)
        else:
            complete = (
                max(issue_cycle, entry_ready.get(qw, 0)) + access_latency
            )
        return complete

    if route == _R_SC:
        outcome = stack_cache.access(addr, size, bool(is_store))
        if outcome.hit:
            access_latency = dl1_latency
        else:
            access_latency = l2.access(addr, is_write=bool(is_store))
        return _lsq_complete(
            is_store,
            index,
            qw,
            issue_cycle,
            access_latency,
            stats,
            last_store,
            forward_latency,
        )

    # Default DL1 path.
    if is_store:
        access_latency = 1
        dl1.access(addr, is_write=True)
    else:
        forwarded = last_store.get(qw)
        if forwarded is not None and forwarded[1] > issue_cycle:
            stats.store_forwards += 1
            return max(issue_cycle, forwarded[1]) + forward_latency
        access_latency = dl1.access(addr)
    return _lsq_complete(
        is_store,
        index,
        qw,
        issue_cycle,
        access_latency,
        stats,
        last_store,
        forward_latency,
    )


def _lsq_complete(
    is_store,
    index,
    qw,
    issue_cycle,
    access_latency,
    stats,
    last_store,
    forward_latency,
):
    """Store-forwarding-aware completion for LSQ-mediated references."""
    if is_store:
        complete = issue_cycle + 1
        last_store[qw] = (index, complete)
        return complete
    forwarded = last_store.get(qw)
    if forwarded is not None and forwarded[1] > issue_cycle:
        stats.store_forwards += 1
        return max(issue_cycle, forwarded[1]) + forward_latency
    return issue_cycle + access_latency
