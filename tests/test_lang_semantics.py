"""Unit tests for MiniC semantic analysis."""

import pytest

from repro.lang.parser import parse
from repro.lang.semantics import SemanticError, analyze


def check(source):
    unit = parse(source)
    analyze(unit)
    return unit


class TestResolution:
    def test_locals_resolve_to_symbols(self):
        unit = check("int main() { int x = 1; x = x + 1; }")
        assign = unit.functions[0].body[1]
        assert assign.target.symbol.name == "x"
        assert assign.target.symbol.kind == "local"

    def test_globals_resolve(self):
        unit = check("int g; int main() { g = 1; }")
        assert unit.functions[0].body[0].target.symbol.kind == "global"

    def test_inner_scope_shadows_outer(self):
        unit = check(
            """
            int main() {
                int x = 1;
                if (x) { int x = 2; x = 3; }
                x = 4;
            }
            """
        )
        inner = unit.functions[0].body[1].then_body[1]
        outer = unit.functions[0].body[2]
        assert inner.target.symbol.uid != outer.target.symbol.uid

    def test_sibling_scopes_can_reuse_names(self):
        check(
            """
            int main() {
                if (1) { int t = 1; t = t; }
                if (2) { int t = 2; t = t; }
            }
            """
        )

    def test_for_loop_variable_scoped_to_loop(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check("int main() { for (int i = 0; i < 3; i += 1) {} i = 1; }")

    def test_address_taken_marked(self):
        unit = check("int f(int *p) { return p[0]; } "
                     "int main() { int x = 1; return f(&x); }")
        info = unit.functions[1].info
        assert info.has_address_taken

    def test_function_info_collected(self):
        unit = check(
            """
            int helper(int a) { return a; }
            int main() { int b[4]; int c = helper(1); return c + b[0]; }
            """
        )
        info = unit.functions[1].info
        assert info.makes_calls
        assert info.has_arrays
        assert [s.name for s in info.locals] == ["b", "c"]


class TestErrors:
    @pytest.mark.parametrize(
        "source,message",
        [
            ("int main() { y = 1; }", "undeclared"),
            ("int main() { int x; int x; }", "duplicate declaration"),
            ("int g; int g; int main() {}", "duplicate global"),
            ("int f() {} int f() {} int main() {}", "duplicate function"),
            ("int f() {}", "missing function 'main'"),
            ("int main() { missing(); }", "undefined function"),
            ("int f(int a) { return a; } int main() { f(); }", "argument"),
            ("int main() { print(1, 2); }", "argument"),
            ("int main() { break; }", "outside loop"),
            ("int main() { continue; }", "outside loop"),
            ("int main() { int a[3]; a = 1; }", "cannot assign to array"),
            ("int main() { int a[0]; }", "non-positive"),
            ("int g[-2]; int main() {}", "non-positive"),
            ("int main() { 5 = 1; }", "invalid assignment"),
            ("int main() { int x = &5; }", "'&' needs"),
            ("int print; int main() {}", "builtin"),
            (
                "int f(int a, int b, int c, int d, int e, int g, int h) "
                "{ return 0; } int main() {}",
                "parameters",
            ),
            (
                "int main() { int a[2]; int b[2] = 1; }",
                "array declarations",
            ),
        ],
    )
    def test_rejected(self, source, message):
        with pytest.raises(SemanticError, match=message):
            check(source)

    def test_duplicate_parameter(self):
        with pytest.raises(SemanticError, match="duplicate parameter"):
            check("int f(int a, int a) { return 0; } int main() {}")

    def test_builtin_arity_enforced_for_alloc(self):
        with pytest.raises(SemanticError, match="argument"):
            check("int main() { int *p = alloc(); }")
