"""Tests for the all-in-one report generator."""

from repro.harness.runall import generate_report


class TestGenerateReport:
    def test_small_subset_report(self):
        notes = []
        text = generate_report(
            timing_window=3_000,
            functional_window=3_000,
            benchmarks=["164.gzip"],
            progress=notes.append,
        )
        # Every section is present.
        for marker in (
            "Table 1", "Table 2", "Figure 1", "Figure 2", "Figure 3",
            "First-touch", "Figure 5", "Figure 6", "Figure 7",
            "Figure 8", "Table 3", "Table 4", "Figure 9",
        ):
            assert marker in text, marker
        # Only the requested benchmark appears in per-bench tables.
        assert "164.gzip" in text
        figure5 = text.split("Figure 5")[1].split("##")[0]
        assert "186.crafty" not in figure5
        # Table 3 was filtered to the requested benchmark's inputs.
        table3 = text.split("Table 3")[-1].split("##")[0]
        assert "crafty.ref" not in table3
        assert "gzip.graphic" in table3
        # Progress callbacks fired for every stage.
        assert len(notes) >= 7

    def test_report_is_markdown(self):
        text = generate_report(
            timing_window=2_000,
            functional_window=2_000,
            benchmarks=["164.gzip"],
        )
        assert text.startswith("# ")
        assert text.count("```") % 2 == 0
