"""300.twolf — standard-cell placement (simulated annealing).

Models TimberWolf's inner loop: propose a swap of two cells, recompute
the wirelength through per-net cost helpers into a frame-resident cost
table, and accept/reject against a cooling threshold.  The per-pass
cost table pushes the stack oscillation past 2 KB (Table 3).
"""

from __future__ import annotations

from repro.workloads.common import rand_source

_TEMPLATE = """
int cell_x[{cells}];
int cell_y[{cells}];
int net_a[{nets}];
int net_b[{nets}];
int accepted = 0;

int wire_cost(int net) {{
    int a = net_a[net];
    int b = net_b[net];
    int dx = cell_x[a] - cell_x[b];
    int dy = cell_y[a] - cell_y[b];
    if (dx < 0) {{
        dx = -dx;
    }}
    if (dy < 0) {{
        dy = -dy;
    }}
    return dx + dy;
}}

int total_cost() {{
    // Per-pass net-cost scratch, like TimberWolf's per-iteration cost
    // tables: pushes the stack oscillation past 2 KB.
    int per_net[{nets}];
    int total = 0;
    for (int net = 0; net < {nets}; net += 1) {{
        int cost = wire_cost(net);
        per_net[net] = cost;
        total += cost;
    }}
    int worst = 0;
    for (int net = 0; net < {nets}; net += 1) {{
        if (per_net[net] > worst) {{
            worst = per_net[net];
        }}
    }}
    return total + (worst & 1);
}}

int swap_cells(int a, int b) {{
    int tx = cell_x[a];
    int ty = cell_y[a];
    cell_x[a] = cell_x[b];
    cell_y[a] = cell_y[b];
    cell_x[b] = tx;
    cell_y[b] = ty;
    return 0;
}}

int anneal_step(int temperature) {{
    int a = rand31() % {cells};
    int b = rand31() % {cells};
    if (a == b) {{
        return 0;
    }}
    int before = total_cost();
    swap_cells(a, b);
    int after = total_cost();
    int delta = after - before;
    if (delta <= 0 || (rand31() & 1023) < temperature) {{
        accepted += 1;
        return 1;
    }}
    swap_cells(a, b);
    return 0;
}}

int main() {{
    for (int c = 0; c < {cells}; c += 1) {{
        cell_x[c] = rand31() & 255;
        cell_y[c] = rand31() & 255;
    }}
    for (int net = 0; net < {nets}; net += 1) {{
        net_a[net] = rand31() % {cells};
        net_b[net] = rand31() % {cells};
    }}
    int temperature = 600;
    for (int step = 0; step < {steps}; step += 1) {{
        anneal_step(temperature);
        if (temperature > 10) {{
            temperature -= {cooling};
        }}
    }}
    print(total_cost());
    print(accepted);
    return 0;
}}
"""


def make_source(
    cells: int = 40, nets: int = 260, steps: int = 20, cooling: int = 24,
    seed: int = 300,
) -> str:
    """Build the twolf workload."""
    return rand_source(seed) + _TEMPLATE.format(
        cells=cells, nets=nets, steps=steps, cooling=cooling
    )


INPUTS = {"ref": dict(seed=300)}
