"""Unit tests for the Stack Value File (paper Section 3)."""

import pytest

from repro.core.svf import StackValueFile

BASE = 0x7FFF0000


def svf_at(tos=BASE, capacity=1024):
    svf = StackValueFile(capacity_bytes=capacity)
    svf.update_sp(tos)
    return svf


class TestGeometry:
    def test_entry_count(self):
        assert StackValueFile(8192).num_entries == 1024
        assert StackValueFile(2048).num_entries == 256

    def test_page_tags_match_paper(self):
        """Paper Section 3: an 8KB SVF needs only 3 tags for 4KB pages."""
        assert StackValueFile(8192, page_size=4096).num_page_tags == 3

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            StackValueFile(0)
        with pytest.raises(ValueError):
            StackValueFile(100)

    def test_bounds_check(self):
        svf = svf_at(BASE, capacity=1024)
        assert svf.covers(BASE)
        assert svf.covers(BASE + 1016)
        assert not svf.covers(BASE + 1024)
        assert not svf.covers(BASE - 8)

    def test_uninitialized_covers_nothing(self):
        assert not StackValueFile(1024).covers(BASE)


class TestAccessSemantics:
    def test_store_needs_no_fill(self):
        """Writes to newly allocated stack space avoid the read (§2)."""
        svf = svf_at()
        outcome = svf.access(BASE + 16, 8, is_store=True)
        assert outcome.in_range and outcome.filled == 0
        assert svf.qw_in == 0
        assert svf.dirty_words == 1

    def test_load_of_invalid_word_fills(self):
        svf = svf_at()
        outcome = svf.access(BASE + 16, 8, is_store=False)
        assert outcome.in_range and not outcome.hit
        assert outcome.filled == 1
        assert svf.qw_in == 1

    def test_load_after_store_hits(self):
        svf = svf_at()
        svf.access(BASE + 16, 8, is_store=True)
        outcome = svf.access(BASE + 16, 8, is_store=False)
        assert outcome.hit
        assert svf.qw_in == 0

    def test_load_after_fill_hits(self):
        svf = svf_at()
        svf.access(BASE + 16, 8, is_store=False)
        outcome = svf.access(BASE + 16, 8, is_store=False)
        assert outcome.hit
        assert svf.qw_in == 1

    def test_subword_store_to_invalid_word_fills(self):
        """A 4-byte store to an invalid 8-byte word must read-merge."""
        svf = svf_at()
        outcome = svf.access(BASE + 16, 4, is_store=True)
        assert outcome.filled == 1

    def test_subword_store_to_valid_word_no_fill(self):
        svf = svf_at()
        svf.access(BASE + 16, 8, is_store=True)
        outcome = svf.access(BASE + 16, 4, is_store=True)
        assert outcome.filled == 0

    def test_out_of_range_access(self):
        svf = svf_at(BASE, capacity=1024)
        outcome = svf.access(BASE + 4096, 8, is_store=False)
        assert not outcome.in_range
        assert svf.out_of_range == 1
        assert svf.qw_in == 0


class TestStackPointerTracking:
    def test_growth_exposes_invalid_words(self):
        """New allocations are uninitialized: no fill reads (§5.3.2)."""
        svf = svf_at(BASE, capacity=1024)
        svf.update_sp(BASE - 256)  # grow by 256 bytes
        assert svf.qw_in == 0
        assert svf.tos == BASE - 256

    def test_growth_writes_back_dirty_top(self):
        svf = svf_at(BASE, capacity=256)
        # Dirty the topmost covered word.
        svf.access(BASE + 248, 8, is_store=True)
        written = svf.update_sp(BASE - 64)
        assert written == 1
        assert svf.qw_out == 1

    def test_growth_does_not_write_clean_top(self):
        svf = svf_at(BASE, capacity=256)
        svf.access(BASE + 248, 8, is_store=False)  # fill, stays clean
        written = svf.update_sp(BASE - 64)
        assert written == 0

    def test_shrink_kills_dirty_words_without_writeback(self):
        """Deallocated frames are dead: dirty data is dropped (§5.3.2)."""
        svf = svf_at(BASE - 256, capacity=1024)
        svf.access(BASE - 256, 8, is_store=True)
        svf.access(BASE - 248, 8, is_store=True)
        written = svf.update_sp(BASE)  # shrink past both words
        assert written == 0
        assert svf.qw_out == 0
        assert svf.killed_words == 2

    def test_shrink_then_reload_fills_on_demand(self):
        svf = svf_at(BASE - 2048, capacity=1024)
        svf.update_sp(BASE)  # shrink: top of window now above old data
        outcome = svf.access(BASE + 512, 8, is_store=False)
        assert outcome.filled == 1  # valid bit was cleared

    def test_call_return_cycle_is_traffic_free(self):
        """A frame written inside its lifetime costs no traffic."""
        svf = svf_at(BASE, capacity=1024)
        svf.update_sp(BASE - 128)  # prologue
        for offset in range(0, 128, 8):
            svf.access(BASE - 128 + offset, 8, is_store=True)
            svf.access(BASE - 128 + offset, 8, is_store=False)
        svf.update_sp(BASE)  # epilogue kills the frame
        assert svf.qw_in == 0
        assert svf.qw_out == 0

    def test_deep_recursion_writes_back_only_live_dirty(self):
        svf = svf_at(BASE, capacity=256)
        # Write a caller word near the top of the window.
        svf.access(BASE + 192, 8, is_store=True)
        # Deep growth pushes it out of the window: one writeback.
        svf.update_sp(BASE - 1024)
        assert svf.qw_out == 1

    def test_sp_unchanged_is_noop(self):
        svf = svf_at(BASE)
        svf.access(BASE + 8, 8, is_store=True)
        assert svf.update_sp(BASE) == 0
        assert svf.dirty_words == 1

    def test_first_update_sets_tos_without_traffic(self):
        svf = StackValueFile(1024)
        assert svf.update_sp(BASE) == 0
        assert svf.tos == BASE


class TestContextSwitch:
    def test_writes_back_dirty_words_only(self):
        svf = svf_at(BASE, capacity=1024)
        svf.access(BASE + 0, 8, is_store=True)
        svf.access(BASE + 8, 8, is_store=True)
        svf.access(BASE + 64, 8, is_store=False)  # valid but clean
        flushed = svf.context_switch()
        assert flushed == 16  # 2 dirty words * 8 bytes
        assert svf.valid_words == 0
        assert svf.context_switches == 1

    def test_reload_after_switch_fills(self):
        svf = svf_at(BASE)
        svf.access(BASE + 8, 8, is_store=True)
        svf.context_switch()
        outcome = svf.access(BASE + 8, 8, is_store=False)
        assert outcome.filled == 1

    def test_empty_switch_costs_nothing(self):
        svf = svf_at(BASE)
        assert svf.context_switch() == 0


class TestInvariants:
    def test_valid_words_bounded_by_capacity(self):
        svf = svf_at(BASE, capacity=256)
        for offset in range(0, 256, 8):
            svf.access(BASE + offset, 8, is_store=True)
        assert svf.valid_words == 32
        # Slide the window many times; occupancy never exceeds entries.
        for step in range(1, 30):
            svf.update_sp(BASE - 64 * step)
            for offset in range(0, 64, 8):
                svf.access(svf.tos + offset, 8, is_store=True)
            assert svf.valid_words <= svf.num_entries

    def test_all_valid_words_are_covered(self):
        svf = svf_at(BASE, capacity=256)
        for offset in range(0, 256, 8):
            svf.access(BASE + offset, 8, is_store=True)
        svf.update_sp(BASE - 104)
        svf.update_sp(BASE + 72)
        for word in svf._words:
            assert svf.covers(word)
