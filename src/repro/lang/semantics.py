"""Semantic analysis for MiniC.

Resolves names against lexical scopes, checks call arity, validates
assignment targets, and annotates the AST in place:

* every ``VarRef`` gets a ``symbol`` attribute pointing at its
  :class:`Symbol`;
* every ``Function`` gets a ``info`` attribute holding the
  :class:`FunctionInfo` the code generator consumes (ordered local
  symbols, whether the function makes calls, whether any local has its
  address taken).

Address-taken and array locals matter to the reproduction: they are the
locals that end up being accessed through general-purpose registers
(``$gpr`` accesses in the paper's Figure 1) and must be *re-routed*
into the SVF rather than morphed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.lang import ast_nodes as ast

MAX_PARAMS = 6

#: Built-in functions with their arity.  ``print`` writes an integer to
#: the emulator output channel; ``alloc`` bump-allocates N quad-words
#: from the heap region (standing in for malloc); ``load32``/``store32``
#: perform 32-bit partial-word accesses (``ldl``/``stl``) at a byte
#: offset from a pointer — the x86-flavoured references of the paper's
#: future-work section.
BUILTINS = {"print": 1, "alloc": 1, "load32": 2, "store32": 3}


class SemanticError(ValueError):
    """Raised on any semantic violation, with the source line."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass
class Symbol:
    """One declared variable (global, parameter or local)."""

    name: str
    kind: str  # 'global' | 'param' | 'local'
    is_array: bool = False
    array_size: int = 0
    is_pointer: bool = False
    address_taken: bool = False
    #: unique within the enclosing function (locals/params)
    uid: int = 0
    #: frame offset, filled in by the code generator
    frame_offset: Optional[int] = None


@dataclass
class FunctionInfo:
    """Code-generation facts about one function."""

    name: str
    params: List[Symbol] = field(default_factory=list)
    locals: List[Symbol] = field(default_factory=list)
    makes_calls: bool = False
    has_arrays: bool = False
    has_address_taken: bool = False


class Analyzer:
    """Single-pass resolver and checker."""

    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.globals: Dict[str, Symbol] = {}
        self.functions: Dict[str, ast.Function] = {}

    def analyze(self) -> None:
        for global_var in self.unit.globals:
            if global_var.name in self.globals:
                raise SemanticError(
                    f"duplicate global {global_var.name!r}", global_var.line
                )
            if global_var.name in BUILTINS:
                raise SemanticError(
                    f"global shadows builtin {global_var.name!r}",
                    global_var.line,
                )
            size = global_var.array_size
            if size is not None and size <= 0:
                raise SemanticError(
                    f"non-positive array size for {global_var.name!r}",
                    global_var.line,
                )
            self.globals[global_var.name] = Symbol(
                name=global_var.name,
                kind="global",
                is_array=size is not None,
                array_size=size or 0,
            )
        for function in self.unit.functions:
            if function.name in self.functions or function.name in BUILTINS:
                raise SemanticError(
                    f"duplicate function {function.name!r}", function.line
                )
            if len(function.params) > MAX_PARAMS:
                raise SemanticError(
                    f"{function.name!r} has more than {MAX_PARAMS} parameters",
                    function.line,
                )
            self.functions[function.name] = function
        if "main" not in self.functions:
            raise SemanticError("missing function 'main'", 0)
        for function in self.unit.functions:
            self._analyze_function(function)

    # -- per function -------------------------------------------------------

    def _analyze_function(self, function: ast.Function) -> None:
        info = FunctionInfo(name=function.name)
        self._uid = 0
        scopes: List[Dict[str, Symbol]] = [{}]
        for param in function.params:
            if param.name in scopes[0]:
                raise SemanticError(
                    f"duplicate parameter {param.name!r}", param.line
                )
            symbol = Symbol(
                name=param.name,
                kind="param",
                is_pointer=param.is_pointer,
                uid=self._next_uid(),
            )
            scopes[0][param.name] = symbol
            info.params.append(symbol)
        self._walk_block(function.body, scopes, info, loop_depth=0)
        info.has_arrays = any(s.is_array for s in info.locals)
        info.has_address_taken = any(
            s.address_taken for s in info.locals + info.params
        )
        function.info = info  # type: ignore[attr-defined]

    def _next_uid(self) -> int:
        self._uid += 1
        return self._uid

    def _walk_block(self, body, scopes, info, loop_depth) -> None:
        scopes.append({})
        for statement in body:
            self._walk_statement(statement, scopes, info, loop_depth)
        scopes.pop()

    def _walk_statement(self, statement, scopes, info, loop_depth) -> None:
        if isinstance(statement, ast.Declaration):
            self._declare(statement, scopes, info)
        elif isinstance(statement, ast.Assign):
            self._check_lvalue(statement.target, scopes, info)
            self._walk_expression(statement.value, scopes, info)
        elif isinstance(statement, ast.ExprStmt):
            self._walk_expression(statement.expr, scopes, info)
        elif isinstance(statement, ast.If):
            self._walk_expression(statement.condition, scopes, info)
            self._walk_block(statement.then_body, scopes, info, loop_depth)
            self._walk_block(statement.else_body, scopes, info, loop_depth)
        elif isinstance(statement, ast.While):
            self._walk_expression(statement.condition, scopes, info)
            self._walk_block(statement.body, scopes, info, loop_depth + 1)
        elif isinstance(statement, ast.For):
            scopes.append({})
            if statement.init is not None:
                self._walk_statement(statement.init, scopes, info, loop_depth)
            if statement.condition is not None:
                self._walk_expression(statement.condition, scopes, info)
            if statement.step is not None:
                self._walk_statement(
                    statement.step, scopes, info, loop_depth + 1
                )
            self._walk_block(statement.body, scopes, info, loop_depth + 1)
            scopes.pop()
        elif isinstance(statement, ast.Return):
            if statement.value is not None:
                self._walk_expression(statement.value, scopes, info)
        elif isinstance(statement, (ast.Break, ast.Continue)):
            if loop_depth == 0:
                keyword = (
                    "break" if isinstance(statement, ast.Break) else "continue"
                )
                raise SemanticError(f"{keyword} outside loop", statement.line)
        else:  # pragma: no cover - statement set is closed
            raise SemanticError(
                f"unknown statement {type(statement).__name__}", statement.line
            )

    def _declare(self, declaration, scopes, info) -> None:
        if declaration.name in scopes[-1]:
            raise SemanticError(
                f"duplicate declaration of {declaration.name!r}",
                declaration.line,
            )
        size = declaration.array_size
        if size is not None and size <= 0:
            raise SemanticError(
                f"non-positive array size for {declaration.name!r}",
                declaration.line,
            )
        if size is not None and declaration.initializer is not None:
            raise SemanticError(
                "array declarations cannot have initializers",
                declaration.line,
            )
        symbol = Symbol(
            name=declaration.name,
            kind="local",
            is_array=size is not None,
            array_size=size or 0,
            is_pointer=declaration.is_pointer,
            uid=self._next_uid(),
        )
        scopes[-1][declaration.name] = symbol
        info.locals.append(symbol)
        declaration.symbol = symbol  # type: ignore[attr-defined]
        if declaration.initializer is not None:
            self._walk_expression(declaration.initializer, scopes, info)

    def _resolve(self, name: str, scopes, line: int) -> Symbol:
        for scope in reversed(scopes):
            if name in scope:
                return scope[name]
        if name in self.globals:
            return self.globals[name]
        raise SemanticError(f"undeclared variable {name!r}", line)

    def _check_lvalue(self, target, scopes, info) -> None:
        if isinstance(target, ast.VarRef):
            symbol = self._resolve(target.name, scopes, target.line)
            if symbol.is_array:
                raise SemanticError(
                    f"cannot assign to array {target.name!r}", target.line
                )
            target.symbol = symbol  # type: ignore[attr-defined]
            return
        if isinstance(target, ast.Index):
            self._walk_expression(target.base, scopes, info)
            self._walk_expression(target.index, scopes, info)
            return
        if isinstance(target, ast.Unary) and target.op == "*":
            self._walk_expression(target.operand, scopes, info)
            return
        raise SemanticError("invalid assignment target", target.line)

    def _walk_expression(self, expr, scopes, info) -> None:
        if expr is None or isinstance(expr, ast.IntLiteral):
            return
        if isinstance(expr, ast.VarRef):
            expr.symbol = self._resolve(  # type: ignore[attr-defined]
                expr.name, scopes, expr.line
            )
            return
        if isinstance(expr, ast.Unary):
            if expr.op == "&":
                target = expr.operand
                if isinstance(target, ast.VarRef):
                    symbol = self._resolve(target.name, scopes, target.line)
                    symbol.address_taken = True
                    target.symbol = symbol  # type: ignore[attr-defined]
                    return
                if isinstance(target, ast.Index):
                    self._walk_expression(target.base, scopes, info)
                    self._walk_expression(target.index, scopes, info)
                    return
                raise SemanticError("'&' needs a variable or element", expr.line)
            self._walk_expression(expr.operand, scopes, info)
            return
        if isinstance(expr, ast.Binary):
            self._walk_expression(expr.left, scopes, info)
            self._walk_expression(expr.right, scopes, info)
            return
        if isinstance(expr, ast.Index):
            self._walk_expression(expr.base, scopes, info)
            self._walk_expression(expr.index, scopes, info)
            return
        if isinstance(expr, ast.Call):
            if expr.name in BUILTINS:
                expected = BUILTINS[expr.name]
            elif expr.name in self.functions:
                expected = len(self.functions[expr.name].params)
                info.makes_calls = True
            else:
                raise SemanticError(
                    f"call to undefined function {expr.name!r}", expr.line
                )
            if len(expr.args) != expected:
                raise SemanticError(
                    f"{expr.name!r} expects {expected} argument(s), "
                    f"got {len(expr.args)}",
                    expr.line,
                )
            for argument in expr.args:
                self._walk_expression(argument, scopes, info)
            return
        raise SemanticError(
            f"unknown expression {type(expr).__name__}", expr.line
        )


def analyze(unit: ast.TranslationUnit) -> Analyzer:
    """Run semantic analysis, annotating ``unit`` in place."""
    analyzer = Analyzer(unit)
    analyzer.analyze()
    return analyzer
