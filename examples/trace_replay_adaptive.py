#!/usr/bin/env python
"""Record once, replay everywhere — plus the adaptive SVF controller.

Functional emulation is the slow part of the pipeline; the timing
model just replays.  This example records a trace to disk, then sweeps
machine configurations against the recorded file — the workflow for
exploring many designs against one workload.  It closes with the
dynamic-disable controller of Section 3.3 rescuing eon from its squash
storms without recompilation.

Run:  python examples/trace_replay_adaptive.py
"""

import os
import tempfile

from repro.harness import percent, render_table
from repro.trace import load_trace, TraceWriter
from repro.uarch import simulate, table2_config
from repro.workloads import workload

WINDOW = 40_000


def record(work, path):
    with open(path, "wb") as stream:
        writer = TraceWriter(stream)
        work.run(max_instructions=WINDOW, trace_sink=writer)
    size_kb = os.path.getsize(path) / 1024
    print(f"recorded {writer.count:,} instructions of {work.full_name} "
          f"to {os.path.basename(path)} ({size_kb:.0f} KiB)")


def sweep(trace):
    base = table2_config(16)
    baseline = simulate(trace, base)
    rows = []
    for label, config in (
        ("stack cache (2+2)", base.with_svf(mode="stack_cache", ports=2)),
        ("SVF (2+1)", base.with_svf(mode="svf", ports=1)),
        ("SVF (2+2)", base.with_svf(mode="svf", ports=2)),
        ("SVF (2+2) adaptive", base.with_svf(mode="svf", ports=2,
                                             adaptive=True)),
        ("SVF (2+2) no_squash", base.with_svf(mode="svf", ports=2,
                                              no_squash=True)),
    ):
        stats = simulate(trace, config)
        rows.append(
            (
                label,
                f"{stats.ipc:.2f}",
                percent(stats.speedup_over(baseline)),
                stats.svf_squashes,
                stats.extras.get("svf_disables", ""),
            )
        )
    return baseline, rows


def main() -> None:
    work = workload("eon")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "eon.svft")
        record(work, path)
        trace = load_trace(path)
        baseline, rows = sweep(trace)
    print(f"\nbaseline: IPC {baseline.ipc:.2f}\n")
    print(render_table(
        ["Configuration", "IPC", "speedup", "squashes", "disables"],
        rows,
        title=f"{work.full_name}: configuration sweep over one "
        "recorded trace",
    ))
    print(
        "\nThe adaptive controller (Section 3.3) detects eon's "
        "gpr-store/sp-load squash\nstorms at run time and routes stack "
        "references back to the DL1 for a cooling\nperiod — recovering "
        "most of what the no_squash recompilation buys, with no\n"
        "compiler involvement."
    )


if __name__ == "__main__":
    main()
