"""Tests for the experiment harness (on tiny windows)."""

import pytest

from repro.harness import (
    characterize,
    fig5_ideal_morphing,
    fig6_progressive,
    fig7_svf_vs_stack_cache,
    fig9_svf_speedup,
    percent,
    render_series,
    render_table,
    table1_workloads,
    table2_models,
    table3_memory_traffic,
    table4_context_switch,
)
from repro.workloads import all_inputs, clear_trace_cache

SUBSET = ["186.crafty"]
WINDOW = 12_000


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


class TestRendering:
    def test_render_table_aligns(self):
        text = render_table(["A", "Blong"], [(1, 2.5), ("xx", "y")])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert "2.500" in text

    def test_render_series(self):
        text = render_series("curve", [0.0, 0.5, 1.0])
        assert "curve" in text and "[0..1]" in text

    def test_percent(self):
        assert percent(1.29) == "+29.0%"
        assert percent(0.95) == "-5.0%"


class TestStaticTables:
    def test_table1_lists_all_benchmarks(self):
        text = table1_workloads()
        assert "256.bzip2" in text and "175.vpr" in text
        assert "crafty.in" in text

    def test_table2_matches_paper(self):
        text = table2_models()
        assert "4-way 64KB" in text
        assert "60 clks" in text


class TestCharacterization:
    def test_figures_1_to_3(self):
        result = characterize(benchmarks=SUBSET, max_instructions=WINDOW)
        fig1 = result.render_fig1()
        assert "stack-$sp" in fig1 and "186.crafty" in fig1
        fig2 = result.render_fig2()
        assert "Stack Depth" in fig2
        fig3 = result.render_fig3()
        assert "avg offset" in fig3

    def test_distribution_values_plausible(self):
        result = characterize(benchmarks=SUBSET, max_instructions=WINDOW)
        dist = result.distributions["186.crafty"]
        assert 0.05 < dist.memory_fraction < 0.9
        assert dist.stack_fraction > 0.3


class TestTimingExperiments:
    def test_fig5_structure(self):
        result = fig5_ideal_morphing(
            benchmarks=SUBSET, max_instructions=WINDOW, widths=(4, 16),
            include_gshare=False,
        )
        per = result.speedups["186.crafty"]
        assert set(per) == {"4-wide", "16-wide"}
        assert all(v > 0.5 for v in per.values())
        assert "Figure 5" in result.render()
        assert "average" in result.render()

    def test_fig6_structure(self):
        result = fig6_progressive(
            benchmarks=SUBSET, max_instructions=WINDOW
        )
        per = result.speedups["186.crafty"]
        assert set(per) == {
            "L1_2x", "no_addr_cal_op", "svf_1p", "svf_2p", "svf_16p",
        }
        # Doubling L1 is negligible; 16-port SVF >= 2-port SVF.
        assert abs(per["L1_2x"] - 1.0) < 0.05
        assert per["svf_16p"] >= per["svf_2p"] - 1e-9

    def test_fig7_and_fig8(self):
        result = fig7_svf_vs_stack_cache(
            benchmarks=SUBSET, max_instructions=WINDOW
        )
        per = result.speedups["186.crafty"]
        assert set(per) == {"(4+0)", "(2+2)$", "(2+2)svf", "(2+2)svf_nosq"}
        fig8 = result.render_fig8()
        assert "fast loads" in fig8

    def test_fig9_structure(self):
        result = fig9_svf_speedup(
            benchmarks=SUBSET, max_instructions=WINDOW
        )
        per = result.speedups["186.crafty"]
        assert set(per) == {"(1+1)", "(1+2)", "(2+1)", "(2+2)"}
        # Adding an SVF to a single-ported design helps (paper Fig 9).
        assert per["(1+2)"] > 1.0


class TestTrafficExperiments:
    def test_table3_rows_and_sizes(self):
        inputs = [w for w in all_inputs() if w.name == "164.gzip"]
        result = table3_memory_traffic(
            max_instructions=WINDOW, inputs=inputs
        )
        assert set(result.traffic) == {
            "gzip.graphic", "gzip.log", "gzip.program",
        }
        rendered = result.render()
        assert "2K" in rendered and "8K" in rendered

    def test_table4(self):
        result = table4_context_switch(
            benchmarks=SUBSET, max_instructions=WINDOW, period=3_000
        )
        cache_bytes, svf_bytes = result.rows["186.crafty"]
        assert svf_bytes <= cache_bytes
        assert "Table 4" in result.render()
