"""SVF-safety passes: does compiled code obey stack discipline?

The Stack Value File's correctness and its entire performance win rest
on invariants the paper *assumes* compiled code upholds (Sections 2
and 3).  Each pass here checks one of them statically, on the
assembled :class:`Program`, before any simulation:

``sp-balance``
    Every path through a function restores ``$sp``: the net effect of
    the ``lda $sp, imm($sp)`` adjustments between entry and ``ret`` is
    zero, ``$sp`` is only ever written ``$sp``-relatively, and all
    paths into a join agree on the current ``$sp`` depth.  Violations
    break the SVF's TOS tracking outright — **error**.

``frame-bounds``
    Every ``±IMM($sp)`` / ``±IMM($fp)`` access stays inside the
    current frame allocation ``[$sp, entry-$sp)``.  An access below
    ``$sp`` or into the caller's frame would be morphed to the wrong
    SVF register (or corrupt another frame's words) — **error**.

``first-read``
    A frame slot read before any write on some path.  Stack semantics
    say a freshly allocated frame is uninitialized, so such a read
    forces the SVF to fill the word from the memory hierarchy — the
    paper's valid-bit machinery exists precisely because compiled
    code avoids this — **warning**.

``dead-store``
    A frame store never observed by any load before frame death
    (``ret``).  These are exactly the writebacks the SVF's dirty-bit
    + frame-death logic elides; reporting them quantifies, per static
    store, what Table 3's traffic reduction exploits — **info**.

``escape``
    A ``$sp``-derived address flowing into a general register (the
    paper's ``$gpr`` access class, which must be *re-routed* into the
    SVF after address calculation — info), passed to a callee (info),
    or stored outside the stack (memory the SVF cannot see —
    **warning**, since morphing is only sound if such aliases are
    re-routed dynamically).

All passes run intra-procedurally on the :mod:`repro.analysis.cfg`
graphs using the :mod:`repro.analysis.dataflow` solver.  Frame-slot
facts are canonicalized to *entry-relative* byte offsets (negative,
since the stack grows down), so they stay stable across the
prologue/epilogue ``$sp`` moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.cfg import (
    BasicBlock,
    FunctionCFG,
    ProgramCFG,
    build_cfg,
)
from repro.analysis.dataflow import (
    BACKWARD,
    DataflowProblem,
    SetProblem,
    solve,
)
from repro.analysis.report import Diagnostic, Severity
from repro.isa.instructions import Instruction
from repro.isa.registers import (
    ARG_REGISTERS,
    FP,
    RA,
    SP,
    TEMP_REGISTERS,
    V0,
    register_name,
)

PASS_CFG = "cfg"
PASS_SP = "sp-balance"
PASS_BOUNDS = "frame-bounds"
PASS_FIRST_READ = "first-read"
PASS_DEAD_STORE = "dead-store"
PASS_ESCAPE = "escape"

ALL_PASSES = (
    PASS_CFG, PASS_SP, PASS_BOUNDS, PASS_FIRST_READ, PASS_DEAD_STORE,
    PASS_ESCAPE,
)

#: ALU opcodes through which a stack address propagates (pointer
#: arithmetic); comparisons produce booleans and drop the taint.
_ADDRESS_PRESERVING_ALU = frozenset({
    "addq", "subq", "mulq", "divq", "remq", "and", "or", "xor", "bic",
    "sll", "srl", "sra",
})

#: Registers the callee may clobber — taint on them dies at a call.
_CALLER_SAVED = frozenset(TEMP_REGISTERS) | frozenset(ARG_REGISTERS) | {V0, RA}


class _Conflict:
    """Singleton lattice bottom for the ``$sp``-offset analysis."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<sp-conflict>"


CONFLICT = _Conflict()

_TOP = object()  # unvisited-block sentinel for the offset analysis


# ---------------------------------------------------------------------------
# $sp / $fp offset tracking (feeds sp-balance, frame-bounds, and the
# slot-canonicalization every later pass relies on)
# ---------------------------------------------------------------------------


def _offset_step(instruction: Instruction, fact):
    """Abstractly execute one instruction over an ``(sp, fp)`` fact.

    ``sp`` is the entry-relative stack-pointer offset (an int while
    tracked, :data:`CONFLICT` once lost); ``fp`` is the entry-relative
    frame-pointer offset or ``None`` while it still holds the caller's
    (unknown) value.
    """
    sp, fp = fact
    if instruction.is_sp_adjust:
        sp = CONFLICT if sp is CONFLICT else sp + instruction.imm
    elif instruction.writes_sp:
        sp = CONFLICT
    elif instruction.op == "lda" and instruction.rd == FP:
        if instruction.rb == SP and isinstance(sp, int):
            fp = sp + instruction.imm
        elif instruction.rb == FP and isinstance(fp, int):
            fp = fp + instruction.imm
        else:
            fp = None
    elif instruction.destination_register() == FP:
        fp = None  # e.g. the epilogue ``ldq $fp, ...`` restore
    return (sp, fp)


class _OffsetProblem(DataflowProblem):
    direction = "forward"

    def boundary(self, cfg):
        return (0, None)

    def top(self, cfg):
        return _TOP

    def meet(self, left, right):
        if left is _TOP:
            return right
        if right is _TOP:
            return left
        sp_left, fp_left = left
        sp_right, fp_right = right
        sp = sp_left if sp_left == sp_right else CONFLICT
        if sp_left is CONFLICT or sp_right is CONFLICT:
            sp = CONFLICT
        fp = fp_left if fp_left == fp_right else None
        return (sp, fp)

    def transfer(self, cfg, block, fact):
        if fact is _TOP:
            return _TOP
        for index in block.indices():
            fact = _offset_step(cfg.instruction(index), fact)
        return fact


@dataclass
class FrameContext:
    """Shared per-function facts the slot-level passes build on."""

    cfg: FunctionCFG
    #: entry-relative ``(sp, fp)`` fact *before* each instruction
    offsets: Dict[int, tuple] = field(default_factory=dict)
    #: True when ``$sp`` is an int at every reachable instruction
    sp_tracked: bool = True
    #: entry-relative offsets whose address was taken (``lda`` off sp/fp)
    address_taken: Set[int] = field(default_factory=set)
    reachable: Set[int] = field(default_factory=set)
    deepest_sp: int = 0

    @property
    def aliased_floor(self) -> int:
        """Lowest entry-relative offset reachable through a taken address.

        Everything at or above this offset may be read or written via
        computed addresses (local arrays, escaped scalars) or by a
        callee holding an escaped pointer; slots strictly below it are
        *private* — only ever touched through constant ``$sp``/``$fp``
        displacements — and admit exact first-read/dead-store facts.
        """
        return min(self.address_taken) if self.address_taken else 0

    def slot(self, index: int) -> Optional[Tuple[int, int]]:
        """``(entry-relative offset, size)`` of a constant stack access.

        Returns None for non-memory instructions and for accesses whose
        base is not a tracked ``$sp``/``$fp``.
        """
        instruction = self.cfg.instruction(index)
        if not instruction.is_mem:
            return None
        sp, fp = self.offsets.get(index, (CONFLICT, None))
        if instruction.rb == SP and isinstance(sp, int):
            return (sp + instruction.imm, instruction.mem_size)
        if instruction.rb == FP and isinstance(fp, int):
            return (fp + instruction.imm, instruction.mem_size)
        return None

    def is_private(self, offset: int, size: int) -> bool:
        return offset + size <= self.aliased_floor

    def slot_bytes(self, offset: int, size: int) -> FrozenSet[int]:
        return frozenset(range(offset, offset + size))


def analyze_frames(cfg: FunctionCFG) -> Tuple[FrameContext, List[Diagnostic]]:
    """Track ``$sp``/``$fp`` and run the sp-balance + frame-bounds passes."""
    context = FrameContext(cfg=cfg)
    diagnostics: List[Diagnostic] = []
    result = solve(cfg, _OffsetProblem())
    context.reachable = cfg.reachable_ids()

    def report(severity, pass_name, index, message):
        diagnostics.append(
            Diagnostic(severity, pass_name, cfg.name, index, message)
        )

    for block in cfg.blocks:
        if block.id not in context.reachable:
            continue
        # A join where predecessors disagree on the $sp depth is the
        # root cause of any CONFLICT; report it where it originates.
        pred_sp = [
            result.outputs[p][0]
            for p in block.predecessors
            if result.outputs[p] is not _TOP
        ]
        distinct = {d for d in pred_sp if isinstance(d, int)}
        if len(distinct) > 1:
            depths = ", ".join(str(d) for d in sorted(distinct))
            report(
                Severity.ERROR, PASS_SP, block.start,
                f"paths joining here disagree on $sp depth ({depths})",
            )

        fact = result.inputs[block.id]
        if fact is _TOP:
            fact = (0, None)
        for index in block.indices():
            context.offsets[index] = fact
            sp, fp = fact
            instruction = cfg.instruction(index)
            _check_instruction_frame(
                context, instruction, index, sp, fp, report
            )
            if isinstance(sp, int):
                context.deepest_sp = min(context.deepest_sp, sp)
            fact = _offset_step(instruction, fact)

    context.sp_tracked = all(
        isinstance(context.offsets[index][0], int)
        for block in cfg.blocks
        if block.id in context.reachable
        for index in block.indices()
    )
    return context, diagnostics


def _check_instruction_frame(context, instruction, index, sp, fp, report):
    cfg = context.cfg
    # --- sp-balance -------------------------------------------------------
    if instruction.is_sp_adjust:
        if isinstance(sp, int) and sp + instruction.imm > 0:
            report(
                Severity.ERROR, PASS_SP, index,
                f"$sp adjusted above the function entry level "
                f"(net offset {sp + instruction.imm:+d})",
            )
    elif instruction.writes_sp:
        report(
            Severity.ERROR, PASS_SP, index,
            f"$sp written by non-$sp-relative '{instruction.op}'; "
            f"the SVF cannot track the top of stack",
        )
    if instruction.is_return:
        if isinstance(sp, int) and sp != 0:
            report(
                Severity.ERROR, PASS_SP, index,
                f"returns with unbalanced $sp (net offset {sp:+d}); "
                f"missing or wrong epilogue 'lda $sp' on this path",
            )
    # --- frame-bounds -----------------------------------------------------
    if instruction.is_mem and instruction.rb == SP:
        if isinstance(sp, int):
            _check_bounds(
                instruction, index, sp, sp + instruction.imm, report
            )
    elif instruction.is_mem and instruction.rb == FP:
        if isinstance(fp, int) and isinstance(sp, int):
            _check_bounds(
                instruction, index, sp, fp + instruction.imm, report
            )
        elif fp is None:
            report(
                Severity.WARNING, PASS_BOUNDS, index,
                "$fp-relative access but $fp is not derived from $sp "
                "here; frame bounds cannot be verified",
            )
    # --- address-taken bookkeeping (needs the same offset facts) ----------
    if (
        instruction.op == "lda"
        and instruction.rd not in (SP, FP)
        and instruction.rb in (SP, FP)
    ):
        base = sp if instruction.rb == SP else fp
        if isinstance(base, int):
            offset = base + instruction.imm
            context.address_taken.add(offset)
            if isinstance(sp, int) and not (sp <= offset <= 0):
                report(
                    Severity.WARNING, PASS_BOUNDS, index,
                    f"address of out-of-frame stack location taken "
                    f"(entry-relative offset {offset:+d})",
                )


def _check_bounds(instruction, index, sp, offset, report):
    """``offset`` is the entry-relative address of the access."""
    size = instruction.mem_size
    if sp == 0:
        report(
            Severity.ERROR, PASS_BOUNDS, index,
            f"'{instruction.op}' touches the stack with no allocated "
            f"frame ($sp still at the entry level)",
        )
        return
    if offset < sp:
        report(
            Severity.ERROR, PASS_BOUNDS, index,
            f"'{instruction.op}' accesses {sp - offset} byte(s) below "
            f"$sp (outside the live frame; the SVF treats that region "
            f"as dead)",
        )
    elif offset + size > 0:
        report(
            Severity.ERROR, PASS_BOUNDS, index,
            f"'{instruction.op}' overruns the frame into the caller's "
            f"frame by {offset + size} byte(s)",
        )


# ---------------------------------------------------------------------------
# first-read: frame slots read before any write (forces an SVF fill)
# ---------------------------------------------------------------------------


class _WrittenBytes(SetProblem):
    """Must-analysis: bytes of the frame definitely written so far."""

    may = False
    direction = "forward"

    def __init__(self, context: FrameContext):
        self.context = context

    def step(self, cfg, index, value):
        _written_step(self.context, index, value)


def _written_step(context: FrameContext, index: int, value: set) -> None:
    instruction = context.cfg.instruction(index)
    slot = context.slot(index)
    if instruction.is_store and slot is not None:
        value.update(range(slot[0], slot[0] + slot[1]))
    elif instruction.is_store or instruction.is_call:
        # A computed-address store, or a callee holding an escaped
        # pointer, may have initialized any aliased slot.
        floor = context.aliased_floor
        if floor < 0:
            value.update(range(floor, 0))


def first_read_pass(context: FrameContext) -> List[Diagnostic]:
    """Flag frame reads that can happen before any write (forces a fill)."""
    cfg = context.cfg
    result = solve(cfg, _WrittenBytes(context))
    diagnostics: List[Diagnostic] = []
    for block in cfg.blocks:
        if block.id not in context.reachable:
            continue
        written = result.inputs[block.id]
        written = set() if written is None else set(written)
        for index in block.indices():
            instruction = cfg.instruction(index)
            slot = context.slot(index)
            if instruction.is_load and slot is not None:
                offset, size = slot
                missing = [
                    b for b in range(offset, offset + size)
                    if b not in written
                ]
                if missing:
                    diagnostics.append(Diagnostic(
                        Severity.WARNING, PASS_FIRST_READ, cfg.name, index,
                        f"frame slot {offset:+d} read before any write on "
                        f"some path; the SVF must fill this word from "
                        f"memory (stack code is expected to write first)",
                    ))
            _written_step(context, index, written)
    return diagnostics


# ---------------------------------------------------------------------------
# dead-store: frame stores never observed before frame death
# ---------------------------------------------------------------------------


class _LiveBytes(SetProblem):
    """May-analysis (backward): private frame bytes later read."""

    may = True
    direction = BACKWARD

    def __init__(self, context: FrameContext):
        self.context = context

    def step(self, cfg, index, value):
        _live_step(self.context, index, value)


def _live_step(context: FrameContext, index: int, value: set) -> None:
    instruction = context.cfg.instruction(index)
    slot = context.slot(index)
    if slot is None:
        return
    offset, size = slot
    if not context.is_private(offset, size):
        return
    if instruction.is_load:
        value.update(range(offset, offset + size))
    elif instruction.is_store:
        value.difference_update(range(offset, offset + size))


def dead_store_pass(context: FrameContext) -> List[Diagnostic]:
    """Flag frame stores whose bytes are never read before frame death."""
    cfg = context.cfg
    result = solve(cfg, _LiveBytes(context))
    diagnostics: List[Diagnostic] = []
    for block in cfg.blocks:
        if block.id not in context.reachable:
            continue
        live = set(result.inputs[block.id])
        for index in reversed(list(block.indices())):
            instruction = cfg.instruction(index)
            slot = context.slot(index)
            if (
                instruction.is_store
                and slot is not None
                and context.is_private(*slot)
            ):
                offset, size = slot
                if not live.intersection(range(offset, offset + size)):
                    diagnostics.append(Diagnostic(
                        Severity.INFO, PASS_DEAD_STORE, cfg.name, index,
                        f"store to frame slot {offset:+d} is never read "
                        f"before frame death; the SVF's dirty/valid bits "
                        f"elide this writeback entirely",
                    ))
            _live_step(context, index, live)
    return diagnostics


# ---------------------------------------------------------------------------
# escape: $sp-derived values leaving the $sp access class
# ---------------------------------------------------------------------------


def _escape_step(context: FrameContext, index: int, fact):
    """One instruction over ``(tainted regs, tainted slots)``."""
    regs, slots = fact
    instruction = context.cfg.instruction(index)
    op = instruction.op

    def retaint(register, tainted):
        nonlocal regs
        if register is None or register in (SP, FP):
            return
        regs = regs | {register} if tainted else regs - {register}

    if op == "lda":
        retaint(instruction.rd, instruction.rb in regs or
                instruction.rb in (SP, FP))
    elif instruction.is_load:
        slot = context.slot(index)
        loaded_tainted = slot is not None and slot[0] in slots
        retaint(instruction.rd, loaded_tainted)
    elif instruction.is_store:
        slot = context.slot(index)
        value_tainted = (
            instruction.rd in regs or instruction.rd in (SP, FP)
        )
        if slot is not None:
            slots = (
                slots | {slot[0]} if value_tainted else slots - {slot[0]}
            )
    elif op in _ADDRESS_PRESERVING_ALU:
        sources = set(instruction.source_registers())
        tainted = bool(
            sources & (set(regs) | {SP, FP})
        )
        retaint(instruction.rd, tainted)
    elif instruction.op_class.name in ("IALU", "IMULT"):
        retaint(instruction.destination_register(), False)
    elif instruction.is_call:
        regs = regs - _CALLER_SAVED
    return (regs, slots)


class _EscapeProblem(DataflowProblem):
    direction = "forward"

    def __init__(self, context: FrameContext):
        self.context = context

    def boundary(self, cfg):
        return (frozenset(), frozenset())

    def top(self, cfg):
        return (frozenset(), frozenset())

    def meet(self, left, right):
        return (left[0] | right[0], left[1] | right[1])

    def transfer(self, cfg, block, fact):
        for index in block.indices():
            fact = _escape_step(self.context, index, fact)
        return fact


def escape_pass(context: FrameContext) -> List[Diagnostic]:
    """Flag stack addresses that escape to registers, calls or memory."""
    cfg = context.cfg
    result = solve(cfg, _EscapeProblem(context))
    diagnostics: List[Diagnostic] = []

    def report(severity, index, message):
        diagnostics.append(
            Diagnostic(severity, PASS_ESCAPE, cfg.name, index, message)
        )

    for block in cfg.blocks:
        if block.id not in context.reachable:
            continue
        fact = result.inputs[block.id]
        for index in block.indices():
            instruction = cfg.instruction(index)
            regs, _slots = fact
            if instruction.is_mem and instruction.rb in regs:
                report(
                    Severity.INFO, index,
                    f"stack access through computed base "
                    f"${register_name(instruction.rb)}: the paper's $gpr "
                    f"class; the SVF must re-route it after address "
                    f"calculation",
                )
            if (
                instruction.is_store
                and (instruction.rd in regs or instruction.rd in (SP, FP))
                and context.slot(index) is None
            ):
                report(
                    Severity.WARNING, index,
                    "stack address stored to non-stack memory; aliases "
                    "through it are invisible to static morphing and "
                    "must hit the SVF's re-route path",
                )
            if instruction.is_call:
                escaped_args = sorted(
                    register for register in regs
                    if register in ARG_REGISTERS
                )
                for register in escaped_args:
                    report(
                        Severity.INFO, index,
                        f"stack address passed to callee in "
                        f"${register_name(register)}; the callee's "
                        f"accesses to it are $gpr-class",
                    )
            fact = _escape_step(context, index, fact)
    return diagnostics


# ---------------------------------------------------------------------------
# structural pass + driver
# ---------------------------------------------------------------------------


def structure_pass(pcfg: ProgramCFG) -> List[Diagnostic]:
    """CFG anomalies and unreachable code, as diagnostics."""
    severity_of = {
        "escaping-branch": Severity.ERROR,
        "fallthrough-exit": Severity.ERROR,
        "indirect-jump": Severity.WARNING,
        "indirect-call": Severity.WARNING,
    }
    diagnostics = [
        Diagnostic(
            severity_of.get(anomaly.kind, Severity.WARNING),
            PASS_CFG, anomaly.function, anomaly.index, anomaly.message,
        )
        for anomaly in pcfg.anomalies
    ]
    for function in pcfg.functions.values():
        reachable = function.reachable_ids()
        for block in function.blocks:
            if block.id not in reachable:
                diagnostics.append(Diagnostic(
                    Severity.INFO, PASS_CFG, function.name, block.start,
                    f"unreachable block of {len(block)} instruction(s)",
                ))
    diagnostics.extend(_dead_function_pass(pcfg))
    return diagnostics


def _dead_function_pass(pcfg: ProgramCFG) -> List[Diagnostic]:
    """Functions unreachable from the program entry in the call graph.

    A defined-but-never-called function is dead code: its frame is
    never allocated, so its stack behaviour contributes nothing to SVF
    traffic.  Indirect calls make the call graph incomplete, so the
    pass stays silent when any are present.
    """
    if any(a.kind == "indirect-call" for a in pcfg.anomalies):
        return []
    entry_index = pcfg.program.labels.get(pcfg.program.entry, 0)
    root = None
    for name, function in pcfg.functions.items():
        if function.start == entry_index:
            root = name
            break
    if root is None:
        return []
    live = {root}
    work = [root]
    while work:
        for callee in pcfg.call_graph.get(work.pop(), ()):
            if callee not in live:
                live.add(callee)
                work.append(callee)
    return [
        Diagnostic(
            Severity.INFO, PASS_CFG, function.name, function.start,
            f"function {function.name!r} is never called "
            f"({function.end - function.start} dead instruction(s))",
        )
        for function in pcfg.functions.values()
        if function.name not in live
    ]


def check_function(cfg: FunctionCFG) -> List[Diagnostic]:
    """Run every slot-level pass over one function."""
    context, diagnostics = analyze_frames(cfg)
    if context.sp_tracked:
        # The slot passes canonicalize on the tracked $sp offsets; once
        # those are lost the sp-balance errors already tell the story.
        diagnostics.extend(first_read_pass(context))
        diagnostics.extend(dead_store_pass(context))
        diagnostics.extend(escape_pass(context))
    return diagnostics


def check_program(program, pcfg: Optional[ProgramCFG] = None) -> List[Diagnostic]:
    """All five passes over every function of ``program``."""
    if pcfg is None:
        pcfg = build_cfg(program)
    diagnostics = structure_pass(pcfg)
    for function in pcfg.functions.values():
        diagnostics.extend(check_function(function))
    return diagnostics
