"""Whole-program certification verdicts for the registry workloads.

Runs ``repro certify --all --validate`` programmatically: every
workload's static certificate (depth bound, LIFO proof, escape
classes) plus the full-run dynamic cross-validation, rendered into a
committed artifact so verdict drift shows up in review.
"""

from repro.analysis import render_certificates
from repro.harness.certification import render_validations, validate_workload
from repro.workloads import ALL_BENCHMARKS, workload

#: Workloads whose call graphs recurse: certified UNBOUNDED, soft flag.
RECURSIVE = {"186.crafty", "252.eon", "176.gcc", "197.parser"}


def _certify_all():
    certificates = []
    validations = []
    for name in ALL_BENCHMARKS:
        certificate, validation = validate_workload(workload(name))
        certificates.append(certificate)
        validations.append(validation)
    return certificates, validations


def test_certify_workloads(benchmark, emit):
    certificates, validations = benchmark.pedantic(
        _certify_all, rounds=1, iterations=1
    )
    text = "== repro certify --all --validate ==\n\n"
    text += render_certificates(certificates, verbose=True)
    text += "\n\n" + render_validations(validations)
    emit("certify_workloads", text)

    recursive_names = {workload(name).full_name for name in RECURSIVE}
    assert len(certificates) == 13
    for certificate in certificates:
        assert certificate.ok, certificate.summary_line()
        assert certificate.lifo_ok
        if certificate.name in recursive_names:
            assert certificate.depth_bound is None
        else:
            assert certificate.depth_bound is not None
    for validation in validations:
        assert validation.ok, validation.render()
    assert "CERTIFIED" in text
    assert "validated, all sound" in text
    assert "FLAGGED" not in text
