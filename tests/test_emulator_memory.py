"""Unit tests for the sparse word-addressed memory."""

import pytest

from repro.emulator.memory import (
    DATA_BASE,
    HEAP_BASE,
    Memory,
    MemoryError_,
    STACK_BASE,
    TEXT_BASE,
)


class TestLayout:
    def test_regions_are_ordered_and_disjoint(self):
        assert TEXT_BASE < DATA_BASE < HEAP_BASE < STACK_BASE

    def test_stack_base_is_word_aligned(self):
        assert STACK_BASE % 8 == 0


class TestQuadWordAccess:
    def test_store_load_round_trip(self):
        memory = Memory()
        memory.store(0x1000, 0x1122334455667788, 8)
        assert memory.load(0x1000, 8) == 0x1122334455667788

    def test_uninitialized_reads_zero(self):
        assert Memory().load(0x2000, 8) == 0

    def test_store_masks_to_64_bits(self):
        memory = Memory()
        memory.store(0x1000, -1, 8)
        assert memory.load(0x1000, 8) == (1 << 64) - 1

    def test_adjacent_words_independent(self):
        memory = Memory()
        memory.store(0x1000, 1, 8)
        memory.store(0x1008, 2, 8)
        assert memory.load(0x1000, 8) == 1
        assert memory.load(0x1008, 8) == 2


class TestLongWordAccess:
    def test_low_half_store(self):
        memory = Memory()
        memory.store(0x1000, 0xAABBCCDD, 4)
        assert memory.load(0x1000, 4) == 0xAABBCCDD

    def test_high_half_does_not_clobber_low(self):
        memory = Memory()
        memory.store(0x1000, 0x11111111, 4)
        memory.store(0x1004, 0x22222222, 4)
        assert memory.load(0x1000, 4) == 0x11111111
        assert memory.load(0x1000, 8) == 0x2222222211111111

    def test_signed_load(self):
        memory = Memory()
        memory.store(0x1000, 0xFFFFFFFF, 4)
        assert memory.load_signed(0x1000, 4) == (1 << 64) - 1  # -1 masked
        memory.store(0x1008, 5, 4)
        assert memory.load_signed(0x1008, 4) == 5


class TestErrors:
    def test_unaligned_quad_rejected(self):
        with pytest.raises(MemoryError_, match="unaligned"):
            Memory().load(0x1004, 8)

    def test_unaligned_long_rejected(self):
        with pytest.raises(MemoryError_, match="unaligned"):
            Memory().store(0x1002, 0, 4)

    def test_bad_size_rejected(self):
        with pytest.raises(MemoryError_, match="size"):
            Memory().load(0x1000, 2)

    def test_negative_address_rejected(self):
        with pytest.raises(MemoryError_):
            Memory().load(-8, 8)


class TestBulk:
    def test_write_read_bytes_round_trip(self):
        memory = Memory()
        payload = bytes(range(1, 20))
        memory.write_bytes(0x1001, payload)
        assert memory.read_bytes(0x1001, len(payload)) == payload

    def test_write_bytes_preserves_neighbors(self):
        memory = Memory()
        memory.store(0x1000, (1 << 64) - 1, 8)
        memory.write_bytes(0x1002, b"\x00")
        assert memory.read_bytes(0x1000, 4) == b"\xff\xff\x00\xff"
