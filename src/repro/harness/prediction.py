"""Cross-check static SVF-traffic bounds against the simulator.

For each workload and each optimization level this driver:

1. compiles the program and computes the per-function static bounds of
   :mod:`repro.analysis.predict`;
2. executes it on the functional emulator, streaming every record into
   a :class:`TrafficSimulator` (so full runs need no materialized
   trace) while counting ``$sp``-relative references and per-function
   activations (entries into each function's first instruction);
3. scales each function's per-activation bound by its activation count
   and asserts the soundness inequality **predicted ≥ measured** for
   both counters — fill-reads avoided and writebacks killed.

The rendered report is the committed
``benchmarks/results/traffic_prediction.txt`` artifact: it shows the
``-O0`` → ``-O1`` dynamic ``$sp``-traffic reduction with bit-identical
outputs, and the bound check at both levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.cfg import build_cfg
from repro.analysis.predict import predict_program
from repro.core.traffic import TrafficSimulator
from repro.emulator import Machine
from repro.emulator.memory import TEXT_BASE
from repro.isa.registers import SP, V0
from repro.lang.codegen import CodegenOptions
from repro.workloads import ALL_BENCHMARKS, workload


class _PredictionSink:
    """Trace sink: traffic model + $sp counts + activation counts."""

    def __init__(self, traffic: TrafficSimulator, entry_points: Dict[int, str]):
        self.traffic = traffic
        self.entry_points = entry_points
        self.sp_loads = 0
        self.sp_stores = 0
        self.activations: Dict[str, int] = {}

    def append(self, record) -> None:
        self.traffic.append(record)
        if (record.is_load or record.is_store) and record.base_reg == SP:
            if record.is_store:
                self.sp_stores += 1
            else:
                self.sp_loads += 1
        name = self.entry_points.get(record.pc)
        if name is not None:
            self.activations[name] = self.activations.get(name, 0) + 1


@dataclass
class LevelMeasurement:
    """One workload at one optimization level."""

    opt_level: int
    instructions: int
    halted: bool
    sp_loads: int
    sp_stores: int
    output: str
    return_value: int
    analyzable: bool
    activations: Dict[str, int] = field(default_factory=dict)
    predicted_fills_avoided: int = 0
    measured_fills_avoided: int = 0
    predicted_writebacks_killed: int = 0
    measured_writebacks_killed: int = 0

    @property
    def sp_refs(self) -> int:
        return self.sp_loads + self.sp_stores

    @property
    def bounds_hold(self) -> bool:
        """The soundness inequality: predicted >= measured, both counters."""
        return (
            self.analyzable
            and self.measured_fills_avoided <= self.predicted_fills_avoided
            and self.measured_writebacks_killed
            <= self.predicted_writebacks_killed
        )


@dataclass
class PredictionRow:
    """One workload across the compared optimization levels."""

    name: str
    levels: Dict[int, LevelMeasurement] = field(default_factory=dict)

    @property
    def outputs_identical(self) -> bool:
        measurements = list(self.levels.values())
        return all(
            m.output == measurements[0].output
            and m.return_value == measurements[0].return_value
            for m in measurements
        )

    @property
    def traffic_reduced(self) -> bool:
        return self.levels[1].sp_refs < self.levels[0].sp_refs

    @property
    def reduction_percent(self) -> float:
        base = self.levels[0].sp_refs
        if base == 0:
            return 0.0
        return 100.0 * (base - self.levels[1].sp_refs) / base

    @property
    def bounds_hold(self) -> bool:
        return all(m.bounds_hold for m in self.levels.values())


@dataclass
class PredictionReport:
    rows: List[PredictionRow] = field(default_factory=list)
    capacity_bytes: int = 8192

    @property
    def workloads_reduced(self) -> int:
        return sum(
            1
            for row in self.rows
            if row.traffic_reduced and row.outputs_identical
        )

    @property
    def all_bounds_hold(self) -> bool:
        return all(row.bounds_hold for row in self.rows)

    def render(self) -> str:
        lines = [
            "Static SVF-traffic prediction vs dynamic measurement",
            f"(full runs; SVF capacity {self.capacity_bytes} bytes; "
            f"predicted = sum over functions of activations x "
            f"per-activation bound)",
            "",
            f"{'workload':17s} {'$sp refs -O0':>12s} {'$sp refs -O1':>12s} "
            f"{'reduction':>9s}  outputs",
        ]
        for row in self.rows:
            lines.append(
                f"{row.name:17s} {row.levels[0].sp_refs:12,d} "
                f"{row.levels[1].sp_refs:12,d} "
                f"{row.reduction_percent:8.1f}%  "
                f"{'identical' if row.outputs_identical else 'DIFFER'}"
            )
        lines.append("")
        lines.append(
            f"{self.workloads_reduced}/{len(self.rows)} workloads reduce "
            f"$sp-relative traffic at -O1 with identical outputs"
        )
        lines.append("")
        lines.append(
            f"{'workload':17s} {'lvl':>4s} "
            f"{'fills avoided pred/meas':>26s} "
            f"{'writebacks killed pred/meas':>30s}  bound"
        )
        for row in self.rows:
            for level in sorted(row.levels):
                m = row.levels[level]
                fills = (
                    f"{m.predicted_fills_avoided:,d} / "
                    f"{m.measured_fills_avoided:,d}"
                )
                kills = (
                    f"{m.predicted_writebacks_killed:,d} / "
                    f"{m.measured_writebacks_killed:,d}"
                )
                lines.append(
                    f"{row.name:17s} {'-O' + str(level):>4s} "
                    f"{fills:>26s} {kills:>30s}  "
                    f"{'holds' if m.bounds_hold else 'VIOLATED'}"
                )
        lines.append("")
        verdict = (
            "every bound holds (predicted >= measured)"
            if self.all_bounds_hold
            else "BOUND VIOLATION: the static predictor is unsound"
        )
        lines.append(verdict)
        return "\n".join(lines)


def check_workload(
    benchmark: str,
    input_name: Optional[str] = None,
    max_instructions: Optional[int] = None,
    capacity_bytes: int = 8192,
    opt_levels: Sequence[int] = (0, 1),
) -> PredictionRow:
    """Measure one workload at each level and attach the static bounds."""
    work = workload(benchmark, input_name)
    row = PredictionRow(name=work.full_name)
    for level in opt_levels:
        options = CodegenOptions(opt_level=level)
        program = work.program(options)
        pcfg = build_cfg(program)
        prediction = predict_program(program, pcfg)
        # Trace records carry byte-addressed pcs.
        entry_points = {
            TEXT_BASE + 4 * f.start: f.name
            for f in pcfg.functions.values()
        }
        sink = _PredictionSink(
            TrafficSimulator(capacity_bytes=capacity_bytes), entry_points
        )
        machine = Machine(program)
        machine.run(max_instructions=max_instructions, trace_sink=sink)
        result = sink.traffic.result()

        predicted_fills = predicted_kills = 0
        if prediction.analyzable:
            for name, count in sink.activations.items():
                bounds = prediction.function(name)
                if bounds is None:
                    continue
                predicted_fills += count * bounds.fill_avoid_bound
                predicted_kills += count * bounds.writeback_kill_bound
        row.levels[level] = LevelMeasurement(
            opt_level=level,
            instructions=machine.instruction_count,
            halted=machine.halted,
            sp_loads=sink.sp_loads,
            sp_stores=sink.sp_stores,
            output=machine.output,
            return_value=machine.registers[V0],
            analyzable=prediction.analyzable,
            activations=dict(sink.activations),
            predicted_fills_avoided=predicted_fills,
            measured_fills_avoided=result.svf_fills_avoided,
            predicted_writebacks_killed=predicted_kills,
            measured_writebacks_killed=result.svf_killed_dirty_words,
        )
    return row


def traffic_prediction_report(
    benchmarks: Optional[Sequence[str]] = None,
    max_instructions: Optional[int] = None,
    capacity_bytes: int = 8192,
    jobs: Optional[int] = None,
    progress=None,
) -> PredictionReport:
    """The committed predicted-vs-measured artifact over the suite.

    ``jobs`` fans the per-workload measurement out over the parallel
    engine (1 = inline); rows always merge back in suite order.  A
    workload that fails after its retry is dropped from the report and
    noted through ``progress`` — the full-run measurements are
    independent, so one bad workload no longer aborts the artifact.
    """
    from repro.harness.parallel import EngineOptions, TaskCell, run_cells

    names = list(benchmarks) if benchmarks else list(ALL_BENCHMARKS)
    cells = [
        TaskCell(
            "prediction",
            benchmark,
            max_instructions,
            (("capacity_bytes", capacity_bytes),),
        )
        for benchmark in names
    ]
    outcomes = run_cells(
        cells, EngineOptions(jobs=jobs), progress=progress
    )
    report = PredictionReport(capacity_bytes=capacity_bytes)
    for outcome in outcomes:
        if outcome.ok:
            report.rows.append(outcome.payload)
        elif progress is not None:
            progress(
                f"dropped {outcome.cell.benchmark}: {outcome.error}"
            )
    return report
