"""Figure 8 — breakdown of SVF reference types.

Paper shape: on average ~86% of stack references are morphed directly
in the front-end ($sp-relative in range) and ~14% are re-routed after
address calculation; eon is the re-route-heavy outlier.
"""

from repro.harness import fig7_svf_vs_stack_cache


def test_fig8(benchmark, emit, timing_window):
    result = benchmark.pedantic(
        lambda: fig7_svf_vs_stack_cache(max_instructions=timing_window),
        rounds=1,
        iterations=1,
    )
    emit("fig8_breakdown", result.render_fig8())

    fractions = {
        name: stats.svf_fast_fraction
        for name, stats in result.svf_stats.items()
        if stats.svf_fast_loads + stats.svf_fast_stores + stats.svf_rerouted
    }
    average_fast = sum(fractions.values()) / len(fractions)
    assert average_fast > 0.6, (
        "most stack references should morph in the front-end"
    )
    # eon re-routes far more than the suite average.
    assert fractions["252.eon"] < average_fast
