"""Ablation — dynamic SVF disable (paper Section 3.3).

"If shown to be necessary because of localized poor SVF performance,
the SVF can be dynamically disabled for a period of time."  The
controller watches the squash rate per instruction window and routes
stack references back to the DL1 during a cooling-off period.  It
should recover most of eon's squash losses *without* the no_squash
recompilation, while leaving squash-free benchmarks untouched.
"""

from repro.harness import percent, render_table
from repro.uarch.config import table2_config
from repro.uarch.pipeline import simulate
from repro.workloads import cached_trace, workload

BENCHMARKS = ["252.eon", "186.crafty", "176.gcc"]


def run_ablation(window):
    rows = []
    base = table2_config(16)
    for name in BENCHMARKS:
        trace = cached_trace(workload(name), window)
        baseline = simulate(trace, base)
        plain = simulate(trace, base.with_svf(mode="svf", ports=2))
        adaptive = simulate(
            trace, base.with_svf(mode="svf", ports=2, adaptive=True)
        )
        rows.append(
            (
                name,
                plain.speedup_over(baseline),
                adaptive.speedup_over(baseline),
                plain.svf_squashes,
                adaptive.svf_squashes,
                adaptive.extras.get("svf_disables", 0),
            )
        )
    return rows


def test_adaptive_disable(benchmark, emit, timing_window):
    rows = benchmark.pedantic(
        lambda: run_ablation(timing_window), rounds=1, iterations=1
    )
    emit(
        "ablation_adaptive",
        render_table(
            ["Benchmark", "plain SVF", "adaptive", "squashes",
             "sq (adaptive)", "disables"],
            [(n, percent(p), percent(a), sq, asq, d)
             for n, p, a, sq, asq, d in rows],
            title="Ablation: dynamic SVF disable under squash storms",
        ),
    )
    by_name = {row[0]: row for row in rows}
    # eon: the adaptive controller must trigger and improve on plain.
    _, eon_plain, eon_adaptive, eon_squash, _, eon_disables = by_name[
        "252.eon"
    ]
    assert eon_squash > 0
    assert eon_disables > 0
    assert eon_adaptive >= eon_plain
    # Squash-free benchmarks are untouched by the controller.
    for name in ("186.crafty", "176.gcc"):
        _, plain, adaptive, squashes, _, disables = by_name[name]
        if squashes == 0:
            assert disables == 0
            assert abs(adaptive - plain) < 0.01
