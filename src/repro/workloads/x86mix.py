"""x86mix — partial-word stack references (the paper's future work).

Paper Section 7: "Our next research project will be to extend this
analysis to the x86 architecture with its increased reliance on the
stack region and its use of partial word references."  This extension
workload models that reference mix: records packed as two 32-bit
fields per quad-word in a stack buffer, manipulated with ``ldl``/
``stl`` partial-word accesses (MiniC's ``load32``/``store32``).

Partial-word stores stress the SVF's granularity semantics: a 32-bit
store to an *invalid* 64-bit granule must read-merge the word, so the
no-fill-on-allocate advantage shrinks — quantified by the partial-word
ablation benchmark.
"""

from __future__ import annotations

from repro.workloads.common import rand_source

_TEMPLATE = """
int records_processed = 0;

int pack_records(int *buffer, int count) {{
    for (int i = 0; i < count; i += 1) {{
        int key = rand31() & 65535;
        int weight = rand31() & 4095;
        store32(buffer, i * 8, key);
        store32(buffer, i * 8 + 4, weight);
    }}
    return count;
}}

int weigh_records(int *buffer, int count) {{
    int total = 0;
    for (int i = 0; i < count; i += 1) {{
        int key = load32(buffer, i * 8);
        int weight = load32(buffer, i * 8 + 4);
        if ((key & 3) == 0) {{
            total += weight;
        }} else {{
            total += weight >> 2;
        }}
        records_processed += 1;
    }}
    return total;
}}

int rebalance(int *buffer, int count) {{
    // Swap the halves of each quad-word record: pure partial-word
    // read-modify-write traffic.
    for (int i = 0; i < count; i += 1) {{
        int key = load32(buffer, i * 8);
        int weight = load32(buffer, i * 8 + 4);
        store32(buffer, i * 8, weight);
        store32(buffer, i * 8 + 4, key);
    }}
    return 0;
}}

int process_batch(int batch_id) {{
    int records[{records}];
    pack_records(&records[0], {records});
    int before = weigh_records(&records[0], {records});
    rebalance(&records[0], {records});
    int after = weigh_records(&records[0], {records});
    return (before + after) & 16777215;
}}

int main() {{
    int checksum = 0;
    for (int batch = 0; batch < {batches}; batch += 1) {{
        checksum += process_batch(batch);
    }}
    print(checksum);
    print(records_processed);
    return 0;
}}
"""


def make_source(records: int = 96, batches: int = 12, seed: int = 8086) -> str:
    """Build the x86mix extension workload."""
    return rand_source(seed) + _TEMPLATE.format(
        records=records, batches=batches
    )


INPUTS = {"ref": dict(seed=8086)}
