"""Control-flow graph reconstruction for assembled :class:`Program`\\ s.

The MiniC toolchain emits a flat text segment; nothing in the
:class:`~repro.isa.instructions.Program` container records function
boundaries or control structure.  This module recovers both:

* **function partitioning** — function entry points are the program's
  entry label, every ``bsr`` target, and every plain (non-``$``) label
  no branch jumps to, so uncalled functions still partition correctly;
  the text segment is split at those indices (functions are emitted
  contiguously, so each function spans from its entry to the next one);
* **basic blocks** — classic leader analysis inside each function:
  the function entry, every branch target, and every instruction
  following a control transfer start a block;
* **edges** — conditional branches get a taken and a fall-through
  edge, ``br`` a single taken edge, ``ret``/``halt`` end the function
  (exit blocks), and calls (``bsr``/``jsr``) fall through — a call
  returns to the next instruction, so it does not terminate a block's
  straight-line execution but is recorded as a call site;
* **call graph** — direct ``bsr`` edges between functions.  Indirect
  transfers (``jsr``/``jmp``) have no static target; they are recorded
  as anomalies so downstream passes know the graph is incomplete.

Anything structurally suspicious found during construction — a branch
that leaves its function, an indirect jump, code that falls off the
end of a function — is collected in :attr:`ProgramCFG.anomalies` for
the lint driver to report rather than raised, so a malformed program
can still be analyzed as far as possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.isa.instructions import Instruction, Program


@dataclass
class CFGAnomaly:
    """A structural oddity met while building the graph."""

    kind: str  # "escaping-branch" | "indirect-jump" | "indirect-call" | "fallthrough-exit"
    function: str
    index: int
    message: str


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions.

    ``start``/``end`` are program-wide instruction indices
    (half-open).  Successor/predecessor lists hold block ids local to
    the owning :class:`FunctionCFG`.
    """

    id: int
    start: int
    end: int
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    def indices(self) -> range:
        return range(self.start, self.end)

    def __len__(self) -> int:
        return self.end - self.start


@dataclass
class FunctionCFG:
    """The control-flow graph of one function."""

    name: str
    start: int
    end: int
    program: Program
    blocks: List[BasicBlock] = field(default_factory=list)
    #: indices of ``bsr``/``jsr`` call sites inside this function
    call_sites: List[int] = field(default_factory=list)

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks with no intra-function successors (ret/halt/jmp)."""
        return [block for block in self.blocks if not block.successors]

    def instruction(self, index: int) -> Instruction:
        return self.program.instructions[index]

    def block_at(self, index: int) -> BasicBlock:
        """The block containing program-wide instruction ``index``."""
        for block in self.blocks:
            if block.start <= index < block.end:
                return block
        raise KeyError(f"index {index} outside function {self.name!r}")

    def reverse_postorder(self) -> List[BasicBlock]:
        """Blocks in reverse post-order from the entry.

        Unreachable blocks are appended after the reachable ones so
        every block is visited exactly once by dataflow solvers.
        """
        seen: Set[int] = set()
        order: List[int] = []

        def visit(block_id: int) -> None:
            # Iterative DFS; generated functions can be deep but the
            # block graph is small, so recursion depth is the only risk.
            stack: List[Tuple[int, Iterator[int]]] = []
            seen.add(block_id)
            stack.append((block_id, iter(self.blocks[block_id].successors)))
            while stack:
                current, successors = stack[-1]
                advanced = False
                for successor in successors:
                    if successor not in seen:
                        seen.add(successor)
                        stack.append(
                            (successor, iter(self.blocks[successor].successors))
                        )
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(0)
        postorder = list(reversed(order))
        unreachable = [b.id for b in self.blocks if b.id not in seen]
        return [self.blocks[i] for i in postorder + unreachable]

    def reachable_ids(self) -> Set[int]:
        seen: Set[int] = {0}
        work = [0]
        while work:
            for successor in self.blocks[work.pop()].successors:
                if successor not in seen:
                    seen.add(successor)
                    work.append(successor)
        return seen


@dataclass
class ProgramCFG:
    """CFGs for every function plus the direct call graph."""

    program: Program
    functions: Dict[str, FunctionCFG] = field(default_factory=dict)
    #: caller name -> set of callee names (direct ``bsr`` edges only)
    call_graph: Dict[str, Set[str]] = field(default_factory=dict)
    anomalies: List[CFGAnomaly] = field(default_factory=list)

    def function_at(self, index: int) -> Optional[FunctionCFG]:
        for function in self.functions.values():
            if function.start <= index < function.end:
                return function
        return None


def _function_entries(program: Program) -> Dict[int, str]:
    """Map function entry index -> function name.

    Entries are the program entry label, every direct call target, and
    every *plain* text label (no ``$`` — the compiler reserves ``$``
    for internal labels) that no branch jumps to: an uncalled function
    still partitions as its own function instead of being absorbed as
    unreachable code into its predecessor.  When several labels alias
    an index, a plain label wins over internal ones.
    """
    call_targets: Set[int] = set()
    branch_targets: Set[int] = set()
    for instruction in program.instructions:
        if instruction.target_index is None:
            continue
        if instruction.op == "bsr":
            call_targets.add(instruction.target_index)
        else:
            branch_targets.add(instruction.target_index)

    entry_index = program.labels.get(program.entry, 0)
    indices = set(call_targets) | {entry_index}
    for label, index in program.labels.items():
        if "$" not in label and index not in branch_targets:
            indices.add(index)

    labels_at: Dict[int, List[str]] = {}
    for label, index in program.labels.items():
        labels_at.setdefault(index, []).append(label)

    entries: Dict[int, str] = {}
    for index in indices:
        names = sorted(labels_at.get(index, []))
        # Prefer non-internal labels ("$" marks compiler-generated ones).
        plain = [name for name in names if "$" not in name]
        entries[index] = (plain or names or [f"func_{index}"])[0]
    return entries


def build_cfg(program: Program) -> ProgramCFG:
    """Reconstruct per-function CFGs and the call graph of ``program``."""
    cfg = ProgramCFG(program=program)
    if not program.instructions:
        return cfg

    entries = _function_entries(program)
    starts = sorted(entries)
    bounds = {
        start: (starts[i + 1] if i + 1 < len(starts) else len(program))
        for i, start in enumerate(starts)
    }
    # Instructions before the first entry belong to no function; the
    # assembler only produces them for hand-written sources.
    if starts[0] != 0:
        entries[0] = "__prelude"
        bounds[0] = starts[0]
        starts.insert(0, 0)

    index_to_name: Dict[int, str] = {}
    for start in starts:
        function = _build_function(
            program, entries[start], start, bounds[start], cfg.anomalies
        )
        cfg.functions[function.name] = function
        index_to_name[start] = function.name

    for function in cfg.functions.values():
        callees = cfg.call_graph.setdefault(function.name, set())
        for site in function.call_sites:
            instruction = program.instructions[site]
            if instruction.op == "bsr" and instruction.target_index is not None:
                callees.add(index_to_name[instruction.target_index])
    return cfg


def _terminates_block(instruction: Instruction) -> bool:
    """True when control does not fall through to the next instruction."""
    if instruction.op in ("ret", "halt", "jmp", "br"):
        return True
    return instruction.is_conditional


def _build_function(
    program: Program,
    name: str,
    start: int,
    end: int,
    anomalies: List[CFGAnomaly],
) -> FunctionCFG:
    function = FunctionCFG(name=name, start=start, end=end, program=program)
    instructions = program.instructions

    leaders: Set[int] = {start}
    for index in range(start, end):
        instruction = instructions[index]
        if instruction.op in ("bsr", "jsr"):
            function.call_sites.append(index)
        target = instruction.target_index
        if target is not None and instruction.op != "bsr":
            if start <= target < end:
                leaders.add(target)
            else:
                anomalies.append(CFGAnomaly(
                    "escaping-branch", name, index,
                    f"branch target leaves function {name!r}",
                ))
        if _terminates_block(instruction) and index + 1 < end:
            leaders.add(index + 1)

    ordered = sorted(leaders)
    id_of: Dict[int, int] = {}
    for block_id, block_start in enumerate(ordered):
        block_end = ordered[block_id + 1] if block_id + 1 < len(ordered) else end
        function.blocks.append(BasicBlock(block_id, block_start, block_end))
        id_of[block_start] = block_id

    for block in function.blocks:
        last = instructions[block.end - 1]
        successors: List[int] = []
        target = last.target_index
        if last.is_conditional:
            if target is not None and start <= target < end:
                successors.append(id_of[target])
            if block.end < end:
                successors.append(id_of[block.end])
        elif last.op == "br":
            if target is not None and start <= target < end:
                successors.append(id_of[target])
        elif last.op in ("ret", "halt"):
            pass  # function exit
        elif last.op == "jmp":
            anomalies.append(CFGAnomaly(
                "indirect-jump", name, block.end - 1,
                "indirect jump: control-flow graph is incomplete",
            ))
        else:  # straight-line fall-through (includes calls)
            if block.end < end:
                successors.append(id_of[block.end])
            else:
                anomalies.append(CFGAnomaly(
                    "fallthrough-exit", name, block.end - 1,
                    f"control falls off the end of function {name!r}",
                ))
        block.successors = successors

    for block in function.blocks:
        for successor in block.successors:
            function.blocks[successor].predecessors.append(block.id)

    for site in function.call_sites:
        if instructions[site].op == "jsr":
            anomalies.append(CFGAnomaly(
                "indirect-call", name, site,
                "indirect call: callee unknown to the call graph",
            ))
    return function
