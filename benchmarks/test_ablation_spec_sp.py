"""Ablation — the speculative $sp copy in decode (paper Section 3.1).

The SVF morphs $sp-relative references in the *decode* stage using a
speculative $sp register updated on immediate adjustments.  Without
it, every morphed reference would wait for the architectural $sp to
be computed, re-serializing the very dependence the SVF removes.
"""

from repro.harness import percent, render_table
from repro.uarch.config import table2_config
from repro.uarch.pipeline import simulate
from repro.workloads import cached_trace, workload

BENCHMARKS = ["186.crafty", "176.gcc", "197.parser", "175.vpr"]


def run_ablation(window):
    rows = []
    base = table2_config(16)
    for name in BENCHMARKS:
        trace = cached_trace(workload(name), window)
        baseline = simulate(trace, base)
        with_spec = simulate(
            trace, base.with_svf(mode="svf", ports=2, spec_sp=True)
        )
        without_spec = simulate(
            trace, base.with_svf(mode="svf", ports=2, spec_sp=False)
        )
        rows.append(
            (
                name,
                with_spec.speedup_over(baseline),
                without_spec.speedup_over(baseline),
            )
        )
    return rows


def test_spec_sp_ablation(benchmark, emit, timing_window):
    rows = benchmark.pedantic(
        lambda: run_ablation(timing_window), rounds=1, iterations=1
    )
    emit(
        "ablation_spec_sp",
        render_table(
            ["Benchmark", "with spec $sp", "without"],
            [(n, percent(a), percent(b)) for n, a, b in rows],
            title="Ablation: speculative $sp copy in decode "
            "(SVF (2+2) speedup over baseline)",
        ),
    )
    with_avg = sum(a for _, a, _ in rows) / len(rows)
    without_avg = sum(b for _, _, b in rows) / len(rows)
    assert with_avg >= without_avg, (
        "the speculative $sp copy should never hurt"
    )
