"""Differential gate for the vectorized timing walk.

``simulate`` dispatches to ``_simulate_fast`` when numpy is enabled
and to the pure-python reference walk otherwise; the two must agree
bit-for-bit on every statistic, across every configuration axis the
fast path specializes (routing modes, banking, squashes, adaptive
windows, context switches, real branch prediction).
"""

import dataclasses

import pytest

from repro.trace.columnar import ColumnarTrace, set_numpy_enabled
from repro.trace.columnar import _np as _numpy
from repro.uarch.config import table2_config
from repro.uarch.pipeline import simulate
from repro.workloads import workload

WINDOW = 8_000

pytestmark = pytest.mark.skipif(
    _numpy is None, reason="numpy unavailable: only one walk to run"
)

_BASE = table2_config(16)

#: every configuration axis the fast walk special-cases.
CONFIGS = {
    "base": _BASE,
    "svf": _BASE.with_svf(mode="svf", ports=2),
    "svf_banked": _BASE.with_svf(mode="svf", ports=1, banks=4),
    "ideal": _BASE.with_svf(mode="ideal"),
    "stack_cache": _BASE.with_svf(mode="stack_cache"),
    "adaptive": _BASE.with_svf(mode="svf", ports=2, adaptive=True),
    "no_squash": _BASE.with_svf(mode="svf", ports=2, no_squash=True),
    "ctx_switch": dataclasses.replace(
        _BASE.with_svf(mode="svf", ports=2), context_switch_period=2_000
    ),
    "gshare": dataclasses.replace(
        _BASE.with_svf(mode="svf", ports=2), branch_predictor="gshare"
    ),
}


def _both_walks(trace, config):
    previous = set_numpy_enabled(False)
    try:
        reference = simulate(trace, config)
    finally:
        set_numpy_enabled(previous)
    previous = set_numpy_enabled(True)
    try:
        fast = simulate(trace, config)
    finally:
        set_numpy_enabled(previous)
    return reference, fast


def _assert_stats_equal(reference, fast, label):
    for field in dataclasses.fields(reference):
        ref_value = getattr(reference, field.name)
        fast_value = getattr(fast, field.name)
        assert fast_value == ref_value, (
            f"{label}: {field.name} diverged "
            f"(reference {ref_value!r}, fast {fast_value!r})"
        )


@pytest.fixture(scope="module")
def gzip_trace():
    return workload("gzip").trace(max_instructions=WINDOW)


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_fast_walk_matches_reference(gzip_trace, name):
    reference, fast = _both_walks(gzip_trace, CONFIGS[name])
    _assert_stats_equal(reference, fast, name)


@pytest.mark.parametrize("bench", ["crafty", "mcf", "perlbmk"])
def test_fast_walk_across_workload_shapes(bench):
    # Three very different reference structures: deep recursion
    # (crafty), pointer chasing (mcf), and an interpreter loop
    # (perlbmk) — between them they exercise rerouting, out-of-range
    # offsets, and dense stack reuse.
    trace = workload(bench).trace(max_instructions=WINDOW)
    for name in ("base", "svf", "ideal", "gshare"):
        reference, fast = _both_walks(trace, CONFIGS[name])
        _assert_stats_equal(reference, fast, f"{bench}:{name}")


def test_empty_trace_is_identical():
    reference, fast = _both_walks(ColumnarTrace(), CONFIGS["svf"])
    _assert_stats_equal(reference, fast, "empty")
    assert fast.instructions == 0


def test_record_list_routes_through_reference(gzip_trace):
    # Non-columnar input (a plain record list) is packed and accepted
    # by both walks with identical results.
    records = list(gzip_trace.records())[:1_000]
    reference, fast = _both_walks(records, CONFIGS["svf"])
    _assert_stats_equal(reference, fast, "records")
