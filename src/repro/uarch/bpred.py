"""Branch predictors for the trace-driven timing model.

The paper's headline experiments use a perfect predictor to isolate
memory-system effects (Section 4); the last column of Figure 5 uses
gshare.  Calls, returns and unconditional branches are assumed
correctly predicted under both schemes (BTB + return-address stack),
matching the usual SimpleScalar setup.
"""

from __future__ import annotations


class PerfectPredictor:
    """Never mispredicts."""

    def predict(self, record) -> bool:
        """Return True if the branch is predicted correctly."""
        return True

    def predict_bits(self, pc: int, is_conditional, taken) -> bool:
        """Unpacked-field twin of :meth:`predict` (columnar hot loop)."""
        return True


class GSharePredictor:
    """Global-history XOR-indexed two-bit-counter predictor."""

    def __init__(self, history_bits: int = 12, table_bits: int = 12):
        self.history_bits = history_bits
        self.table_bits = table_bits
        self._history = 0
        self._history_mask = (1 << history_bits) - 1
        self._table_mask = (1 << table_bits) - 1
        self._counters = [2] * (1 << table_bits)
        self.lookups = 0
        self.mispredictions = 0

    def predict(self, record) -> bool:
        """Predict one branch record; updates state; True if correct."""
        return self.predict_bits(record.pc, record.is_conditional, record.taken)

    def predict_bits(self, pc: int, is_conditional, taken) -> bool:
        """Predict one branch from unpacked fields; True if correct.

        ``is_conditional``/``taken`` accept any truthy value (the
        columnar loop passes raw flag bits).
        """
        if not is_conditional:
            return True
        self.lookups += 1
        index = ((pc >> 2) ^ self._history) & self._table_mask
        counter = self._counters[index]
        predicted_taken = counter >= 2
        taken = bool(taken)
        if taken and counter < 3:
            self._counters[index] = counter + 1
        elif not taken and counter > 0:
            self._counters[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        correct = predicted_taken == taken
        if not correct:
            self.mispredictions += 1
        return correct

    @property
    def misprediction_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.mispredictions / self.lookups


def make_predictor(kind: str):
    """Factory used by the pipeline ('perfect' or 'gshare')."""
    if kind == "perfect":
        return PerfectPredictor()
    if kind == "gshare":
        return GSharePredictor()
    raise ValueError(f"unknown predictor {kind!r}")
