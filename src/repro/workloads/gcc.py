"""176.gcc — optimizing compiler (expression trees + recursive passes).

Models the compiler's shape: heap-allocated IR trees walked by deeply
recursive passes whose frames carry *large local buffers*.  The paper
reports gcc has the largest average reference distance from TOS (380
bytes) and is the only benchmark with meaningful SVF traffic left at
8 KB — both consequences of big frames and deep recursion, reproduced
here with per-frame scratch tables in the recursive folder.
"""

from __future__ import annotations

from repro.workloads.common import rand_source

# IR node layout: [opcode, left, right, value]
_TEMPLATE = """
int fold_count = 0;

int build_tree(int depth, int entropy) {{
    int *node = alloc(4);
    if (depth == 0) {{
        node[0] = 0;
        node[1] = 0;
        node[2] = 0;
        node[3] = entropy & 255;
        return node;
    }}
    node[0] = 1 + (entropy % 4);
    node[1] = build_tree(depth - 1, entropy * 2654435761 + 1);
    node[2] = build_tree(depth - 1, entropy * 40503 + 7);
    node[3] = 0;
    return node;
}}

int fold(int *node) {{
    int scratch[{frame_buffer}];
    fold_count += 1;
    int opcode = node[0];
    if (opcode == 0) {{
        return node[3];
    }}
    int left = fold(node[1]);
    int right = fold(node[2]);
    for (int i = 0; i < {frame_touch}; i += 1) {{
        scratch[i] = left + i * right;
    }}
    int acc = 0;
    for (int i = 0; i < {frame_touch}; i += 1) {{
        acc ^= scratch[i];
    }}
    int result = 0;
    if (opcode == 1) {{
        result = left + right;
    }}
    if (opcode == 2) {{
        result = left - right;
    }}
    if (opcode == 3) {{
        result = left * right;
    }}
    if (opcode == 4) {{
        if (right == 0) {{
            right = 1;
        }}
        result = left / right;
    }}
    node[3] = result;
    node[0] = 0;
    return result + (acc & 15);
}}

int count_leaves(int *node) {{
    if (node[0] == 0) {{
        return 1;
    }}
    return count_leaves(node[1]) + count_leaves(node[2]);
}}

int main() {{
    int total = 0;
    int leaves = 0;
    for (int unit = 0; unit < {units}; unit += 1) {{
        int *tree = build_tree({depth}, rand31());
        leaves += count_leaves(tree);
        total += fold(tree);
    }}
    print(total);
    print(leaves);
    print(fold_count);
    return 0;
}}
"""


def make_source(
    units: int = 6,
    depth: int = 7,
    frame_buffer: int = 48,
    frame_touch: int = 12,
    seed: int = 176,
) -> str:
    """Build the gcc workload.

    ``frame_buffer`` sets the per-frame scratch array (large frames are
    what push gcc's references far from the TOS).
    """
    return rand_source(seed) + _TEMPLATE.format(
        units=units,
        depth=depth,
        frame_buffer=frame_buffer,
        frame_touch=min(frame_touch, frame_buffer),
    )


INPUTS = {
    "cp-decl": dict(seed=176, depth=8, units=3, frame_buffer=84, frame_touch=8),
    "integrate": dict(seed=55176, depth=9, units=4, frame_buffer=96, frame_touch=8),
}
