"""Table 1 — the benchmark/input inventory."""

from repro.harness import table1_workloads
from repro.workloads import BENCHMARK_ORDER, all_inputs


def test_table1(benchmark, emit):
    text = benchmark.pedantic(table1_workloads, rounds=1, iterations=1)
    emit("table1_workloads", text)
    for name in BENCHMARK_ORDER:
        assert name in text
    # Paper Table 1 lists 12 benchmarks; our inputs expand to 17 rows
    # (bzip2 x2, eon x2, gcc x2, gzip x3) as in the paper's Table 3.
    assert len(all_inputs()) == 17
