"""Adversarial stack workloads: programs that *break* the contract.

The registry workloads are deliberately well-behaved — the certifier
(:mod:`repro.analysis.certify`) proves them clean.  This family is the
other half of the grading: each member violates (or defeats) one stack
invariant the SVF relies on, and the certifier must flag it with a
concrete counterexample path.  None of these join ``ALL_BENCHMARKS``;
they exist purely for detection tests and ``repro certify
--adversarial``.

Members
-------
``deep-recursion``    self-recursion: no static depth bound exists.
``mutual-recursion``  a two-function call cycle; same, via an SCC.
``sp-escape``         a local's address stored to a global — the
                      CleanStack "unclean object": later aliasing is
                      invisible to stack tracking.
``frame-overflow``    a store through ``$sp`` past the frame's top,
                      clobbering the caller's frame region.
``lifo-violation``    a statically reachable path that returns with
                      ``$sp`` unbalanced (the executed path behaves,
                      so the program still halts — only the *proof*
                      is impossible).
``indirect-call``     a ``jsr`` through a register: the call graph is
                      incomplete and no depth bound can be claimed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.emulator.machine import Machine
from repro.isa.assembler import assemble
from repro.isa.instructions import Program
from repro.lang.codegen import CodegenOptions, compile_program
from repro.trace.columnar import ColumnarTrace

_DEEP_RECURSION = """
int sum_to(int n) {
    if (n < 1) { return 0; }
    return n + sum_to(n - 1);
}

int main() {
    print(sum_to(64));
    return 0;
}
"""

_MUTUAL_RECURSION = """
int is_even(int n) {
    if (n == 0) { return 1; }
    return is_odd(n - 1);
}

int is_odd(int n) {
    if (n == 0) { return 0; }
    return is_even(n - 1);
}

int main() {
    print(is_even(40));
    print(is_odd(17));
    return 0;
}
"""

# A local's address laundered into a global integer: every later
# ``leak[0]`` access aliases the frame slot through memory the frame
# tracking cannot see.  (MiniC has no pointer globals, but ints and
# pointers interconvert freely.)
_SP_ESCAPE = """
int leak;

int poke() {
    leak[0] = leak[0] + 41;
    return leak[0];
}

int main() {
    int x = 1;
    leak = &x;
    print(poke());
    print(x);
    return 0;
}
"""

# main allocates a 16-byte frame but stores at +24($sp): 8 bytes past
# the frame top, inside the caller's frame region.  The emulator's
# sparse memory happily takes the write (it lands above STACK_BASE),
# so the program runs to completion — only the certificate must object.
_FRAME_OVERFLOW = """
.text
main:
    lda   sp, -16(sp)
    lda   t0, 7(zero)
    stq   t0, 0(sp)
    stq   t0, 24(sp)
    ldq   v0, 0(sp)
    lda   sp, 16(sp)
    ret
"""

# The a0 != 0 path deallocates only half the frame before returning:
# statically reachable, so no LIFO proof exists.  Execution enters
# with a0 = 0 and takes the balanced path, so the program halts
# cleanly — the violation is a static counterexample, not a crash.
_LIFO_VIOLATION = """
.text
main:
    lda   sp, -32(sp)
    stq   ra, 0(sp)
    bne   a0, main$skew
    ldq   ra, 0(sp)
    lda   sp, 32(sp)
    ret
main$skew:
    ldq   ra, 0(sp)
    lda   sp, 16(sp)
    ret
"""

# ``jsr`` through t0.  The target address is helper's absolute text
# address: TEXT_BASE (0x1000) + 4 * 7 (main has seven instructions and
# helper follows immediately).
_INDIRECT_CALL = """
.text
main:
    lda   sp, -16(sp)
    stq   ra, 0(sp)
    lda   t0, 4124(zero)
    jsr   t0
    ldq   ra, 0(sp)
    lda   sp, 16(sp)
    ret
helper:
    lda   v0, 7(zero)
    ret
"""


@dataclass(frozen=True)
class AdversarialProgram:
    """One contract-violating program plus the flags it must earn."""

    name: str
    description: str
    kind: str  # "minic" | "asm"
    source: str
    #: flag kinds the certifier must raise (subset check)
    expected_flags: Tuple[str, ...]
    #: does the program still run to a clean halt on the emulator?
    runs: bool = True

    def program(self, options: Optional[CodegenOptions] = None) -> Program:
        if self.kind == "minic":
            return compile_program(self.source, options)
        return assemble(self.source)

    def run(
        self,
        max_instructions: Optional[int] = 1_000_000,
        trace_sink=None,
        options: Optional[CodegenOptions] = None,
    ) -> Machine:
        machine = Machine(self.program(options))
        machine.run(max_instructions=max_instructions,
                    trace_sink=trace_sink)
        return machine

    def trace(
        self,
        max_instructions: Optional[int] = 1_000_000,
        options: Optional[CodegenOptions] = None,
    ) -> ColumnarTrace:
        trace = ColumnarTrace()
        self.run(max_instructions=max_instructions, trace_sink=trace,
                 options=options)
        return trace


ADVERSARIAL = (
    AdversarialProgram(
        name="deep-recursion",
        description="self-recursive call chain (no static depth bound)",
        kind="minic",
        source=_DEEP_RECURSION,
        expected_flags=("unbounded-depth",),
    ),
    AdversarialProgram(
        name="mutual-recursion",
        description="two-function recursion cycle (SCC of size 2)",
        kind="minic",
        source=_MUTUAL_RECURSION,
        expected_flags=("unbounded-depth",),
    ),
    AdversarialProgram(
        name="sp-escape",
        description="frame-slot address stored to a global (unclean)",
        kind="minic",
        source=_SP_ESCAPE,
        expected_flags=("unclean-escape",),
    ),
    AdversarialProgram(
        name="frame-overflow",
        description="store through $sp past the frame top",
        kind="asm",
        source=_FRAME_OVERFLOW,
        expected_flags=("lifo-violation",),
    ),
    AdversarialProgram(
        name="lifo-violation",
        description="reachable return path with unbalanced $sp",
        kind="asm",
        source=_LIFO_VIOLATION,
        expected_flags=("lifo-violation",),
    ),
    AdversarialProgram(
        name="indirect-call",
        description="jsr through a register (incomplete call graph)",
        kind="asm",
        source=_INDIRECT_CALL,
        expected_flags=("unknown-callee",),
    ),
)


def adversarial_program(name: str) -> AdversarialProgram:
    for member in ADVERSARIAL:
        if member.name == name:
            return member
    from repro.errors import UsageError

    known = ", ".join(member.name for member in ADVERSARIAL)
    raise UsageError(f"unknown adversarial program {name!r} (known: {known})")


__all__ = ["ADVERSARIAL", "AdversarialProgram", "adversarial_program"]
