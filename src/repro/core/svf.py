"""The Stack Value File (paper Section 3) — the primary contribution.

The SVF is a non-architected register file holding the quad-words of
stack memory nearest the top of stack.  It is a circular buffer indexed
by low-order address bits covering the single contiguous address window
``[TOS, TOS + capacity)``; because the window is contiguous it needs no
per-line tags, only a bounds check (plus one page tag per spanned page,
which we track for area accounting only).

Per-quad-word **valid** and **dirty** bits exploit stack semantics
(Section 3.3):

* growing the stack (``$sp`` decreases) exposes *uninitialized* words
  at the bottom of the window — they are marked invalid and never read
  from the cache (a conventional cache must fill the line on a write
  miss);
* shrinking the stack (``$sp`` increases) *kills* the words between
  the old and new TOS — they are dropped without writeback, even when
  dirty (a conventional cache must write the dirty line back);
* words that slide off the *top* of the window while still live are
  written back only if dirty, at 8-byte granularity.

The class is a pure state machine: it counts quad-word traffic in/out
(the paper's Table 3 metric) and reports hit/fill behaviour so the
timing model in :mod:`repro.uarch.pipeline` can attach latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class SVFAccess:
    """Outcome of one reference presented to the SVF."""

    #: the address fell inside the covered window
    in_range: bool
    #: the word was valid (no demand fill needed)
    hit: bool = False
    #: quad-words read from the L1 to satisfy this access
    filled: int = 0


class StackValueFile:
    """Circular-buffer stack value file with per-word valid/dirty bits.

    ``granularity`` is the size in bytes tracked by one valid/dirty
    bit pair.  The paper (Section 3.3) argues 64 bits (8 bytes, the
    Alpha's natural data size) is the right choice and that coarser
    granularity increases memory traffic — which the granularity
    ablation benchmark demonstrates.
    """

    WORD = 8

    def __init__(
        self,
        capacity_bytes: int = 8192,
        page_size: int = 4096,
        granularity: int = 8,
    ):
        if granularity % self.WORD != 0 or granularity <= 0:
            raise ValueError("granularity must be a positive multiple of 8")
        if capacity_bytes % granularity != 0 or capacity_bytes <= 0:
            raise ValueError(
                "capacity must be a positive multiple of the granularity"
            )
        self.granularity = granularity
        self.capacity = capacity_bytes
        self.page_size = page_size
        #: optional callable(addr) invoked for every granule written
        #: back to the L1 (lets a timing model install the line there)
        self.writeback_sink = None
        #: current TOS; None until the first $sp value is observed
        self.tos: Optional[int] = None
        #: covered quad-word address -> dirty flag (absent = invalid)
        self._words: Dict[int, bool] = {}
        #: granule addresses exposed by a TOS decrease and not yet
        #: validated — "freshly allocated" stack whose fill the valid
        #: bits can skip.  Granules re-entering after an eviction or a
        #: shrink are *not* fresh: their memory image is live.
        self._fresh: set = set()
        # Traffic counters (quad-words between the SVF and the L1).
        self.qw_in = 0
        self.qw_out = 0
        # Behaviour counters.
        self.hits = 0
        self.fills = 0
        self.out_of_range = 0
        self.killed_words = 0
        self.context_switches = 0
        #: full-granule stores that validated a *fresh* granule — the
        #: fill reads a conventional write-allocate cache would have
        #: issued for newly allocated frame words (checked against the
        #: static per-function bounds of repro.analysis.predict).
        self.fills_avoided = 0
        #: subset of killed_words that were dirty — the writebacks the
        #: kill actually elided (Table 3's traffic win at frame death).
        self.killed_dirty_words = 0

    # -- geometry ------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        """Number of 64-bit registers in the file."""
        return self.capacity // self.WORD

    @property
    def num_page_tags(self) -> int:
        """Page tags needed to cover the window (paper: 8 KB -> 3 tags)."""
        return self.capacity // self.page_size + 1

    def covers(self, addr: int) -> bool:
        """Bounds check: is ``addr`` inside the covered window?"""
        if self.tos is None:
            return False
        return self.tos <= addr < self.tos + self.capacity

    # -- stack-pointer tracking ------------------------------------------------

    def update_sp(self, new_sp: int) -> int:
        """Slide the window to a new TOS; returns quad-words written back.

        Growing (``new_sp < tos``): live words fall off the *top* of
        the window — dirty ones are written back.  The newly exposed
        words at the bottom are uninitialized and enter invalid.

        Shrinking (``new_sp > tos``): words between old and new TOS are
        dead — dropped with no writeback.  Words entering at the top
        are live but unknown — they enter invalid and fill on demand.
        """
        if self.tos is None:
            self.tos = new_sp
            return 0
        old = self.tos
        if new_sp == old:
            return 0
        written = 0
        if new_sp < old:
            # Stack grows: window slides down; top range leaves coverage.
            lo = max(new_sp + self.capacity, new_sp)
            hi = old + self.capacity
            written = self._evict_range(lo, hi, writeback=True)
            # Words entering at the bottom are freshly allocated frame
            # space: invalid, and a full-granule store may validate
            # them without any fill.
            granularity = self.granularity
            fresh_hi = min(old, new_sp + self.capacity)
            start = new_sp & ~(granularity - 1)
            self._fresh.update(range(start, fresh_hi, granularity))
        else:
            # Stack shrinks: words between old and new TOS die.
            kill_hi = min(new_sp, old + self.capacity)
            self._evict_range(old, kill_hi, writeback=False)
        self.tos = new_sp
        return written

    def _evict_range(self, lo: int, hi: int, writeback: bool) -> int:
        """Drop coverage of [lo, hi); returns quad-words written back.

        Granules straddling the range edge are evicted whole — with
        coarse granularity this is one source of the extra traffic the
        paper warns about.
        """
        if hi <= lo:
            return 0
        granularity = self.granularity
        words_per_granule = granularity // self.WORD
        written = 0
        span_granules = (hi - lo) // granularity + 2
        start = lo & ~(granularity - 1)
        if span_granules < len(self._words):
            addresses = [
                a
                for a in range(start, hi, granularity)
                if a in self._words
            ]
        else:
            addresses = [a for a in self._words if lo - granularity < a < hi]
        for addr in addresses:
            dirty = self._words.pop(addr)
            if writeback and dirty:
                written += words_per_granule
                if self.writeback_sink is not None:
                    self.writeback_sink(addr)
            elif not writeback:
                self.killed_words += words_per_granule
                if dirty:
                    self.killed_dirty_words += words_per_granule
        # Granules leaving coverage (either edge) are no longer fresh.
        if len(self._fresh) > span_granules:
            for addr in range(start, hi, granularity):
                self._fresh.discard(addr)
        else:
            self._fresh.difference_update(
                a for a in list(self._fresh) if lo - granularity < a < hi
            )
        self.qw_out += written
        return written

    # -- data access -----------------------------------------------------------

    def access(self, addr: int, size: int, is_store: bool) -> SVFAccess:
        """Present one stack reference; updates state and traffic."""
        if not self.covers(addr):
            self.out_of_range += 1
            return SVFAccess(in_range=False)
        granule = addr & ~(self.granularity - 1)
        valid = granule in self._words
        filled = 0
        if is_store:
            if not valid and size < self.granularity:
                # Sub-granule store to an invalid granule: read-merge
                # fill (never happens at the natural 8-byte/quad-word
                # granularity for quad-word stores).
                filled = self.granularity // self.WORD
            elif not valid and granule in self._fresh:
                # Full-granule store validating freshly allocated stack
                # without any fill: the win the valid bits exist for.
                self.fills_avoided += 1
            self._words[granule] = True
        else:
            if not valid:
                filled = self.granularity // self.WORD
                self._words[granule] = False
        if not valid:
            self._fresh.discard(granule)
        self.qw_in += filled
        if filled:
            self.fills += 1
            return SVFAccess(in_range=True, hit=False, filled=filled)
        self.hits += 1
        return SVFAccess(in_range=True, hit=True)

    # -- context switches -------------------------------------------------------

    def context_switch(self) -> int:
        """Flush for a context switch; returns bytes written back.

        Only valid *and* dirty words are written, at 64-bit granularity
        — the paper's Table 4 metric.  All words are invalidated.
        """
        self.context_switches += 1
        dirty = 0
        for addr, is_dirty in self._words.items():
            if is_dirty:
                dirty += 1
                if self.writeback_sink is not None:
                    self.writeback_sink(addr)
        self._words.clear()
        self._fresh.clear()
        self.qw_out += dirty * (self.granularity // self.WORD)
        return dirty * self.granularity

    # -- introspection -----------------------------------------------------------

    @property
    def valid_words(self) -> int:
        return len(self._words) * (self.granularity // self.WORD)

    @property
    def dirty_words(self) -> int:
        return sum(
            1 for is_dirty in self._words.values() if is_dirty
        ) * (self.granularity // self.WORD)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tos = f"0x{self.tos:x}" if self.tos is not None else "unset"
        return (
            f"<StackValueFile {self.capacity}B tos={tos} "
            f"valid={self.valid_words} dirty={self.dirty_words}>"
        )
