"""Workload registry: the SPECint2000-inspired suite (paper Table 1).

Each workload is a MiniC program modeled on the algorithmic core of one
SPEC CPU2000 integer benchmark, with one or more input sets mirroring
the reference/training inputs the paper lists in Table 1.  The
substitution rationale is recorded in DESIGN.md: the SVF's behaviour
depends on *stack reference structure* (call depth, `$sp`-relative
slot traffic, address-taken escapes), which compiled MiniC reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import profiling
from repro.emulator.machine import Machine
from repro.errors import UsageError
from repro.lang.codegen import CodegenOptions, compile_program
from repro.trace.columnar import ColumnarTrace
from repro.workloads import (
    bzip2,
    crafty,
    eon,
    gap,
    gcc,
    gzip,
    mcf,
    parser,
    perlbmk,
    twolf,
    vortex,
    vpr,
    x86mix,
)


@dataclass(frozen=True)
class Workload:
    """One (benchmark, input) pair."""

    name: str
    input_name: str
    description: str
    make_source: Callable[..., str]
    params: dict = field(default_factory=dict)

    @property
    def full_name(self) -> str:
        """Table-3 style row label, e.g. ``bzip2.graphic``."""
        short = self.name.split(".", 1)[1]
        return f"{short}.{self.input_name}"

    def source(self, **overrides) -> str:
        merged = dict(self.params)
        merged.update(overrides)
        return self.make_source(**merged)

    def program(self, options: Optional[CodegenOptions] = None, **overrides):
        profiler = profiling.active()
        if profiler is None:
            return compile_program(self.source(**overrides), options)
        started = perf_counter()
        program = compile_program(self.source(**overrides), options)
        profiler.note("compile", perf_counter() - started, len(program))
        return program

    def run(
        self,
        max_instructions: Optional[int] = None,
        trace_sink=None,
        options: Optional[CodegenOptions] = None,
        **overrides,
    ) -> Machine:
        """Compile and execute, streaming records into ``trace_sink``."""
        machine = Machine(self.program(options, **overrides))
        machine.run(max_instructions=max_instructions, trace_sink=trace_sink)
        return machine

    def trace(
        self,
        max_instructions: Optional[int] = None,
        options: Optional[CodegenOptions] = None,
        **overrides,
    ) -> ColumnarTrace:
        """Compile, execute, and return the full trace (columnar)."""
        trace = ColumnarTrace()
        self.run(
            max_instructions=max_instructions,
            trace_sink=trace,
            options=options,
            **overrides,
        )
        return trace


_MODULES = {
    "256.bzip2": (bzip2, "block compression (RLE + MTF + entropy)"),
    "186.crafty": (crafty, "alpha-beta game-tree search"),
    "252.eon": (eon, "probabilistic ray tracer"),
    "254.gap": (gap, "permutation group arithmetic"),
    "176.gcc": (gcc, "expression-tree compiler passes"),
    "164.gzip": (gzip, "LZ77 compression with hash chains"),
    "181.mcf": (mcf, "min-cost network flow relaxation"),
    "197.parser": (parser, "recursive-descent link parser"),
    "300.twolf": (twolf, "simulated-annealing placement"),
    "255.vortex": (vortex, "object database transactions"),
    "253.perlbmk": (perlbmk, "bytecode-VM interpreter"),
    "175.vpr": (vpr, "grid routing wavefront expansion"),
    # Extension (not part of the paper's Table 1): the future-work
    # partial-word reference mix of Section 7.
    "ext.x86mix": (x86mix, "x86-style partial-word record processing"),
}

#: Display order used by the paper's tables.
BENCHMARK_ORDER = [
    "256.bzip2",
    "186.crafty",
    "252.eon",
    "254.gap",
    "176.gcc",
    "164.gzip",
    "181.mcf",
    "197.parser",
    "300.twolf",
    "255.vortex",
    "253.perlbmk",
    "175.vpr",
]

#: Every registry entry, extensions included — the 13 programs the
#: stack-discipline linter (``repro lint --all``) must keep clean.
ALL_BENCHMARKS = BENCHMARK_ORDER + ["ext.x86mix"]

#: Table 1 of the paper: benchmark -> input description.
TABLE1_INPUTS = {
    "256.bzip2": "ref: graphic & program",
    "186.crafty": "ref: crafty.in",
    "252.eon": "cook & kajiya algorithms",
    "254.gap": "ref.in",
    "176.gcc": "train: cp-decl.i & ref: integrate.in",
    "164.gzip": "ref: graphic & program & log",
    "181.mcf": "ref: inp.in",
    "197.parser": "ref.in",
    "300.twolf": "ref",
    "255.vortex": "ref",
    "253.perlbmk": "train: scrabbl.in",
    "175.vpr": "ref",
}


def benchmark_names() -> List[str]:
    """All benchmark names in display order."""
    return list(BENCHMARK_ORDER)


def input_names(benchmark: str) -> List[str]:
    """The input sets defined for one benchmark."""
    module, _ = _resolve(benchmark)
    return list(module.INPUTS)


def workload(benchmark: str, input_name: Optional[str] = None) -> Workload:
    """Look up one workload; default to its first input set."""
    module, description = _resolve(benchmark)
    if input_name is None:
        input_name = next(iter(module.INPUTS))
    if input_name not in module.INPUTS:
        raise KeyError(
            f"unknown input {input_name!r} for {benchmark!r} "
            f"(have {sorted(module.INPUTS)})"
        )
    full = benchmark if "." in benchmark else _expand(benchmark)
    return Workload(
        name=full,
        input_name=input_name,
        description=description,
        make_source=module.make_source,
        params=dict(module.INPUTS[input_name]),
    )


def all_workloads() -> List[Workload]:
    """One workload per benchmark (first input set)."""
    return [workload(name) for name in BENCHMARK_ORDER]


def all_inputs() -> List[Workload]:
    """Every (benchmark, input) pair — the rows of the paper's Table 3."""
    out = []
    for name in BENCHMARK_ORDER:
        for input_name in input_names(name):
            out.append(workload(name, input_name))
    return out


def canonical_benchmark(name: str) -> str:
    """Resolve ``"gzip"``/``"164.gzip"`` to the registry key, or KeyError."""
    if name in _MODULES:
        return name
    return _expand(name)


def validate_benchmarks(names: Sequence[str]) -> List[str]:
    """Canonicalize a benchmark subset, failing fast on unknown names.

    Returns the resolved full names in request order (duplicates
    dropped).  Every unknown name is collected before raising, so one
    :class:`UsageError` lists them all — the sweep never starts with a
    subset that would explode mid-run.
    """
    resolved: List[str] = []
    unknown: List[str] = []
    for name in names:
        try:
            full = canonical_benchmark(name)
        except KeyError:
            unknown.append(name)
            continue
        if full not in resolved:
            resolved.append(full)
    if unknown:
        shorts = ", ".join(n.split(".", 1)[1] for n in _MODULES)
        noun = "benchmark" if len(unknown) == 1 else "benchmarks"
        raise UsageError(
            f"unknown {noun}: {', '.join(unknown)} (choose from {shorts})"
        )
    return resolved


def _expand(short: str) -> str:
    for name in _MODULES:
        if name.split(".", 1)[1] == short:
            return name
    raise KeyError(f"unknown benchmark {short!r}")


def _resolve(benchmark: str) -> Tuple[object, str]:
    name = benchmark if "." in benchmark else _expand(benchmark)
    if name not in _MODULES:
        raise KeyError(f"unknown benchmark {benchmark!r}")
    return _MODULES[name]


# ---------------------------------------------------------------------------
# Trace cache: experiments re-simulate the same workloads under many
# machine configurations; the functional trace only needs producing once.
# An optional second, on-disk level (installed by the parallel engine's
# TraceCache via set_disk_trace_cache) shares traces across worker
# processes and across invocations.
# ---------------------------------------------------------------------------

TraceKey = Tuple[str, str, int, Optional[int]]

_TRACE_CACHE: Dict[TraceKey, list] = {}

#: Optional on-disk cache: any object with load(key) -> Optional[list]
#: and store(key, trace).  None disables the disk level.
_DISK_CACHE = None

#: Optional shared-memory cache (installed by the parallel engine's
#: ShmTraceCache in worker processes): load(key) returns a zero-copy
#: SharedColumnarTrace view, publish(key, trace) exports a computed or
#: disk-loaded trace for the other workers.  None disables the level.
_SHM_CACHE = None


def set_disk_trace_cache(cache) -> None:
    """Install (or with ``None`` remove) the shared on-disk trace cache."""
    global _DISK_CACHE
    _DISK_CACHE = cache


def get_disk_trace_cache():
    """The currently installed on-disk trace cache, if any."""
    return _DISK_CACHE


def set_shm_trace_cache(cache) -> None:
    """Install (or with ``None`` remove) the shared-memory trace cache."""
    global _SHM_CACHE
    _SHM_CACHE = cache


def get_shm_trace_cache():
    """The currently installed shared-memory trace cache, if any."""
    return _SHM_CACHE


def cached_trace(
    work: Workload,
    max_instructions: Optional[int],
    options: Optional[CodegenOptions] = None,
) -> list:
    """Trace for a workload, cached per process (and on disk when enabled).

    The key is (benchmark, input, opt level, window) — everything that
    determines the record stream.
    """
    opt_level = options.opt_level if options is not None else 0
    key: TraceKey = (work.name, work.input_name, opt_level, max_instructions)
    trace = _TRACE_CACHE.get(key)
    if trace is not None:
        return trace
    if _SHM_CACHE is not None:
        # Attaching to a segment another worker already published is a
        # zero-copy O(1) map, so it beats both re-emulation and the
        # disk read + column materialization below.
        trace = _SHM_CACHE.load(key)
    if trace is None and _DISK_CACHE is not None:
        trace = _DISK_CACHE.load(key)
        if trace is not None and _SHM_CACHE is not None:
            _SHM_CACHE.publish(key, trace)
    if trace is None:
        trace = work.trace(max_instructions=max_instructions, options=options)
        if _DISK_CACHE is not None:
            _DISK_CACHE.store(key, trace)
        if _SHM_CACHE is not None:
            _SHM_CACHE.publish(key, trace)
    _TRACE_CACHE[key] = trace
    return trace


def clear_trace_cache() -> None:
    """Drop all in-memory cached traces (used by tests)."""
    _TRACE_CACHE.clear()
