"""Measure the columnar hot loops against the pre-columnar baseline.

Regenerates ``benchmarks/results/core_speedup.txt``::

    PYTHONPATH=src python benchmarks/measure_core.py \
        [--window 40000] [--repeats 3]

For each reference workload the script times the cold single-workload
end-to-end core path — compile, emulate (trace), two timing
simulations (16-wide baseline and 16-wide + 2-port SVF) — under the
phase profiler, takes the best of ``--repeats`` runs, and compares
each phase against the **pre-PR baseline** measured on the same host
before the columnar trace IR landed (object-per-record traces,
commit 04f50a5, one CPU core, CPython 3.11).  The acceptance bar for
the columnar PR is a >= 2x end-to-end speedup; the artifact records
the actual ratio.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from bench_json import write_bench_json
from repro.profiling import PhaseProfiler, profiled
from repro.uarch.config import table2_config
from repro.uarch.pipeline import simulate
from repro.workloads import clear_trace_cache, workload

RESULTS = Path(__file__).parent / "results" / "core_speedup.txt"

#: Pre-columnar phase wall times (seconds), measured at commit 04f50a5
#: (object-per-record traces) on the reference host: 1 CPU core,
#: CPython 3.11, 40k-instruction window, same phase boundaries.
BASELINES = {
    "gzip": {"compile": 0.021, "emulate": 0.286, "timing": 0.600,
             "total": 0.907},
    "crafty": {"compile": 0.015, "emulate": 0.273, "timing": 0.910,
               "total": 1.198},
}


def measure_once(name: str, window: int) -> PhaseProfiler:
    """One cold end-to-end run; returns the phase breakdown."""
    clear_trace_cache()
    with profiled() as profiler:
        trace = workload(name).trace(max_instructions=window)
        base = table2_config(16)
        simulate(trace, base)
        simulate(trace, base.with_svf(mode="svf", ports=2))
    return profiler


def best_of(name: str, window: int, repeats: int) -> PhaseProfiler:
    runs = [measure_once(name, window) for _ in range(repeats)]
    return min(runs, key=lambda p: p.total_seconds)


def main() -> int:
    cli = argparse.ArgumentParser(description=__doc__)
    cli.add_argument("--window", type=int, default=40_000)
    cli.add_argument("--repeats", type=int, default=3)
    args = cli.parse_args()

    lines = [
        "Columnar hot-loop speedup: cold single-workload end-to-end",
        "=" * 58,
        "",
        f"Core path per workload: compile + emulate ({args.window:,}-"
        "instruction trace)",
        "+ 2 timing simulations (16-wide baseline, 16-wide + 2-port SVF).",
        "Best of %d runs. Baseline = pre-columnar object-per-record"
        % args.repeats,
        "traces at commit 04f50a5, same host (1 CPU core, CPython 3.11).",
        "",
    ]
    worst_ratio = None
    results = {
        "window": args.window,
        "repeats": args.repeats,
        "baseline_commit": "04f50a5",
        "workloads": {},
    }
    for name, baseline in BASELINES.items():
        profiler = best_of(name, args.window, args.repeats)
        lines.append(f"{name} ({args.window:,} instructions)")
        lines.append(
            f"  {'phase':10s} {'before':>9s} {'after':>9s} {'speedup':>9s}"
        )
        total_after = 0.0
        phase_rows = {}
        for phase in ("compile", "emulate", "timing"):
            after = profiler.phases[phase].seconds
            total_after += after
            before = baseline[phase]
            phase_rows[phase] = {
                "before_s": before,
                "after_s": round(after, 6),
                "speedup": round(before / after, 2),
            }
            lines.append(
                f"  {phase:10s} {before:8.3f}s {after:8.3f}s "
                f"{before / after:8.2f}x"
            )
        ratio = baseline["total"] / total_after
        worst_ratio = ratio if worst_ratio is None else min(worst_ratio, ratio)
        phase_rows["total"] = {
            "before_s": baseline["total"],
            "after_s": round(total_after, 6),
            "speedup": round(ratio, 2),
        }
        results["workloads"][name] = phase_rows
        lines.append(
            f"  {'total':10s} {baseline['total']:8.3f}s {total_after:8.3f}s "
            f"{ratio:8.2f}x"
        )
        lines.append("")
    lines.append(
        f"Worst-case end-to-end speedup: {worst_ratio:.2f}x "
        f"(acceptance bar: >= 2x)"
    )
    lines.append("")
    lines.append(
        "Regenerate: PYTHONPATH=src python benchmarks/measure_core.py"
    )
    lines.append(
        "Measured %s."
        % time.strftime("%Y-%m-%d %H:%M:%S %Z", time.localtime())
    )
    text = "\n".join(lines) + "\n"
    RESULTS.write_text(text)
    results["worst_case_speedup"] = round(worst_ratio, 2)
    results["acceptance_bar"] = 2.0
    json_path = write_bench_json("core", results)
    print(text)
    print(f"wrote {RESULTS}")
    print(f"wrote {json_path}")
    return 0 if worst_ratio >= 2.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
