"""Ablation — SVF capacity sensitivity (2/4/8 KB performance).

Table 3 sweeps capacity for *traffic*; this ablation sweeps it for
*performance*: an adequately sized SVF (Section 2's conclusion: 8 KB
or less captures almost all stack references) leaves little on the
table, while an undersized one forfeits morphing coverage.
"""

from repro.harness import percent, render_table
from repro.uarch.config import table2_config
from repro.uarch.pipeline import simulate
from repro.workloads import cached_trace, workload

BENCHMARKS = ["186.crafty", "176.gcc", "252.eon", "253.perlbmk"]
SIZES = (1024, 2048, 4096, 8192)


def run_ablation(window):
    rows = []
    base = table2_config(16)
    for name in BENCHMARKS:
        trace = cached_trace(workload(name), window)
        baseline = simulate(trace, base)
        speedups = []
        for size in SIZES:
            # no_squash isolates the capacity effect: otherwise a
            # larger SVF covers more references and eon's squash count
            # grows with it, confounding the sweep.
            # Ample ports isolate capacity from port saturation
            # (stack-dense workloads would otherwise prefer a smaller
            # SVF just to spread references over the DL1 ports too).
            run = simulate(
                trace,
                base.with_svf(
                    mode="svf", ports=16, capacity_bytes=size,
                    no_squash=True,
                ),
            )
            speedups.append(run.speedup_over(baseline))
        rows.append((name, speedups))
    return rows


def test_svf_size_ablation(benchmark, emit, timing_window):
    rows = benchmark.pedantic(
        lambda: run_ablation(timing_window), rounds=1, iterations=1
    )
    emit(
        "ablation_svf_size",
        render_table(
            ["Benchmark"] + [f"{s // 1024}KB" for s in SIZES],
            [(n, *[percent(v) for v in s]) for n, s in rows],
            title="Ablation: SVF capacity vs speedup (16-wide, 16 ports)",
        ),
    )
    by_name = {name: speedups for name, speedups in rows}
    # crafty/gcc have multi-KB active stack regions (Figure 2):
    # capacity must help monotonically until the region fits.
    for name in ("186.crafty", "176.gcc"):
        speedups = by_name[name]
        assert all(
            b >= a - 1e-9 for a, b in zip(speedups, speedups[1:])
        ), name
        assert speedups[-1] > 1.0, name
    # perlbmk's hot band hugs the TOS: capacity-insensitive.
    perl = by_name["253.perlbmk"]
    assert max(perl) - min(perl) < 0.02
    # No benchmark collapses across the sweep (eon shifts a few points
    # as evictions reshuffle its dependence chains; that is noise, not
    # a cliff).
    for name, speedups in rows:
        assert max(speedups) - min(speedups) < 0.10, name
