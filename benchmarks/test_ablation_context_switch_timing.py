"""Extension — context switches in the timing domain.

Table 4 measures the *traffic* cost of context switches; this
extension measures the *performance* cost: how many cycles each stack
scheme loses when its state is flushed every N instructions.  The SVF
re-warms by writing (no fills on first-store), while the stack cache
pays line fills on every first write after the flush — so the SVF
should retain more of its speedup under frequent switching.
"""

from repro.harness import percent, render_table
from repro.uarch.config import table2_config
from repro.uarch.pipeline import simulate
from repro.workloads import cached_trace, workload

BENCHMARKS = ["186.crafty", "176.gcc", "300.twolf"]


def run_ablation(window):
    period = max(window // 8, 1_000)
    rows = []
    for name in BENCHMARKS:
        trace = cached_trace(workload(name), window)
        results = {}
        for label, period_value in (("no switches", 0),
                                    ("switching", period)):
            base = table2_config(16, context_switch_period=period_value)
            baseline = simulate(trace, base)
            svf = simulate(trace, base.with_svf(mode="svf", ports=2))
            cache = simulate(
                trace, base.with_svf(mode="stack_cache", ports=2)
            )
            results[label] = (
                svf.speedup_over(baseline),
                cache.speedup_over(baseline),
            )
        rows.append((name, results))
    return rows


def test_context_switch_timing(benchmark, emit, timing_window):
    rows = benchmark.pedantic(
        lambda: run_ablation(timing_window), rounds=1, iterations=1
    )
    emit(
        "ablation_context_switch_timing",
        render_table(
            ["Benchmark", "SVF (quiet)", "SVF (switching)",
             "$ (quiet)", "$ (switching)"],
            [
                (
                    name,
                    percent(results["no switches"][0]),
                    percent(results["switching"][0]),
                    percent(results["no switches"][1]),
                    percent(results["switching"][1]),
                )
                for name, results in rows
            ],
            title="Extension: speedup retention under context switches",
        ),
    )
    for name, results in rows:
        svf_quiet, cache_quiet = results["no switches"]
        svf_switching, cache_switching = results["switching"]
        # Both schemes survive switching with most of their gain.
        assert svf_switching > svf_quiet - 0.10, name
        # The SVF loses no more than the stack cache does (its
        # first-store-no-fill semantics re-warm for free).
        svf_loss = svf_quiet - svf_switching
        cache_loss = cache_quiet - cache_switching
        assert svf_loss <= cache_loss + 0.05, name
