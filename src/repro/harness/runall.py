"""Run the full experiment battery and render one report.

``generate_report`` regenerates every table and figure of the paper
(plus the characterization extensions) at the requested windows and
returns a single markdown document — the programmatic equivalent of
``pytest benchmarks/ --benchmark-only``, usable from the CLI
(``python -m repro report``) or a notebook.
"""

from __future__ import annotations

import io
import time
from typing import Optional, Sequence

from repro.harness.experiments import (
    characterize,
    fig5_ideal_morphing,
    fig6_progressive,
    fig7_svf_vs_stack_cache,
    fig9_svf_speedup,
    table1_workloads,
    table2_models,
    table3_memory_traffic,
    table4_context_switch,
)


def generate_report(
    timing_window: int = 40_000,
    functional_window: int = 80_000,
    benchmarks: Optional[Sequence[str]] = None,
    progress=None,
) -> str:
    """Run everything; returns the report as markdown text.

    ``progress``, if given, is called with a status string before each
    stage (e.g. ``print``).
    """

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    out = io.StringIO()
    started = time.time()
    out.write("# SVF reproduction — full experiment report\n\n")
    out.write(
        f"Windows: {timing_window:,} instructions (timing), "
        f"{functional_window:,} (functional).\n\n"
    )

    def section(title: str, body: str) -> None:
        out.write(f"## {title}\n\n```\n{body}\n```\n\n")

    note("Tables 1-2 (inventories)")
    section("Table 1 — benchmarks", table1_workloads())
    section("Table 2 — machine models", table2_models())

    note("Figures 1-3 + first-touch (characterization)")
    characterization = characterize(
        benchmarks=benchmarks, max_instructions=functional_window
    )
    section("Figure 1 — access distribution", characterization.render_fig1())
    section("Figure 2 — stack depth", characterization.render_fig2())
    section("Figure 3 — offset locality", characterization.render_fig3())
    section(
        "First-touch analysis (valid-bit rationale)",
        characterization.render_first_touch(),
    )

    note("Figure 5 (ideal morphing)")
    section(
        "Figure 5 — ideal morphing",
        fig5_ideal_morphing(
            benchmarks=benchmarks, max_instructions=timing_window
        ).render(),
    )

    note("Figure 6 (progressive analysis)")
    section(
        "Figure 6 — progressive analysis",
        fig6_progressive(
            benchmarks=benchmarks, max_instructions=timing_window
        ).render(),
    )

    note("Figures 7-8 (SVF vs stack cache)")
    fig7 = fig7_svf_vs_stack_cache(
        benchmarks=benchmarks, max_instructions=timing_window
    )
    section("Figure 7 — SVF vs stack cache", fig7.render())
    section("Figure 8 — reference breakdown", fig7.render_fig8())

    note("Table 3 (memory traffic)")
    inputs = None
    if benchmarks is not None:
        from repro.workloads import all_inputs

        wanted = set(benchmarks)
        inputs = [w for w in all_inputs() if w.name in wanted]
    section(
        "Table 3 — memory traffic",
        table3_memory_traffic(
            max_instructions=functional_window, inputs=inputs
        ).render(),
    )

    note("Table 4 (context switches)")
    section(
        "Table 4 — context-switch writeback",
        table4_context_switch(
            benchmarks=benchmarks,
            max_instructions=functional_window,
            period=max(functional_window // 25, 1_000),
        ).render(),
    )

    note("Figure 9 (port configurations)")
    section(
        "Figure 9 — SVF speedups by ports",
        fig9_svf_speedup(
            benchmarks=benchmarks, max_instructions=timing_window
        ).render(),
    )

    out.write(
        f"_Generated in {time.time() - started:.0f}s by repro.harness."
        "runall._\n"
    )
    return out.getvalue()
