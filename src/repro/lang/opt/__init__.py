"""Optimizer pipeline over assembled programs (``-O1``).

:func:`optimize_program` drives the four dataflow passes of
:mod:`repro.lang.opt.passes` to a fixpoint:

1. repeat { redundant-load forwarding; dead-store elimination;
   register dead-code elimination; rebuild } until a round makes no
   edits — each rebuild invalidates the analyses, so the loop re-solves
   from scratch per round;
2. run frame-slot coalescing once at the fixpoint (it creates new
   store-overwrite patterns), then return to step 1 to clean up.

The whole pipeline refuses to touch a program it cannot prove
analyzable: any CFG anomaly that breaks edge reconstruction, any
``sp-balance``/``frame-bounds`` error, or an untracked ``$sp`` in any
function disables optimization entirely (an unbalanced callee corrupts
every caller's frame facts).  First-read warnings anywhere additionally
disable the two memory-image-changing passes (dead stores, coalescing)
while keeping the register-only ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.cfg import build_cfg
from repro.analysis.report import Severity
from repro.analysis.stackcheck import (
    FrameContext,
    analyze_frames,
    first_read_pass,
)
from repro.isa.instructions import Program
from repro.lang.opt.ir import EditSet, rebuild_program
from repro.lang.opt.passes import (
    coalesce_slots_pass,
    dead_code_pass,
    dead_store_elimination,
    forward_loads_pass,
)

__all__ = ["OptStats", "optimize_program"]

#: CFG anomalies that leave edges unreconstructed; a function carrying
#: one cannot be analyzed, so the program is left unoptimized.
_FATAL_ANOMALIES = frozenset({
    "escaping-branch", "indirect-jump", "fallthrough-exit",
})


@dataclass
class OptStats:
    """What the pipeline did, for reporting and tests."""

    rounds: int = 0
    loads_forwarded: int = 0
    loads_deleted: int = 0
    dead_stores_deleted: int = 0
    dead_code_deleted: int = 0
    slots_coalesced: int = 0
    #: True when the program was left untouched as unanalyzable.
    skipped: bool = False
    #: True when first-read warnings disabled the memory-image passes.
    memory_passes_disabled: bool = False

    @property
    def instructions_removed(self) -> int:
        return (
            self.loads_deleted
            + self.dead_stores_deleted
            + self.dead_code_deleted
        )


def _analyze(program: Program) -> Optional[Tuple[List[FrameContext], bool]]:
    """Frame contexts for every function, or None if unanalyzable."""
    pcfg = build_cfg(program)
    if any(a.kind in _FATAL_ANOMALIES for a in pcfg.anomalies):
        return None
    contexts: List[FrameContext] = []
    memory_safe = True
    for function in pcfg.functions.values():
        context, diagnostics = analyze_frames(function)
        if not context.sp_tracked or any(
            d.severity is Severity.ERROR for d in diagnostics
        ):
            return None
        if first_read_pass(context):
            memory_safe = False
        contexts.append(context)
    return contexts, memory_safe


def optimize_program(
    program: Program, max_rounds: int = 10
) -> Tuple[Program, OptStats]:
    """Run the ``-O1`` pipeline; returns the new program and stats.

    The input program is never mutated; when no optimization applies it
    is returned as-is.
    """
    stats = OptStats()
    coalesced = False
    while stats.rounds < max_rounds:
        analysis = _analyze(program)
        if analysis is None:
            stats.skipped = stats.rounds == 0
            break
        contexts, memory_safe = analysis
        if not memory_safe:
            stats.memory_passes_disabled = True
        edits = EditSet()
        for context in contexts:
            counts = forward_loads_pass(context, edits)
            stats.loads_forwarded += counts["forwarded"]
            stats.loads_deleted += counts["deleted"]
            if memory_safe:
                stats.dead_stores_deleted += dead_store_elimination(
                    context, edits
                )
            stats.dead_code_deleted += dead_code_pass(context, edits)
        if not edits and memory_safe and not coalesced:
            coalesced = True
            for context in contexts:
                stats.slots_coalesced += coalesce_slots_pass(context, edits)
        if not edits:
            break
        program = rebuild_program(program, edits)
        stats.rounds += 1
    return program, stats
