"""End-to-end tests for the MiniC code generator.

Each test compiles a program, runs it on the emulator, and checks the
printed output — the strongest statement that the whole compile chain
(layout, temps, spilling, calling convention) is correct.
"""

import pytest

from repro.emulator import run_program
from repro.isa.registers import FP, SP
from repro.lang import CodegenOptions, compile_program, compile_to_assembly


def outputs(source, options=None, max_instructions=2_000_000):
    machine, _ = run_program(
        compile_program(source, options), max_instructions=max_instructions
    )
    assert machine.halted, "program did not halt"
    return machine.output


class TestExpressions:
    def test_arithmetic(self):
        assert outputs("int main() { print(2 + 3 * 4 - 6 / 2); return 0; }") \
            == [11]

    def test_division_truncates_toward_zero(self):
        assert outputs(
            "int main() { print(-7 / 2); print(-7 % 2); return 0; }"
        ) == [-3, -1]

    def test_comparisons(self):
        assert outputs(
            """
            int main() {
                print(3 < 4); print(4 <= 4); print(5 > 6);
                print(5 >= 6); print(7 == 7); print(7 != 7);
                return 0;
            }
            """
        ) == [1, 1, 0, 0, 1, 0]

    def test_bitwise_and_shifts(self):
        assert outputs(
            """
            int main() {
                print(12 & 10); print(12 | 10); print(12 ^ 10);
                print(3 << 4); print(-16 >> 2); print(~0);
                return 0;
            }
            """
        ) == [8, 14, 6, 48, -4, -1]

    def test_unary_minus_and_not(self):
        assert outputs(
            "int main() { print(-(3 + 4)); print(!0); print(!9); return 0; }"
        ) == [-7, 1, 0]

    def test_logical_short_circuit(self):
        # The right side divides by zero; short-circuit must skip it.
        assert outputs(
            """
            int main() {
                int zero_val = 0;
                print(0 && (1 / zero_val));
                print(1 || (1 / zero_val));
                print(2 && 3);
                print(0 || 0);
                return 0;
            }
            """
        ) == [0, 1, 1, 0]

    def test_deeply_nested_expression_spills(self):
        # Deep enough to exhaust the 14 temp registers.
        expression = "1" + " + (2 * (3 - (4 + (5 * (6 - (7 + (8 * (9 - (1 + " \
            "(2 * (3 - (4 + (5 * (6 - 7))))))))))))))"
        assert outputs(f"int main() {{ print({expression}); return 0; }}") \
            == [eval(expression.replace("/", "//"))]


class TestVariablesAndControl:
    def test_locals_and_reassignment(self):
        assert outputs(
            """
            int main() {
                int a = 5;
                int b = a * 2;
                a = b - 3;
                print(a + b);
                return 0;
            }
            """
        ) == [17]

    def test_globals_and_initializers(self):
        assert outputs(
            """
            int counter = 10;
            int table[4] = {2, 4, 6};
            int main() {
                counter += table[1];
                print(counter);
                print(table[3]);  // zero padded
                return 0;
            }
            """
        ) == [14, 0]

    def test_if_else_branches(self):
        assert outputs(
            """
            int classify(int n) {
                if (n < 0) { return -1; }
                else if (n == 0) { return 0; }
                return 1;
            }
            int main() {
                print(classify(-5)); print(classify(0)); print(classify(9));
                return 0;
            }
            """
        ) == [-1, 0, 1]

    def test_while_with_break_continue(self):
        assert outputs(
            """
            int main() {
                int total = 0;
                int i = 0;
                while (1) {
                    i += 1;
                    if (i > 10) { break; }
                    if (i % 2 == 0) { continue; }
                    total += i;
                }
                print(total);  // 1+3+5+7+9
                return 0;
            }
            """
        ) == [25]

    def test_for_loop_sum(self):
        assert outputs(
            """
            int main() {
                int total = 0;
                for (int i = 1; i <= 100; i += 1) { total += i; }
                print(total);
                return 0;
            }
            """
        ) == [5050]

    def test_nested_loops(self):
        assert outputs(
            """
            int main() {
                int cells = 0;
                for (int y = 0; y < 7; y += 1)
                    for (int x = 0; x < 5; x += 1)
                        cells += 1;
                print(cells);
                return 0;
            }
            """
        ) == [35]


class TestFunctions:
    def test_recursion_factorial(self):
        assert outputs(
            """
            int fact(int n) {
                if (n <= 1) { return 1; }
                return n * fact(n - 1);
            }
            int main() { print(fact(10)); return 0; }
            """
        ) == [3628800]

    def test_mutual_recursion(self):
        assert outputs(
            """
            int is_odd(int n) {
                if (n == 0) { return 0; }
                return is_even(n - 1);
            }
            int is_even(int n) {
                if (n == 0) { return 1; }
                return is_odd(n - 1);
            }
            int main() { print(is_even(10)); print(is_odd(7)); return 0; }
            """
        ) == [1, 1]

    def test_six_arguments(self):
        assert outputs(
            """
            int weigh(int a, int b, int c, int d, int e, int f) {
                return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6;
            }
            int main() { print(weigh(1, 2, 3, 4, 5, 6)); return 0; }
            """
        ) == [1 + 4 + 9 + 16 + 25 + 36]

    def test_call_in_expression_preserves_temps(self):
        assert outputs(
            """
            int g(int x) { return x * 10; }
            int main() {
                int r = g(1) + g(2) + g(3) * g(4);
                print(r);
                return 0;
            }
            """
        ) == [10 + 20 + 30 * 40]

    def test_missing_return_defaults(self):
        assert outputs(
            "int f() { } int main() { f(); print(7); return 0; }"
        ) == [7]


class TestArraysAndPointers:
    def test_local_array_read_write(self):
        assert outputs(
            """
            int main() {
                int a[5];
                for (int i = 0; i < 5; i += 1) { a[i] = i * i; }
                print(a[0] + a[1] + a[2] + a[3] + a[4]);
                return 0;
            }
            """
        ) == [30]

    def test_array_decay_to_pointer_argument(self):
        assert outputs(
            """
            int total(int *p, int n) {
                int acc = 0;
                for (int i = 0; i < n; i += 1) { acc += p[i]; }
                return acc;
            }
            int main() {
                int a[4];
                a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
                print(total(a, 4));
                print(total(&a[1], 2));
                return 0;
            }
            """
        ) == [10, 5]

    def test_out_parameter_through_pointer(self):
        assert outputs(
            """
            int fetch(int *out) { out[0] = 99; return 0; }
            int main() {
                int x = 0;
                fetch(&x);
                print(x);
                return 0;
            }
            """
        ) == [99]

    def test_pointer_deref_assignment(self):
        assert outputs(
            """
            int main() {
                int x = 1;
                int *p = &x;
                *p = 55;
                print(x);
                print(*p);
                return 0;
            }
            """
        ) == [55, 55]

    def test_alloc_returns_distinct_blocks(self):
        assert outputs(
            """
            int main() {
                int *a = alloc(3);
                int *b = alloc(2);
                a[0] = 1; a[2] = 3; b[0] = 10; b[1] = 20;
                print(a[0] + a[2] + b[0] + b[1]);
                print(b - a);  // byte distance: 3 quadwords
                return 0;
            }
            """
        ) == [34, 24]

    def test_global_array_via_helper(self):
        assert outputs(
            """
            int grid[9];
            int set_cell(int i, int v) { grid[i] = v; return v; }
            int main() {
                for (int i = 0; i < 9; i += 1) { set_cell(i, i * 2); }
                print(grid[8]);
                return 0;
            }
            """
        ) == [16]


class TestCodegenOptions:
    SOURCE = """
    int process(int *data, int n) {
        int local_buf[8];
        for (int i = 0; i < 8; i += 1) { local_buf[i] = data[i % n] + i; }
        int acc = 0;
        for (int i = 0; i < 8; i += 1) { acc += local_buf[i]; }
        return acc;
    }
    int main() {
        int seed[4];
        seed[0] = 3; seed[1] = 1; seed[2] = 4; seed[3] = 1;
        print(process(&seed[0], 4));
        return 0;
    }
    """

    def test_options_do_not_change_semantics(self):
        expected = outputs(self.SOURCE)
        for options in (
            CodegenOptions(fp_frames=False),
            CodegenOptions(promoted_locals=0),
            CodegenOptions(promoted_locals=6),
            CodegenOptions(fp_frames=False, promoted_locals=0),
        ):
            assert outputs(self.SOURCE, options) == expected

    def test_fp_frames_emit_fp_references(self):
        asm_with = compile_to_assembly(self.SOURCE, CodegenOptions())
        asm_without = compile_to_assembly(
            self.SOURCE, CodegenOptions(fp_frames=False)
        )
        assert "(fp)" in asm_with
        assert "(fp)" not in asm_without

    def test_promotion_reduces_stack_references(self):
        from repro.trace.analysis import AccessDistribution

        counts = {}
        for promoted in (0, 4):
            dist = AccessDistribution()
            program = compile_program(
                self.SOURCE, CodegenOptions(promoted_locals=promoted)
            )
            from repro.emulator import Machine

            machine = Machine(program)
            machine.run(trace_sink=dist)
            counts[promoted] = dist.counts
        from repro.trace.regions import AccessMethod

        assert (
            counts[4][AccessMethod.STACK_SP]
            < counts[0][AccessMethod.STACK_SP]
        )

    def test_constant_index_folds_to_sp_relative(self):
        source = """
        int main() {
            int a[4];
            a[0] = 1; a[1] = 2;
            print(a[0] + a[1]);
            return 0;
        }
        """
        asm = compile_to_assembly(source)
        # Constant indices become direct frame stores, no address math.
        assert asm.count("sll") == 0
        assert outputs(source) == [3]
