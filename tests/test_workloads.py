"""Tests for the SPECint2000-inspired workload suite."""

import pytest

from repro.workloads import (
    BENCHMARK_ORDER,
    TABLE1_INPUTS,
    all_inputs,
    all_workloads,
    benchmark_names,
    cached_trace,
    clear_trace_cache,
    input_names,
    workload,
)


class TestRegistry:
    def test_twelve_benchmarks(self):
        assert len(BENCHMARK_ORDER) == 12
        assert len(all_workloads()) == 12

    def test_table1_covers_all(self):
        assert set(TABLE1_INPUTS) == set(BENCHMARK_ORDER)

    def test_short_names_resolve(self):
        assert workload("crafty").name == "186.crafty"
        assert workload("176.gcc").name == "176.gcc"

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            workload("nonexistent")
        with pytest.raises(KeyError):
            workload("crafty", "nonexistent-input")

    def test_paper_input_sets_exist(self):
        assert set(input_names("bzip2")) == {"graphic", "program"}
        assert set(input_names("eon")) == {"cook", "kajiya"}
        assert set(input_names("gcc")) == {"cp-decl", "integrate"}
        assert set(input_names("gzip")) == {"graphic", "log", "program"}

    def test_all_inputs_is_table3_rows(self):
        rows = [w.full_name for w in all_inputs()]
        assert "bzip2.graphic" in rows
        assert "eon.kajiya" in rows
        assert len(rows) == 17

    def test_full_name_format(self):
        assert workload("bzip2", "graphic").full_name == "bzip2.graphic"


class TestExecution:
    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_compiles_and_runs(self, name):
        trace = workload(name).trace(max_instructions=5_000)
        assert len(trace) == 5_000
        assert any(r.is_mem for r in trace)
        assert any(r.sp_update for r in trace)

    def test_deterministic_across_runs(self):
        work = workload("twolf")
        first = work.trace(max_instructions=3_000)
        second = work.trace(max_instructions=3_000)
        assert [r.pc for r in first] == [r.pc for r in second]

    def test_inputs_differ(self):
        graphic = workload("bzip2", "graphic").trace(max_instructions=5_000)
        program = workload("bzip2", "program").trace(max_instructions=5_000)
        assert [r.pc for r in graphic] != [r.pc for r in program]

    def test_parameter_overrides(self):
        machine = workload("crafty").run(positions=1, depth=3)
        assert machine.halted
        assert len(machine.output) == 2

    @pytest.mark.parametrize(
        "name,kwargs",
        [
            ("bzip2", dict(blocks=1, block=64)),
            ("crafty", dict(positions=1, depth=4)),
            ("eon", dict(width=3, height=3, spheres=2, bounces=1)),
            ("gap", dict(degree=12, rounds=2)),
            ("gcc", dict(units=1, depth=4)),
            ("gzip", dict(window=128, passes=1)),
            ("mcf", dict(nodes=16, arcs=48, sources=2)),
            ("parser", dict(sentences=3, depth=6)),
            ("twolf", dict(cells=8, nets=12, steps=4)),
            ("vortex", dict(transactions=40)),
            ("perlbmk", dict(scripts=2, loop_count=8, vm_stack=64)),
            ("vpr", dict(width=6, height=6, nets=3)),
        ],
    )
    def test_small_configurations_halt(self, name, kwargs):
        machine = workload(name).run(max_instructions=3_000_000, **kwargs)
        assert machine.halted, f"{name} did not halt"
        assert machine.output, f"{name} produced no output"


class TestTraceCache:
    def test_cache_returns_same_object(self):
        clear_trace_cache()
        work = workload("gzip")
        first = cached_trace(work, 2_000)
        second = cached_trace(work, 2_000)
        assert first is second
        clear_trace_cache()
        third = cached_trace(work, 2_000)
        assert third is not first

    def test_cache_keys_by_length(self):
        clear_trace_cache()
        work = workload("gzip")
        assert len(cached_trace(work, 1_000)) == 1_000
        assert len(cached_trace(work, 2_000)) == 2_000
        clear_trace_cache()
