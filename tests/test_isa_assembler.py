"""Unit tests for the two-pass assembler."""

import pytest

from repro.emulator.memory import DATA_BASE
from repro.isa.assembler import AssemblerError, assemble
from repro.isa.registers import RA, SP, ZERO


class TestBasics:
    def test_minimal_program(self):
        program = assemble("main: halt")
        assert len(program) == 1
        assert program.labels["main"] == 0

    def test_missing_entry_rejected(self):
        with pytest.raises(AssemblerError, match="entry"):
            assemble("other: halt")

    def test_comments_and_blank_lines(self):
        program = assemble(
            """
            # full-line comment
            main:           ; trailing style
                nop         # inline comment
                halt
            """
        )
        assert len(program) == 2

    def test_label_shares_line(self):
        program = assemble("main: nop\nloop: halt")
        assert program.labels == {"main": 0, "loop": 1}

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("main: nop\nmain: halt")

    def test_undefined_branch_target_rejected(self):
        with pytest.raises(AssemblerError, match="undefined label"):
            assemble("main: br nowhere")

    def test_dollar_labels_allowed(self):
        program = assemble("main: br main$x1\nmain$x1: halt")
        assert program.instructions[0].target_index == 1


class TestOperandForms:
    def test_memory_displacement(self):
        program = assemble("main: ldq r1, -8(sp)\n halt")
        instr = program.instructions[0]
        assert (instr.rd, instr.rb, instr.imm) == (1, SP, -8)

    def test_memory_hex_displacement(self):
        program = assemble("main: stq r2, 0x10(r4)\n halt")
        assert program.instructions[0].imm == 16

    def test_alu_register_and_immediate(self):
        program = assemble("main: addq r1, r2, r3\n addq r1, 7, r3\n halt")
        assert program.instructions[0].rb == 2
        assert program.instructions[1].imm == 7
        assert program.instructions[1].rb is None

    def test_negative_immediate(self):
        program = assemble("main: addq r1, -3, r2\n halt")
        assert program.instructions[0].imm == -3

    def test_lda_absolute_integer(self):
        program = assemble("main: lda r1, 4096\n halt")
        instr = program.instructions[0]
        assert (instr.rb, instr.imm) == (ZERO, 4096)

    def test_bsr_sets_ra(self):
        program = assemble("main: bsr f\nf: ret")
        assert program.instructions[0].rd == RA

    def test_ret_default_and_explicit(self):
        program = assemble("main: ret\n ret r4")
        assert program.instructions[0].rb == RA
        assert program.instructions[1].rb == 4

    def test_operand_count_errors(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble("main: addq r1, r2\n halt")
        with pytest.raises(AssemblerError, match="expects"):
            assemble("main: halt r1")

    def test_bad_register_reported_with_line(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("main: nop\n addq rx, r1, r2")

    def test_unknown_opcode(self):
        with pytest.raises(AssemblerError, match="unknown opcode"):
            assemble("main: fnord r1, r2, r3")


class TestDataSection:
    def test_quad_values(self):
        program = assemble(
            """
            .data
            values: .quad 1, 2, -1
            .text
            main: halt
            """
        )
        assert program.symbols["values"] == DATA_BASE
        assert len(program.data) == 24
        assert program.data[0] == 1
        assert program.data[16:24] == b"\xff" * 8

    def test_space_reserves_zeroed_bytes(self):
        program = assemble(
            ".data\nbuf: .space 32\n.text\nmain: halt"
        )
        assert program.data == bytearray(32)

    def test_symbol_used_as_lda_operand(self):
        program = assemble(
            """
            .data
            table: .quad 5
            .text
            main:
                lda r1, table
                halt
            """
        )
        assert program.instructions[0].imm == DATA_BASE

    def test_consecutive_symbols_have_offsets(self):
        program = assemble(
            ".data\na: .quad 1\nb: .quad 2\n.text\nmain: halt"
        )
        assert program.symbols["b"] == program.symbols["a"] + 8

    def test_duplicate_symbol_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate symbol"):
            assemble(".data\nx: .quad 1\nx: .quad 2\n.text\nmain: halt")

    def test_directive_outside_data_rejected(self):
        with pytest.raises(AssemblerError, match="outside .data"):
            assemble("main: halt\n.quad 5")

    def test_negative_space_rejected(self):
        with pytest.raises(AssemblerError, match="negative"):
            assemble(".data\nb: .space -8\n.text\nmain: halt")

    def test_instructions_outside_text_rejected(self):
        with pytest.raises(AssemblerError, match="outside .text"):
            assemble(".data\nnop\n.text\nmain: halt")

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError, match="unknown directive"):
            assemble(".bss\nmain: halt")


class TestRoundTrip:
    def test_render_reassembles_identically(self):
        source = """
        main:
            lda sp, -16(sp)
            stq ra, 0(sp)
            addq r1, 3, r2
            cmplt r2, r3, r4
            beq r4, out
            bsr helper
        out:
            ldq ra, 0(sp)
            lda sp, 16(sp)
            ret
        helper:
            ret
        """
        first = assemble(source)
        rendered_lines = []
        index_to_label = {v: k for k, v in first.labels.items()}
        for index, instr in enumerate(first.instructions):
            if index in index_to_label:
                rendered_lines.append(f"{index_to_label[index]}:")
            rendered_lines.append("    " + instr.render())
        second = assemble("\n".join(rendered_lines))
        assert [i.render() for i in first.instructions] == [
            i.render() for i in second.instructions
        ]
