"""Static analysis of assembled programs: CFGs, dataflow, stack lints.

The SVF (and every figure this repository reproduces) assumes compiled
code obeys Alpha stack discipline — ``$sp``-relative frame slots,
write-before-read on fresh frames, frame death at ``ret``.  This
package *verifies* those invariants statically:

* :mod:`repro.analysis.cfg` — per-function control-flow graphs and
  the direct call graph, reconstructed from a :class:`Program`;
* :mod:`repro.analysis.dataflow` — a small generic forward/backward
  worklist solver every pass is built on;
* :mod:`repro.analysis.stackcheck` — the five SVF-safety passes
  (sp-balance, frame-bounds, first-read, dead-store, escape);
* :mod:`repro.analysis.lint` / :mod:`repro.analysis.report` — the
  lint driver, diagnostics model, and text/JSON rendering behind the
  ``repro lint`` CLI subcommand.
"""

from repro.analysis.cfg import (
    BasicBlock,
    CFGAnomaly,
    FunctionCFG,
    ProgramCFG,
    build_cfg,
)
from repro.analysis.dataflow import (
    BACKWARD,
    FORWARD,
    DataflowProblem,
    DataflowResult,
    SetProblem,
    solve,
)
from repro.analysis.lint import (
    lint_all,
    lint_assembly,
    lint_program,
    lint_workload,
)
from repro.analysis.report import (
    Diagnostic,
    LintReport,
    Severity,
    render_reports,
    reports_to_json,
)
from repro.analysis.stackcheck import (
    ALL_PASSES,
    FrameContext,
    analyze_frames,
    check_function,
    check_program,
    dead_store_pass,
    escape_pass,
    first_read_pass,
    structure_pass,
)

__all__ = [
    "ALL_PASSES",
    "BACKWARD",
    "BasicBlock",
    "CFGAnomaly",
    "DataflowProblem",
    "DataflowResult",
    "Diagnostic",
    "FORWARD",
    "FrameContext",
    "FunctionCFG",
    "LintReport",
    "ProgramCFG",
    "SetProblem",
    "Severity",
    "analyze_frames",
    "build_cfg",
    "check_function",
    "check_program",
    "dead_store_pass",
    "escape_pass",
    "first_read_pass",
    "lint_all",
    "lint_assembly",
    "lint_program",
    "lint_workload",
    "render_reports",
    "reports_to_json",
    "solve",
    "structure_pass",
]
