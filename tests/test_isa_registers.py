"""Unit tests for register parsing and conventions."""

import pytest

from repro.isa.registers import (
    ARG_REGISTERS,
    FP,
    NUM_REGISTERS,
    RA,
    RegisterError,
    SAVED_REGISTERS,
    SP,
    TEMP_REGISTERS,
    ZERO,
    parse_register,
    register_name,
)


class TestConventions:
    def test_alpha_register_numbers(self):
        assert SP == 30
        assert FP == 15
        assert RA == 26
        assert ZERO == 31

    def test_register_classes_are_disjoint(self):
        special = {SP, FP, RA, ZERO, 29, 0}
        pools = set(ARG_REGISTERS) | set(TEMP_REGISTERS) | set(SAVED_REGISTERS)
        assert not (special & pools)
        assert len(ARG_REGISTERS) == 6
        assert len(SAVED_REGISTERS) == 6

    def test_temp_pool_has_no_duplicates(self):
        assert len(set(TEMP_REGISTERS)) == len(TEMP_REGISTERS)


class TestParseRegister:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("sp", SP),
            ("$sp", SP),
            ("SP", SP),
            ("fp", FP),
            ("ra", RA),
            ("zero", ZERO),
            ("r0", 0),
            ("r31", 31),
            ("$r15", 15),
            ("v0", 0),
            ("a0", 16),
            ("a5", 21),
            ("s0", 9),
            ("t0", TEMP_REGISTERS[0]),
        ],
    )
    def test_valid_names(self, text, expected):
        assert parse_register(text) == expected

    @pytest.mark.parametrize("text", ["r32", "r-1", "x3", "", "$", "r", "rq"])
    def test_invalid_names(self, text):
        with pytest.raises(RegisterError):
            parse_register(text)

    def test_whitespace_tolerated(self):
        assert parse_register("  sp ") == SP


class TestRegisterName:
    def test_canonical_names_round_trip(self):
        for number in range(NUM_REGISTERS):
            assert parse_register(register_name(number)) == number

    def test_special_names(self):
        assert register_name(SP) == "sp"
        assert register_name(ZERO) == "zero"

    def test_out_of_range(self):
        with pytest.raises(RegisterError):
            register_name(32)
        with pytest.raises(RegisterError):
            register_name(-1)
