"""Ablation — valid/dirty-bit granularity (paper Section 3.3).

The paper: "The granularity of these status bits is most naturally the
smallest data type that is frequently used.  For the Alpha
architecture, this is 64 bits.  If the granularity is larger than
this, there will be more memory traffic."  This ablation measures SVF
traffic with 8-, 16- and 32-byte granules.
"""

from repro.core.svf import StackValueFile
from repro.harness import render_table
from repro.trace.regions import is_stack_address
from repro.workloads import cached_trace, workload

BENCHMARKS = ["186.crafty", "176.gcc", "252.eon", "300.twolf"]


def traffic_at_granularity(trace, granularity):
    svf = StackValueFile(capacity_bytes=8192, granularity=granularity)
    sp_seen = False
    for record in trace:
        if not sp_seen:
            svf.update_sp(record.sp_value)
            sp_seen = True
        if record.is_mem and is_stack_address(record.addr):
            svf.access(record.addr, record.size, record.is_store)
        if record.sp_update:
            svf.update_sp(record.sp_value)
    return svf.qw_in + svf.qw_out


def run_ablation(window):
    rows = []
    for name in BENCHMARKS:
        trace = cached_trace(workload(name), window)
        rows.append(
            (name, *[
                traffic_at_granularity(trace, granularity)
                for granularity in (8, 16, 32)
            ])
        )
    return rows


def test_granularity_ablation(benchmark, emit, functional_window):
    rows = benchmark.pedantic(
        lambda: run_ablation(functional_window), rounds=1, iterations=1
    )
    emit(
        "ablation_granularity",
        render_table(
            ["Benchmark", "8B granule", "16B granule", "32B granule"],
            rows,
            title="Ablation: SVF traffic (quad-words) vs status-bit "
            "granularity",
        ),
    )
    total = [sum(row[i] for row in rows) for i in (1, 2, 3)]
    assert total[0] <= total[1] <= total[2], (
        "coarser granularity must not reduce traffic"
    )
    assert total[2] > total[0], (
        "32-byte granules should cost measurably more traffic"
    )
