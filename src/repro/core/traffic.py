"""Functional memory-traffic simulation (paper Tables 3 and 4).

Drives the SVF and the decoupled stack cache over the same dynamic
instruction stream, without timing, and reports the quad-word traffic
each scheme generates.  This is exactly the paper's Table 3 experiment:
the stack cache moves whole lines on compulsory/capacity/conflict
misses and dirty evictions, while the SVF only moves words that are
demand-read or live-and-dirty.

With ``context_switch_period`` set, both structures are additionally
flushed every N instructions and the average writeback per switch is
recorded (paper Table 4; the paper uses N = 400 000).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.stack_cache import StackCache
from repro.core.svf import StackValueFile
from repro.trace.regions import is_stack_address


@dataclass
class TrafficResult:
    """Quad-word traffic of both schemes over one trace."""

    capacity_bytes: int
    instructions: int = 0
    stack_references: int = 0
    svf_qw_in: int = 0
    svf_qw_out: int = 0
    stack_cache_qw_in: int = 0
    stack_cache_qw_out: int = 0
    # Context-switch accounting (Table 4).
    context_switches: int = 0
    svf_switch_bytes: int = 0
    stack_cache_switch_bytes: int = 0
    # Valid/dirty-bit wins (checked against repro.analysis.predict).
    svf_fills_avoided: int = 0
    svf_killed_words: int = 0
    svf_killed_dirty_words: int = 0

    @property
    def svf_switch_bytes_avg(self) -> float:
        """Average bytes the SVF writes back per context switch."""
        if self.context_switches == 0:
            return 0.0
        return self.svf_switch_bytes / self.context_switches

    @property
    def stack_cache_switch_bytes_avg(self) -> float:
        """Average bytes the stack cache writes back per switch."""
        if self.context_switches == 0:
            return 0.0
        return self.stack_cache_switch_bytes / self.context_switches


class TrafficSimulator:
    """Streaming traffic model; implements the trace-sink protocol."""

    def __init__(
        self,
        capacity_bytes: int = 8192,
        line_size: int = 32,
        context_switch_period: Optional[int] = None,
    ):
        self.svf = StackValueFile(capacity_bytes=capacity_bytes)
        self.stack_cache = StackCache(
            capacity_bytes=capacity_bytes, line_size=line_size
        )
        self.capacity_bytes = capacity_bytes
        self.context_switch_period = context_switch_period
        self._sp_seen = False
        self._instructions = 0
        self._stack_references = 0
        self._switches = 0
        self._svf_switch_bytes = 0
        self._stack_cache_switch_bytes = 0

    def append(self, record) -> None:
        if not self._sp_seen:
            self.svf.update_sp(record.sp_value)
            self._sp_seen = True
        self._instructions += 1
        if record.is_load or record.is_store:
            if is_stack_address(record.addr):
                self._stack_references += 1
                self.svf.access(record.addr, record.size, record.is_store)
                self.stack_cache.access(
                    record.addr, record.size, record.is_store
                )
        if record.sp_update:
            self.svf.update_sp(record.sp_value)
        period = self.context_switch_period
        if period and self._instructions % period == 0:
            self._switches += 1
            self._svf_switch_bytes += self.svf.context_switch()
            self._stack_cache_switch_bytes += (
                self.stack_cache.context_switch()
            )

    def result(self) -> TrafficResult:
        return TrafficResult(
            capacity_bytes=self.capacity_bytes,
            instructions=self._instructions,
            stack_references=self._stack_references,
            svf_qw_in=self.svf.qw_in,
            svf_qw_out=self.svf.qw_out,
            stack_cache_qw_in=self.stack_cache.qw_in,
            stack_cache_qw_out=self.stack_cache.qw_out,
            context_switches=self._switches,
            svf_switch_bytes=self._svf_switch_bytes,
            stack_cache_switch_bytes=self._stack_cache_switch_bytes,
            svf_fills_avoided=self.svf.fills_avoided,
            svf_killed_words=self.svf.killed_words,
            svf_killed_dirty_words=self.svf.killed_dirty_words,
        )


def simulate_traffic(
    trace: Iterable,
    capacity_bytes: int = 8192,
    line_size: int = 32,
    context_switch_period: Optional[int] = None,
) -> TrafficResult:
    """Run the Table 3/4 traffic comparison over a finished trace."""
    simulator = TrafficSimulator(
        capacity_bytes=capacity_bytes,
        line_size=line_size,
        context_switch_period=context_switch_period,
    )
    for record in trace:
        simulator.append(record)
    return simulator.result()


def traffic_size_sweep(
    trace: List,
    sizes: Iterable[int] = (2048, 4096, 8192),
    line_size: int = 32,
) -> List[TrafficResult]:
    """Table 3: traffic at several SVF / stack-cache sizes."""
    return [
        simulate_traffic(trace, capacity_bytes=size, line_size=line_size)
        for size in sizes
    ]
