"""Abstract syntax tree for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Node:
    """Base class for all AST nodes (carries the source line)."""

    line: int = field(default=0, kw_only=True)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""  # '-', '!', '~', '*', '&'
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Index(Expr):
    """``base[index]`` where base is an array or pointer."""

    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Declaration(Stmt):
    """``int x = e;`` / ``int a[N];`` / ``int *p = e;``"""

    name: str = ""
    array_size: Optional[int] = None
    is_pointer: bool = False
    initializer: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """``target = value;`` where target is VarRef, Index or Unary('*')."""

    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class If(Stmt):
    condition: Optional[Expr] = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    condition: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    condition: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


@dataclass
class Param(Node):
    name: str = ""
    is_pointer: bool = False


@dataclass
class Function(Node):
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)


@dataclass
class GlobalVar(Node):
    name: str = ""
    array_size: Optional[int] = None
    initializer: List[int] = field(default_factory=list)


@dataclass
class TranslationUnit(Node):
    globals: List[GlobalVar] = field(default_factory=list)
    functions: List[Function] = field(default_factory=list)
