"""256.bzip2 — block compression (RLE + move-to-front + entropy count).

Models the SPEC bzip2 kernel: a tight, loop-dominated compressor with a
nearly flat call graph.  The paper reports bzip2's stack references sit
on average 2.5 bytes from the TOS — the shallowest of the suite — which
this program reproduces: almost all stack traffic is spilled loop
locals in two small frames.
"""

from __future__ import annotations

from repro.workloads.common import rand_source

_TEMPLATE = """
int input[{block}];
int rle[{rle_size}];

int generate_block(int block_id, int bias) {{
    for (int i = 0; i < {block}; i += 1) {{
        int r = rand31();
        int value = (r >> 7) & {alphabet_mask};
        if ((r & 7) < bias) {{
            value = input[(i + {block} - 1) % {block}] & {alphabet_mask};
        }}
        input[i] = value;
    }}
    return block_id;
}}

int run_length_encode(int n) {{
    int out = 0;
    int i = 0;
    while (i < n) {{
        int value = input[i];
        int run = 1;
        while (i + run < n && input[i + run] == value) {{
            run += 1;
        }}
        rle[out] = value;
        rle[out + 1] = run;
        out += 2;
        i += run;
    }}
    return out;
}}

int move_to_front(int m, int *freq) {{
    // The MTF table lives in this frame, like bzip2's per-block stack
    // buffers: the stack working set is a little over 1 KB, which is
    // what makes bzip2 generate traffic at 2 KB but not 8 KB (Table 3).
    int mtf_table[{mtf_size}];
    for (int i = 0; i < {mtf_size}; i += 1) {{
        mtf_table[i] = i;
    }}
    for (int i = 0; i < 64; i += 1) {{
        freq[i] = 0;
    }}
    int checksum = 0;
    for (int i = 0; i < m; i += 1) {{
        int value = rle[i] & 63;
        int j = 0;
        while (mtf_table[j] != value) {{
            j += 1;
        }}
        checksum += j;
        freq[j & 63] += 1;
        while (j > 0) {{
            mtf_table[j] = mtf_table[j - 1];
            j -= 1;
        }}
        mtf_table[0] = value;
    }}
    return checksum;
}}

int entropy_estimate(int *freq) {{
    int bits = 0;
    for (int i = 0; i < 64; i += 1) {{
        int count = freq[i];
        int level = 0;
        while (count > 0) {{
            count = count >> 1;
            level += 1;
        }}
        bits += freq[i] * level;
    }}
    return bits;
}}

int main() {{
    int freq[64];
    int total_bits = 0;
    int total_symbols = 0;
    for (int block_id = 0; block_id < {blocks}; block_id += 1) {{
        generate_block(block_id, {bias});
        int encoded = run_length_encode({block});
        total_symbols += move_to_front(encoded, &freq[0]);
        total_bits += entropy_estimate(&freq[0]);
    }}
    print(total_symbols);
    print(total_bits);
    return 0;
}}
"""


def make_source(
    blocks: int = 6,
    block: int = 192,
    seed: int = 20011,
    bias: int = 5,
    alphabet_mask: int = 15,
) -> str:
    """Build the bzip2 workload.

    ``bias`` controls run-length: higher bias repeats the previous
    symbol more often (the "graphic" input compresses better than the
    "program" input).
    """
    return rand_source(seed) + _TEMPLATE.format(
        blocks=blocks,
        block=block,
        rle_size=2 * block,
        bias=bias,
        alphabet_mask=alphabet_mask,
        mtf_size=296,
    )


INPUTS = {
    "graphic": dict(seed=20011, bias=6, alphabet_mask=7),
    "program": dict(seed=77003, bias=3, alphabet_mask=31),
}
