"""ASCII rendering helpers for experiment results."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Render a simple aligned ASCII table."""
    materialized: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_series(
    name: str, values: Sequence[float], width: int = 60, height_hint: str = ""
) -> str:
    """Render a numeric series as a one-line sparkline-ish bar string."""
    if not values:
        return f"{name}: (empty)"
    blocks = " .:-=+*#%@"
    low = min(values)
    high = max(values)
    span = (high - low) or 1
    sampled = values
    if len(values) > width:
        step = len(values) / width
        sampled = [values[int(i * step)] for i in range(width)]
    chars = "".join(
        blocks[min(len(blocks) - 1, int((v - low) / span * (len(blocks) - 1)))]
        for v in sampled
    )
    suffix = f" [{low:g}..{high:g}]{height_hint}"
    return f"{name}: {chars}{suffix}"


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def percent(value: float) -> str:
    """Format a ratio as a signed percent string (1.29 -> '+29.0%')."""
    return f"{(value - 1.0) * 100:+.1f}%"
