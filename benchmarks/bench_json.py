"""Machine-readable companions for the measure scripts.

Each ``benchmarks/measure_*.py`` script writes, next to its
human-readable ``.txt`` artifact, a ``BENCH_<name>.json`` document::

    {
      "schema_version": 1,
      "benchmark": "<name>",
      "host": { ...everything host-specific... },
      "results": { ...host-independent structure... }
    }

The split is deliberate: ``results`` carries the measured numbers and
their structure (still host-*dependent* in value, but free of host
*identity*), while everything that identifies or describes the
machine — CPU count, platform string, Python version, the timestamp —
is quarantined under ``host``.  Tooling that diffs runs across
machines compares ``results`` and treats ``host`` as provenance.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

#: Bump when the envelope shape (not a script's results payload)
#: changes incompatibly.
BENCH_SCHEMA_VERSION = 1

RESULTS_DIR = Path(__file__).parent / "results"


def host_metadata() -> dict:
    """Everything that identifies the measuring machine."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "measured_at": time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
        ),
    }


def write_bench_json(name: str, results: dict) -> Path:
    """Write ``BENCH_<name>.json``; returns the path written.

    ``results`` must already be JSON-serializable and must not embed
    host metadata — that belongs in the quarantined ``host`` block
    this helper adds.
    """
    path = RESULTS_DIR / f"BENCH_{name}.json"
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": name,
        "host": host_metadata(),
        "results": results,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
