"""Unit tests for the Table 3/4 traffic simulation."""

from repro.core.traffic import (
    TrafficSimulator,
    simulate_traffic,
    traffic_size_sweep,
)


class TestOnRealTraces:
    def test_svf_traffic_below_stack_cache(self, crafty_trace):
        result = simulate_traffic(crafty_trace, capacity_bytes=8192)
        total_svf = result.svf_qw_in + result.svf_qw_out
        total_cache = result.stack_cache_qw_in + result.stack_cache_qw_out
        assert total_svf <= total_cache
        assert result.stack_references > 0

    def test_traffic_shrinks_with_capacity(self, crafty_trace):
        sweep = traffic_size_sweep(crafty_trace, sizes=(2048, 4096, 8192))
        cache_in = [r.stack_cache_qw_in for r in sweep]
        assert cache_in[0] >= cache_in[1] >= cache_in[2]
        svf_total = [r.svf_qw_in + r.svf_qw_out for r in sweep]
        assert svf_total[0] >= svf_total[2]

    def test_flat_workload_has_negligible_traffic(self, gzip_trace):
        result = simulate_traffic(gzip_trace, capacity_bytes=8192)
        # gzip's frame is tiny: beyond compulsory fills, nothing moves.
        assert result.svf_qw_in + result.svf_qw_out < 50

    def test_instruction_and_reference_counts(self, gzip_trace):
        result = simulate_traffic(gzip_trace)
        assert result.instructions == len(gzip_trace)
        mem_stack = sum(
            1 for r in gzip_trace
            if (r.is_load or r.is_store) and r.addr >= 0x40000000
        )
        assert result.stack_references == mem_stack


class TestContextSwitchAccounting:
    def test_switch_counts(self, crafty_trace):
        result = simulate_traffic(
            crafty_trace, context_switch_period=5_000
        )
        assert result.context_switches == len(crafty_trace) // 5_000
        assert result.svf_switch_bytes_avg <= (
            result.stack_cache_switch_bytes_avg + 1e-9
        ) or result.stack_cache_switch_bytes_avg >= 0

    def test_svf_flushes_less_than_stack_cache(self, crafty_trace):
        """Table 4: SVF writes back 3-20x less per switch."""
        result = simulate_traffic(
            crafty_trace, context_switch_period=5_000
        )
        assert result.context_switches > 0
        assert (
            result.svf_switch_bytes_avg
            <= result.stack_cache_switch_bytes_avg
        )

    def test_no_period_means_no_switches(self, gzip_trace):
        result = simulate_traffic(gzip_trace)
        assert result.context_switches == 0
        assert result.svf_switch_bytes_avg == 0.0


class TestStreamingProtocol:
    def test_incremental_equals_batch(self, gzip_trace):
        simulator = TrafficSimulator(capacity_bytes=4096)
        for record in gzip_trace:
            simulator.append(record)
        incremental = simulator.result()
        batch = simulate_traffic(gzip_trace, capacity_bytes=4096)
        assert incremental.svf_qw_in == batch.svf_qw_in
        assert incremental.svf_qw_out == batch.svf_qw_out
        assert incremental.stack_cache_qw_in == batch.stack_cache_qw_in
        assert incremental.stack_cache_qw_out == batch.stack_cache_qw_out
