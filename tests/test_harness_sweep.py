"""The sweep engine: run tables, determinism, resumability, gaps.

The contract under test (see :mod:`repro.harness.sweep`):

* the run table and summary are byte-identical across ``jobs`` values
  and across warm re-runs — scheduling and caching never leak in;
* with the disk cache on, a second identical run skips every cell
  (resumability), visible as ``cache_hits == len(rows)``;
* a cell that fails degrades to an annotated gap row instead of
  aborting the sweep.
"""

import json

import pytest

from repro.errors import UsageError
from repro.harness import parallel
from repro.harness.sweep import (
    SweepOptions,
    plan_cells,
    run_sweep,
    run_sweep_cell,
)
from repro.sweepspec import parse_suite

WINDOW = 2_000


def timing_suite(**overrides):
    data = {
        "suite": "unit-timing",
        "kind": "timing",
        "workloads": ["gzip", "mcf"],
        "window": WINDOW,
        "base": {"machine": {"svf_mode": "svf"}},
        "grid": {"svf_ports": [1, 2]},
    }
    data.update(overrides)
    return parse_suite(data)


def test_sweep_options_reject_bad_jobs():
    with pytest.raises(UsageError, match="jobs"):
        SweepOptions(jobs=0)


def test_timing_sweep_metrics_match_direct_simulation():
    from repro import api

    spec = timing_suite()
    result = run_sweep(spec, SweepOptions(jobs=1, use_cache=False))
    assert result.ok and len(result.rows) == 4
    assert result.kind == "timing"
    assert result.factors == ("svf_ports",)

    row = next(
        r for r in result.rows
        if r.workload == "164.gzip" and r.level("svf_ports") == 2
    )
    baseline = api.simulate("gzip", api.MachineSpec(),
                            max_instructions=WINDOW)
    variant = api.simulate(
        "gzip", api.MachineSpec(svf_mode="svf", svf_ports=2),
        max_instructions=WINDOW,
    )
    assert row.metric("cycles") == variant.cycles
    assert row.metric("baseline_cycles") == baseline.cycles
    assert row.metric("speedup") == round(
        variant.speedup_over(baseline), 6
    )


def test_traffic_sweep_reports_quadword_traffic():
    spec = parse_suite({
        "suite": "unit-traffic",
        "kind": "traffic",
        "workloads": ["gzip"],
        "window": WINDOW,
        "grid": {"svf_granularity": [8, 32]},
    })
    result = run_sweep(spec, SweepOptions(jobs=1, use_cache=False))
    assert result.ok and len(result.rows) == 2
    by_granule = {
        row.level("svf_granularity"): row.metric("qw_total")
        for row in result.rows
    }
    # Coarser granules never reduce traffic.
    assert by_granule[32] >= by_granule[8] >= 0


def test_run_table_byte_identical_across_jobs():
    spec = timing_suite()
    inline = run_sweep(spec, SweepOptions(jobs=1, use_cache=False))
    fanned = run_sweep(spec, SweepOptions(jobs=4, use_cache=False))
    assert inline.run_table_json() == fanned.run_table_json()
    assert inline.render_summary() == fanned.render_summary()
    assert fanned.jobs == 4  # provenance may differ; the table may not


def test_second_run_resumes_from_cell_cache(tmp_path):
    spec = timing_suite()
    options = SweepOptions(jobs=1, cache_dir=str(tmp_path))
    cold = run_sweep(spec, options)
    warm = run_sweep(spec, options)
    assert cold.ok and warm.ok
    assert warm.cache_hits == len(warm.rows) == 4
    # Warm rows are byte-identical to cold ones.
    assert warm.run_table_json() == cold.run_table_json()
    # The cache hit lives in the meta payload, not the run table.
    assert '"cache_hit"' in warm.meta_json()
    assert '"cache_hit"' not in warm.run_table_json()


def test_failed_cell_degrades_to_annotated_gap(monkeypatch):
    spec = timing_suite(workloads=["gzip"])
    original = run_sweep_cell

    def flaky(cell):
        if dict(cell.params).get("svf_ports") == 2:
            raise RuntimeError("injected cell failure")
        return original(cell)

    monkeypatch.setitem(parallel._CELL_RUNNERS, "sweep", flaky)
    result = run_sweep(spec, SweepOptions(jobs=1, use_cache=False))
    assert not result.ok
    gap = next(row for row in result.rows if not row.ok)
    assert gap.level("svf_ports") == 2
    assert gap.metrics is None
    assert "injected cell failure" in gap.error
    # The healthy row still carries metrics, and the summary names
    # the gap the way report sections annotate failed cells.
    assert any(row.ok for row in result.rows)
    summary = result.render_summary()
    assert "--" in summary and "degraded" in summary
    payload = json.loads(result.run_table_json())
    assert payload["ok"] is False


def test_write_artifacts_and_submission_order(tmp_path):
    spec = timing_suite(workloads=["gzip"])
    result = run_sweep(spec, SweepOptions(
        jobs=1, use_cache=False, out_dir=str(tmp_path / "out")
    ))
    names = sorted(p.name for p in (tmp_path / "out").iterdir())
    assert names == ["run_meta.json", "run_table.json", "summary.txt"]
    on_disk = (tmp_path / "out" / "run_table.json").read_text()
    assert on_disk == result.run_table_json() + "\n"

    # plan_cells: canonical row order, combo-major submission order.
    points, cells = plan_cells(timing_suite())
    assert len(points) == len(cells) == 4
    assert [dict(c.params)["svf_ports"] for c in cells] == [1, 1, 2, 2]
