"""Call-graph construction, SCC condensation, and witness helpers."""

import pytest

from repro.analysis import build_call_graph, build_cfg
from repro.isa import assemble
from repro.lang import compile_program

CHAIN = """
.text
main:
    lda   sp, -16(sp)
    stq   ra, 0(sp)
    bsr   middle
    ldq   ra, 0(sp)
    lda   sp, 16(sp)
    ret
middle:
    lda   sp, -16(sp)
    stq   ra, 0(sp)
    bsr   leaf
    ldq   ra, 0(sp)
    lda   sp, 16(sp)
    ret
leaf:
    lda   v0, 7(zero)
    ret
orphan:
    ret
"""

SELF_RECURSIVE = """
.text
main:
    lda   sp, -16(sp)
    stq   ra, 0(sp)
    bsr   main
    ldq   ra, 0(sp)
    lda   sp, 16(sp)
    ret
"""

MUTUAL = """
.text
main:
    lda   sp, -16(sp)
    stq   ra, 0(sp)
    bsr   even
    ldq   ra, 0(sp)
    lda   sp, 16(sp)
    ret
even:
    lda   sp, -16(sp)
    stq   ra, 0(sp)
    bsr   odd
    ldq   ra, 0(sp)
    lda   sp, 16(sp)
    ret
odd:
    lda   sp, -16(sp)
    stq   ra, 0(sp)
    bsr   even
    ldq   ra, 0(sp)
    lda   sp, 16(sp)
    ret
"""

INDIRECT = """
.text
main:
    lda   sp, -16(sp)
    stq   ra, 0(sp)
    lda   t0, 4124(zero)
    jsr   t0
    ldq   ra, 0(sp)
    lda   sp, 16(sp)
    ret
helper:
    lda   v0, 7(zero)
    ret
"""


class TestCallGraphStructure:
    def test_chain_edges_and_root(self):
        graph = build_call_graph(assemble(CHAIN))
        assert graph.root == "main"
        assert graph.callees("main") == {"middle"}
        assert graph.callees("middle") == {"leaf"}
        assert graph.callees("leaf") == set()
        assert not graph.unknown_callers
        assert not graph.recursive

    def test_reachability_excludes_orphans(self):
        graph = build_call_graph(assemble(CHAIN))
        assert graph.reachable() == {"main", "middle", "leaf"}
        assert "orphan" not in graph.reachable()

    def test_sccs_bottom_up(self):
        graph = build_call_graph(assemble(CHAIN))
        order = {name: i for i, component in enumerate(graph.sccs)
                 for name in component}
        # Callees must be condensed before their callers.
        assert order["leaf"] < order["middle"] < order["main"]

    def test_call_path_is_shortest(self):
        graph = build_call_graph(assemble(CHAIN))
        assert graph.call_path("leaf") == ["main", "middle", "leaf"]
        assert graph.call_path("main") == ["main"]
        assert graph.call_path("orphan") is None

    def test_transitive_callees(self):
        graph = build_call_graph(assemble(CHAIN))
        assert graph.transitive_callees("main") == {"middle", "leaf"}
        assert graph.transitive_callees("leaf") == set()

    def test_accepts_program_or_cfg(self):
        program = assemble(CHAIN)
        from_program = build_call_graph(program)
        from_cfg = build_call_graph(build_cfg(program))
        assert from_program.edges == from_cfg.edges


class TestRecursionDetection:
    def test_self_recursion(self):
        graph = build_call_graph(assemble(SELF_RECURSIVE))
        assert graph.is_recursive("main")
        assert graph.recursion_cycle("main") == ["main", "main"]

    def test_mutual_recursion_scc(self):
        graph = build_call_graph(assemble(MUTUAL))
        assert graph.recursive == {"even", "odd"}
        assert not graph.is_recursive("main")
        cycle = graph.recursion_cycle("even")
        assert cycle[0] == cycle[-1] == "even"
        assert "odd" in cycle
        # The cycle must follow real edges.
        for caller, callee in zip(cycle, cycle[1:]):
            assert callee in graph.callees(caller)

    def test_non_recursive_has_no_cycle(self):
        graph = build_call_graph(assemble(CHAIN))
        assert graph.recursion_cycle("main") is None

    def test_minic_recursion_detected(self):
        source = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { print(fib(10)); return 0; }
        """
        graph = build_call_graph(compile_program(source))
        assert graph.is_recursive("fib")
        assert not graph.is_recursive("main")


class TestIndirectCalls:
    def test_jsr_marks_unknown_caller(self):
        graph = build_call_graph(assemble(INDIRECT))
        assert "main" in graph.unknown_callers
        sites = graph.sites["main"]
        assert any(site.is_indirect for site in sites)
        # The named-edge set stays a lower bound.
        assert graph.callees("main") == set()

    def test_direct_sites_record_callee(self):
        graph = build_call_graph(assemble(CHAIN))
        (site,) = graph.sites["main"]
        assert site.callee == "middle"
        assert not site.is_indirect
