"""Per-cycle structural-resource pools for the one-pass timing model.

Each pool models one resource kind with a fixed number of units per
cycle (decode slots, issue slots, ALUs, cache ports...).  The timing
model asks for the earliest cycle at or after a lower bound where one
unit (or one unit of *each* of several pools) is free.
"""

from __future__ import annotations

from typing import Dict, Iterable


class CyclePool:
    """A resource with ``per_cycle`` units available each cycle."""

    __slots__ = ("name", "per_cycle", "_used")

    def __init__(self, name: str, per_cycle: int):
        if per_cycle <= 0:
            raise ValueError(f"{name}: per_cycle must be positive")
        self.name = name
        self.per_cycle = per_cycle
        self._used: Dict[int, int] = {}

    def available(self, cycle: int) -> bool:
        """True if a unit is free at ``cycle``."""
        return self._used.get(cycle, 0) < self.per_cycle

    def take(self, cycle: int) -> None:
        """Consume one unit at ``cycle`` (caller checked availability)."""
        self._used[cycle] = self._used.get(cycle, 0) + 1

    def acquire(self, cycle: int) -> int:
        """Take one unit at the earliest cycle >= ``cycle``."""
        used = self._used
        per_cycle = self.per_cycle
        while used.get(cycle, 0) >= per_cycle:
            cycle += 1
        used[cycle] = used.get(cycle, 0) + 1
        return cycle

    def usage(self, cycle: int) -> int:
        return self._used.get(cycle, 0)


class CycleWindow:
    """Dense occupancy window: ``slots[cycle]`` = units used.

    The vectorized timing walk keeps each resource pool as a flat list
    indexed by absolute cycle instead of a ``{cycle: used}`` dict —
    probe/take become two C-speed list indexings.  The caller sizes
    the window past the highest cycle it can touch (tracking a cycle
    horizon plus a per-instruction latency margin) and calls
    :meth:`grow` when the horizon approaches the end.  Semantics are
    exactly :class:`CyclePool`'s: a unit is free at ``cycle`` when
    ``slots[cycle] < per_cycle``.
    """

    __slots__ = ("name", "per_cycle", "slots")

    def __init__(self, name: str, per_cycle: int, capacity: int):
        if per_cycle <= 0:
            raise ValueError(f"{name}: per_cycle must be positive")
        self.name = name
        self.per_cycle = per_cycle
        self.slots = [0] * capacity

    def grow(self, minimum: int) -> int:
        """Extend to at least ``minimum`` slots (geometric); new len."""
        slots = self.slots
        need = max(minimum, 2 * len(slots)) - len(slots)
        if need > 0:
            slots += [0] * need
        return len(slots)

    def available(self, cycle: int) -> bool:
        return self.slots[cycle] < self.per_cycle

    def take(self, cycle: int) -> None:
        self.slots[cycle] += 1

    def acquire(self, cycle: int) -> int:
        slots = self.slots
        per_cycle = self.per_cycle
        while slots[cycle] >= per_cycle:
            cycle += 1
        slots[cycle] += 1
        return cycle

    def usage(self, cycle: int) -> int:
        return self.slots[cycle]


def grow_windows(windows: Iterable[CycleWindow], minimum: int) -> int:
    """Grow every window to at least ``minimum`` slots; returns new len.

    All windows of one walk are created with the same capacity and
    grown together, so the returned length is valid for every one of
    them.  Growth is in place (``slots`` keeps its identity), so flat
    aliases of the slot lists held by the caller stay valid.
    """
    length = 0
    for window in windows:
        length = window.grow(minimum)
    return length


def acquire_all(pools: Iterable[CyclePool], cycle: int) -> int:
    """Take one unit of *each* pool at the earliest common free cycle."""
    pool_list = list(pools)
    while True:
        if all(pool.available(cycle) for pool in pool_list):
            for pool in pool_list:
                pool.take(cycle)
            return cycle
        cycle += 1
