"""Interprocedural per-function summaries, computed bottom-up on SCCs.

Each function gets one :class:`FunctionSummary` holding everything the
certifier (:mod:`repro.analysis.certify`) composes into program-level
verdicts:

* **net $sp effect** at returns and the **max local frame depth** in
  bytes, from the same entry-relative offset tracking the lint passes
  use (:func:`repro.analysis.stackcheck.analyze_frames`);
* **escaped-slot facts** from a token-propagating variant of the
  escape analysis: every stack address carries the entry-relative
  offset it was taken at, so a pointer stored to memory or handed to a
  callee names *which* slot became aliasable — CleanStack's
  unclean-object taint (arXiv 2503.16950) at slot granularity;
* **callee-clobbered registers**, closed transitively over the call
  graph (all caller-saved registers at indirect call sites);
* **worst-case stack depth** including callees, from a bottom-up
  recurrence over the SCC condensation: depth(F) = max(local frame
  growth, max over call sites of ``depth-at-site + depth(callee)``);
  any recursive SCC or indirect call makes the bound ``None``
  (UNBOUNDED / unknown), never a wrong number.

The escape analysis runs twice per function: once *unseeded* (taint
originates only at the function's own ``$sp``/``$fp``) and once
*seeded* with every argument register tainted by a ``("caller", reg)``
token.  A pure graph fixpoint over the recorded events then decides
which functions actually receive caller stack addresses, which
argument registers leak them onward, and therefore which address-taken
slots are merely *local escapes*, *callee-shared*, or fully *unclean*
(stored outside the stack, visible to arbitrary aliases).  Nothing is
re-analyzed during the fixpoint — it runs on the event tuples alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.cfg import FunctionCFG, ProgramCFG, build_cfg
from repro.analysis.dataflow import DataflowProblem, solve
from repro.analysis.report import Diagnostic, Severity
from repro.analysis.stackcheck import (
    _ADDRESS_PRESERVING_ALU,
    _CALLER_SAVED,
    FrameContext,
    analyze_frames,
    first_read_pass,
)
from repro.isa.registers import ARG_REGISTERS, FP, SP, ZERO

#: Token for a stack address whose entry-relative offset is unknown
#: (taken while ``$sp`` tracking was lost).
UNKNOWN = "?"

#: A taint token: the entry-relative offset an address was taken at,
#: ``UNKNOWN``, or ``("caller", arg_register)`` for an address received
#: from the caller in that argument register.
Token = Union[int, str, Tuple[str, int]]

#: Slot classification lattice, least-escaped first.
SLOT_PRIVATE = "private"
SLOT_LOCAL = "local-escape"
SLOT_SHARED = "callee-shared"
SLOT_UNCLEAN = "unclean"


@dataclass(frozen=True)
class EscapeEvents:
    """Escape-relevant events of one analysis variant of one function.

    ``gpr_sites``: computed-base stack accesses (index, tokens of the
    base register).  ``unclean``: stores of a stack address to memory
    the frame tracking cannot name (index, tokens of the stored
    value).  ``passes``: argument registers carrying stack addresses
    at call sites (index, callee or None, argument register, tokens).
    """

    gpr_sites: Tuple[Tuple[int, Tuple[Token, ...]], ...] = ()
    unclean: Tuple[Tuple[int, Tuple[Token, ...]], ...] = ()
    passes: Tuple[Tuple[int, Optional[str], int, Tuple[Token, ...]], ...] = ()


@dataclass
class FunctionSummary:
    """Everything the certifier needs to know about one function."""

    name: str
    sp_tracked: bool
    local_depth: int  # bytes of own-frame growth
    net_sp: Optional[int]  # consistent $sp offset at returns (0 = balanced)
    address_taken: Tuple[int, ...] = ()
    first_reads: int = 0
    #: (site index, callee name or None, entry-relative $sp at the site)
    calls: Tuple[Tuple[int, Optional[str], Optional[int]], ...] = ()
    recursive: bool = False
    own_clobbered: FrozenSet[int] = frozenset()
    clobbered: FrozenSet[int] = frozenset()  # closed over callees
    worst_depth: Optional[int] = None  # None = unbounded / unknown
    depth_reason: str = ""  # why worst_depth is None
    events_local: EscapeEvents = EscapeEvents()
    events_seeded: EscapeEvents = EscapeEvents()
    #: argument registers that may carry a caller stack address
    receives_stack: FrozenSet[int] = frozenset()
    #: resolved: may this function access stack memory off a computed base?
    gpr_access: bool = False
    #: offset -> SLOT_* for every address-taken offset
    slot_classes: Dict[int, str] = field(default_factory=dict)
    #: sp-balance / frame-bounds / escape diagnostics from the frame pass
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def error_count(self) -> int:
        return sum(
            1 for d in self.diagnostics if d.severity is Severity.ERROR
        )

    @property
    def has_unclean(self) -> bool:
        """Some slot of this frame (or a caller address it received)
        escapes to memory the stack tracking cannot see."""
        if any(c == SLOT_UNCLEAN for c in self.slot_classes.values()):
            return True
        if self.events_local.unclean:
            return True
        for _index, tokens in self.events_seeded.unclean:
            for token in tokens:
                if (
                    isinstance(token, tuple)
                    and token[1] in self.receives_stack
                ):
                    return True
        return False


@dataclass
class ProgramSummary:
    """Per-function summaries plus the call graph they were built on."""

    graph: CallGraph
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: function names in bottom-up (callees-first) SCC order
    order: List[str] = field(default_factory=list)

    @property
    def root(self) -> Optional[str]:
        return self.graph.root

    def live(self) -> Set[str]:
        return self.graph.reachable()

    def program_depth(self) -> Tuple[Optional[int], str]:
        """Worst-case stack depth of the whole program in bytes.

        Returns ``(bound, reason)``; ``bound`` is None when unbounded
        or unknowable, with ``reason`` naming why.
        """
        if self.root is None:
            return None, "no entry function"
        summary = self.functions[self.root]
        return summary.worst_depth, summary.depth_reason


# ---------------------------------------------------------------------------
# Token-propagating escape analysis
# ---------------------------------------------------------------------------

_STACK_BASES = (SP, FP)


def _is_stack_token(token: Token) -> bool:
    return isinstance(token, int) or token == UNKNOWN


class _TokenState:
    """Mutable (reg -> tokens, slot offset -> tokens) working state."""

    __slots__ = ("regs", "slots")

    def __init__(self, regs: Dict[int, FrozenSet[Token]],
                 slots: Dict[int, FrozenSet[Token]]):
        self.regs = regs
        self.slots = slots

    @classmethod
    def thaw(cls, fact) -> "_TokenState":
        regs: Dict[int, Set[Token]] = {}
        slots: Dict[int, Set[Token]] = {}
        for reg, token in fact[0]:
            regs.setdefault(reg, set()).add(token)
        for offset, token in fact[1]:
            slots.setdefault(offset, set()).add(token)
        return cls(
            {r: frozenset(t) for r, t in regs.items()},
            {o: frozenset(t) for o, t in slots.items()},
        )

    def freeze(self):
        return (
            frozenset(
                (reg, token)
                for reg, tokens in self.regs.items()
                for token in tokens
            ),
            frozenset(
                (offset, token)
                for offset, tokens in self.slots.items()
                for token in tokens
            ),
        )

    def tokens(self, register: Optional[int]) -> FrozenSet[Token]:
        if register is None:
            return frozenset()
        return self.regs.get(register, frozenset())

    def set_reg(self, register: Optional[int],
                tokens: FrozenSet[Token]) -> None:
        if register is None or register in _STACK_BASES or register == ZERO:
            return
        if tokens:
            self.regs[register] = tokens
        else:
            self.regs.pop(register, None)


def _token_step(context: FrameContext, index: int, state: _TokenState,
                site_callee, events: Optional[dict]) -> None:
    """Abstractly execute one instruction over the token state.

    ``events`` (when not None) collects gpr/unclean/passes events for
    the reporting walk; the fixpoint solve passes None.
    """
    instruction = context.cfg.instruction(index)
    op = instruction.op
    sp, fp = context.offsets.get(index, (None, None))

    def base_token(register: int) -> FrozenSet[Token]:
        base = sp if register == SP else fp
        offset = (
            base + instruction.imm if isinstance(base, int) else None
        )
        return frozenset({offset if offset is not None else UNKNOWN})

    if op == "lda":
        if instruction.rb in _STACK_BASES:
            state.set_reg(instruction.rd, base_token(instruction.rb))
        else:
            state.set_reg(instruction.rd, state.tokens(instruction.rb))
    elif instruction.is_load:
        slot = context.slot(index)
        if slot is not None:
            state.set_reg(
                instruction.rd, state.slots.get(slot[0], frozenset())
            )
        else:
            # Computed-base or global load: provenance unknown; mirror
            # the lint's escape pass and clear (a stack address
            # laundered through memory was already flagged unclean at
            # the store).
            if events is not None and instruction.rb not in _STACK_BASES:
                tokens = state.tokens(instruction.rb)
                if tokens:
                    events["gpr"].append((index, tuple(sorted(
                        tokens, key=repr
                    ))))
            state.set_reg(instruction.rd, frozenset())
        return
    elif instruction.is_store:
        if instruction.rd in _STACK_BASES:
            base = sp if instruction.rd == SP else fp
            value_tokens = frozenset(
                {base if isinstance(base, int) else UNKNOWN}
            )
        else:
            value_tokens = state.tokens(instruction.rd)
        slot = context.slot(index)
        if slot is not None:
            if value_tokens:
                state.slots[slot[0]] = value_tokens
            else:
                state.slots.pop(slot[0], None)
        else:
            if events is not None:
                if instruction.rb not in _STACK_BASES:
                    base_tokens = state.tokens(instruction.rb)
                    if base_tokens:
                        events["gpr"].append((index, tuple(sorted(
                            base_tokens, key=repr
                        ))))
                if value_tokens:
                    events["unclean"].append((index, tuple(sorted(
                        value_tokens, key=repr
                    ))))
        return
    elif op in _ADDRESS_PRESERVING_ALU:
        tokens: Set[Token] = set()
        for source in instruction.source_registers():
            if source in _STACK_BASES:
                base = sp if source == SP else fp
                tokens.add(base if isinstance(base, int) else UNKNOWN)
            else:
                tokens.update(state.tokens(source))
        state.set_reg(instruction.rd, frozenset(tokens))
    elif instruction.op_class.name in ("IALU", "IMULT"):
        state.set_reg(instruction.destination_register(), frozenset())
    elif instruction.is_call:
        if events is not None:
            callee = site_callee.get(index)
            for register in ARG_REGISTERS:
                tokens = state.tokens(register)
                if tokens:
                    events["passes"].append((
                        index, callee, register,
                        tuple(sorted(tokens, key=repr)),
                    ))
        for register in _CALLER_SAVED:
            state.regs.pop(register, None)


class _TokenProblem(DataflowProblem):
    direction = "forward"

    def __init__(self, context: FrameContext, seeded: bool, site_callee):
        self.context = context
        self.seeded = seeded
        self.site_callee = site_callee

    def boundary(self, cfg):
        if not self.seeded:
            return (frozenset(), frozenset())
        return (
            frozenset(
                (register, ("caller", register))
                for register in ARG_REGISTERS
            ),
            frozenset(),
        )

    def top(self, cfg):
        return (frozenset(), frozenset())

    def meet(self, left, right):
        return (left[0] | right[0], left[1] | right[1])

    def transfer(self, cfg, block, fact):
        state = _TokenState.thaw(fact)
        for index in block.indices():
            _token_step(self.context, index, state, self.site_callee, None)
        return state.freeze()


def _escape_events(context: FrameContext, graph: CallGraph,
                   seeded: bool) -> EscapeEvents:
    """Run one escape-analysis variant and collect its events."""
    cfg = context.cfg
    site_callee = {
        site.index: site.callee for site in graph.sites.get(cfg.name, ())
    }
    problem = _TokenProblem(context, seeded, site_callee)
    result = solve(cfg, problem)
    events = {"gpr": [], "unclean": [], "passes": []}
    for block in cfg.blocks:
        if block.id not in context.reachable:
            continue
        fact = result.inputs[block.id]
        state = _TokenState.thaw(fact)
        for index in block.indices():
            _token_step(context, index, state, site_callee, events)
    return EscapeEvents(
        gpr_sites=tuple(events["gpr"]),
        unclean=tuple(events["unclean"]),
        passes=tuple(events["passes"]),
    )


# ---------------------------------------------------------------------------
# Summary construction
# ---------------------------------------------------------------------------


def _frame_summary(function: FunctionCFG, graph: CallGraph
                   ) -> Tuple[FunctionSummary, FrameContext]:
    context, diagnostics = analyze_frames(function)
    name = function.name

    return_offsets: Set = set()
    clobbered: Set[int] = set()
    reachable_indices: Set[int] = set()
    for block in function.blocks:
        if block.id not in context.reachable:
            continue
        reachable_indices.update(block.indices())
        for index in block.indices():
            instruction = function.instruction(index)
            destination = instruction.destination_register()
            if destination is not None and destination not in _STACK_BASES:
                clobbered.add(destination)
            if instruction.is_return:
                return_offsets.add(
                    context.offsets.get(index, (None, None))[0]
                )

    net_sp: Optional[int] = None
    if len(return_offsets) == 1:
        only = next(iter(return_offsets))
        if isinstance(only, int):
            net_sp = only

    calls: List[Tuple[int, Optional[str], Optional[int]]] = []
    for site in graph.sites.get(name, ()):
        if site.index not in reachable_indices:
            continue  # a call on dead code contributes no depth
        sp_at = context.offsets.get(site.index, (None, None))[0]
        calls.append((
            site.index,
            site.callee,
            sp_at if isinstance(sp_at, int) else None,
        ))

    first_reads = (
        len(first_read_pass(context)) if context.sp_tracked else 0
    )
    summary = FunctionSummary(
        name=name,
        sp_tracked=context.sp_tracked,
        local_depth=-context.deepest_sp,
        net_sp=net_sp,
        address_taken=tuple(sorted(context.address_taken)),
        first_reads=first_reads,
        calls=tuple(calls),
        recursive=graph.is_recursive(name),
        own_clobbered=frozenset(clobbered),
        diagnostics=diagnostics,
    )
    return summary, context


def _close_clobbers(summaries: Dict[str, FunctionSummary],
                    graph: CallGraph) -> None:
    """clobbered(F) = own(F) ∪ ⋃ clobbered(callees), bottom-up."""
    all_caller_saved = frozenset(_CALLER_SAVED)
    for component in graph.sccs:
        shared: Set[int] = set()
        for name in component:
            shared |= summaries[name].own_clobbered
            if name in graph.unknown_callers:
                shared |= all_caller_saved
            for callee in graph.edges.get(name, ()):
                if callee in component:
                    continue
                shared |= summaries[callee].clobbered
        for name in component:
            summaries[name].clobbered = frozenset(shared)


def _solve_depths(summaries: Dict[str, FunctionSummary],
                  graph: CallGraph) -> None:
    """Bottom-up worst-case depth; None bounds carry a reason."""
    for component in graph.sccs:
        if len(component) > 1 or graph.is_recursive(component[0]):
            for name in component:
                summaries[name].worst_depth = None
                summaries[name].depth_reason = "recursion"
            continue
        name = component[0]
        summary = summaries[name]
        if not summary.sp_tracked:
            summary.worst_depth = None
            summary.depth_reason = "untracked-sp"
            continue
        worst = summary.local_depth
        reason = ""
        for _index, callee, sp_at in summary.calls:
            if callee is None:
                worst, reason = None, "indirect-call"
                break
            callee_summary = summaries[callee]
            if callee_summary.worst_depth is None:
                worst = None
                reason = callee_summary.depth_reason or "callee"
                break
            if sp_at is None:
                worst, reason = None, "untracked-sp"
                break
            worst = max(worst, -sp_at + callee_summary.worst_depth)
        summary.worst_depth = worst
        summary.depth_reason = reason


def _resolve_escapes(summaries: Dict[str, FunctionSummary],
                     graph: CallGraph) -> None:
    """Graph fixpoints over the recorded escape events.

    1. ``received``: which (function, argument register) pairs may
       carry a caller stack address — seeded by direct passes of
       offset tokens, propagated along seeded-variant forwarding.
    2. ``leaky``: which (function, argument register) pairs may store
       that address to unclean memory, directly or via a deeper call.
    3. Per-slot classification and the resolved gpr_access bit.
    """
    received: Set[Tuple[str, int]] = set()
    forwards: Dict[Tuple[str, int], Set[Tuple[str, int]]] = {}

    for name, summary in summaries.items():
        for _index, callee, register, tokens in summary.events_local.passes:
            if callee is not None and any(
                _is_stack_token(t) for t in tokens
            ):
                received.add((callee, register))
        for _index, callee, register, tokens in summary.events_seeded.passes:
            if callee is None:
                continue
            for token in tokens:
                if isinstance(token, tuple):
                    forwards.setdefault((name, token[1]), set()).add(
                        (callee, register)
                    )

    work = list(received)
    while work:
        key = work.pop()
        for target in forwards.get(key, ()):
            if target not in received:
                received.add(target)
                work.append(target)

    # leaky: argument registers whose address reaches unclean memory.
    leaky: Set[Tuple[str, int]] = set()
    for name, summary in summaries.items():
        for _index, _tokens in summary.events_seeded.unclean:
            for token in _tokens:
                if isinstance(token, tuple):
                    leaky.add((name, token[1]))
        # an address forwarded to an unknown callee may leak anywhere
        for _index, callee, register, tokens in summary.events_seeded.passes:
            if callee is None:
                for token in tokens:
                    if isinstance(token, tuple):
                        leaky.add((name, token[1]))
    changed = True
    while changed:
        changed = False
        for source, targets in forwards.items():
            if source in leaky:
                continue
            if any(target in leaky for target in targets):
                leaky.add(source)
                changed = True

    for name, summary in summaries.items():
        summary.receives_stack = frozenset(
            register for (func, register) in received if func == name
        )

        unclean_offsets: Set[int] = set()
        shared_offsets: Set[int] = set()
        for _index, tokens in summary.events_local.unclean:
            unclean_offsets.update(
                t for t in tokens if isinstance(t, int)
            )
        for _index, callee, register, tokens in summary.events_local.passes:
            offsets = {t for t in tokens if isinstance(t, int)}
            shared_offsets.update(offsets)
            if callee is None or (callee, register) in leaky:
                unclean_offsets.update(offsets)

        classes: Dict[int, str] = {}
        for offset in summary.address_taken:
            if offset in unclean_offsets:
                classes[offset] = SLOT_UNCLEAN
            elif offset in shared_offsets:
                classes[offset] = SLOT_SHARED
            else:
                classes[offset] = SLOT_LOCAL
        summary.slot_classes = classes

        gpr = bool(summary.events_local.gpr_sites)
        if not gpr:
            for _index, tokens in summary.events_seeded.gpr_sites:
                for token in tokens:
                    if (
                        isinstance(token, tuple)
                        and token[1] in summary.receives_stack
                    ):
                        gpr = True
                        break
                if gpr:
                    break
        summary.gpr_access = gpr


def summarize_program(source, graph: Optional[CallGraph] = None
                      ) -> ProgramSummary:
    """Summaries for every function of a :class:`Program` /
    :class:`ProgramCFG`, computed bottom-up on the SCC condensation."""
    pcfg = source if isinstance(source, ProgramCFG) else build_cfg(source)
    if graph is None:
        graph = build_call_graph(pcfg)
    result = ProgramSummary(graph=graph)

    contexts: Dict[str, FrameContext] = {}
    for component in graph.sccs:
        for name in component:
            summary, context = _frame_summary(pcfg.functions[name], graph)
            contexts[name] = context
            result.functions[name] = summary
            result.order.append(name)

    for name, summary in result.functions.items():
        if summary.sp_tracked:
            summary.events_local = _escape_events(
                contexts[name], graph, seeded=False
            )
            summary.events_seeded = _escape_events(
                contexts[name], graph, seeded=True
            )

    _close_clobbers(result.functions, graph)
    _solve_depths(result.functions, graph)
    _resolve_escapes(result.functions, graph)
    return result


__all__ = [
    "EscapeEvents",
    "FunctionSummary",
    "ProgramSummary",
    "SLOT_LOCAL",
    "SLOT_PRIVATE",
    "SLOT_SHARED",
    "SLOT_UNCLEAN",
    "Token",
    "UNKNOWN",
    "summarize_program",
]
