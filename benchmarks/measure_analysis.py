"""Measure the batched characterization pass against the append path.

Regenerates ``benchmarks/results/analysis_speedup.txt``::

    PYTHONPATH=src python benchmarks/measure_analysis.py \
        [--window 80000] [--repeats 3]

For each reference workload the script traces once (emulation is not
part of the measurement), then times the full cold characterization —
the four Fig 1-3 analyses plus the Table 3 traffic consumer — three
ways over the same packed trace:

* ``append``: the record-at-a-time reference sink protocol, one
  :class:`TraceRecord` materialized per instruction;
* ``python``: the batched ``consume_columns`` walk over flat columns
  with the numpy backend disabled (the path every host exercises);
* ``numpy``: the vectorized backend (skipped when numpy is absent).

Best of ``--repeats`` runs each.  The acceptance bar for the columnar
analysis PR is >= 3x for the pure-python batched path; the artifact
records the actual ratios.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path
from time import perf_counter

from bench_json import write_bench_json
from repro.core.traffic import TrafficSimulator, simulate_traffic
from repro.emulator.memory import STACK_BASE
from repro.trace.analysis import (
    AccessDistribution,
    OffsetLocality,
    StackDepthProfile,
    consume_trace,
)
from repro.trace.columnar import numpy_available, set_numpy_enabled
from repro.trace.first_touch import FirstTouchProfile
from repro.workloads import workload

RESULTS = Path(__file__).parent / "results" / "analysis_speedup.txt"

WORKLOADS = ("gzip", "crafty")


def _sinks():
    return (
        AccessDistribution(),
        StackDepthProfile(stack_base=STACK_BASE),
        OffsetLocality(),
        FirstTouchProfile(),
    )


def run_append(trace) -> None:
    sinks = _sinks()
    traffic = TrafficSimulator()
    for record in trace.records():
        for sink in sinks:
            sink.append(record)
        traffic.append(record)
    traffic.result()


def run_batched(trace, numpy_on: bool) -> None:
    previous = set_numpy_enabled(numpy_on)
    try:
        consume_trace(trace, _sinks())
        simulate_traffic(trace)
    finally:
        set_numpy_enabled(previous)


def best_seconds(fn, repeats: int) -> float:
    best = None
    for _ in range(repeats):
        started = perf_counter()
        fn()
        elapsed = perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def main() -> int:
    cli = argparse.ArgumentParser(description=__doc__)
    cli.add_argument("--window", type=int, default=80_000)
    cli.add_argument("--repeats", type=int, default=3)
    args = cli.parse_args()

    lines = [
        "Batched analysis speedup: cold Fig 1-3 + Table 3 characterization",
        "=" * 65,
        "",
        f"Per workload, over one {args.window:,}-instruction packed trace:",
        "AccessDistribution + StackDepthProfile + OffsetLocality +",
        "FirstTouchProfile + TrafficSimulator, consumed three ways.",
        f"Best of {args.repeats} runs; tracing itself is excluded.",
        "Baseline = the record-at-a-time append sink protocol.",
        "",
    ]
    worst_python = None
    worst_numpy = None
    results = {
        "window": args.window,
        "repeats": args.repeats,
        "workloads": {},
    }
    for name in WORKLOADS:
        trace = workload(name).trace(max_instructions=args.window)
        append = best_seconds(lambda: run_append(trace), args.repeats)
        python = best_seconds(
            lambda: run_batched(trace, numpy_on=False), args.repeats
        )
        rows = [("append", append, None), ("python", python, append / python)]
        worst_python = (
            append / python
            if worst_python is None
            else min(worst_python, append / python)
        )
        if numpy_available():
            vectorized = best_seconds(
                lambda: run_batched(trace, numpy_on=True), args.repeats
            )
            rows.append(("numpy", vectorized, append / vectorized))
            worst_numpy = (
                append / vectorized
                if worst_numpy is None
                else min(worst_numpy, append / vectorized)
            )
        lines.append(f"{name} ({args.window:,} instructions)")
        lines.append(f"  {'path':8s} {'seconds':>9s} {'speedup':>9s}")
        for label, seconds, ratio in rows:
            speedup = "-" if ratio is None else f"{ratio:.2f}x"
            lines.append(f"  {label:8s} {seconds:8.3f}s {speedup:>9s}")
        lines.append("")
        results["workloads"][name] = {
            label: {
                "seconds": round(seconds, 6),
                "speedup": None if ratio is None else round(ratio, 2),
            }
            for label, seconds, ratio in rows
        }
    lines.append(
        f"Worst-case pure-python speedup: {worst_python:.2f}x "
        f"(acceptance bar: >= 3x)"
    )
    if worst_numpy is not None:
        lines.append(f"Worst-case numpy speedup: {worst_numpy:.2f}x")
    else:
        lines.append("numpy backend not installed; vectorized leg skipped.")
    lines.append("")
    lines.append(
        "Regenerate: PYTHONPATH=src python benchmarks/measure_analysis.py"
    )
    lines.append(
        "Measured %s."
        % time.strftime("%Y-%m-%d %H:%M:%S %Z", time.localtime())
    )
    text = "\n".join(lines) + "\n"
    RESULTS.write_text(text)
    results["worst_case_python_speedup"] = round(worst_python, 2)
    results["worst_case_numpy_speedup"] = (
        None if worst_numpy is None else round(worst_numpy, 2)
    )
    results["acceptance_bar"] = 3.0
    json_path = write_bench_json("analysis", results)
    print(text)
    print(f"wrote {RESULTS}")
    print(f"wrote {json_path}")
    return 0 if worst_python >= 3.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
