"""Tests for the partial-word builtins (load32/store32) and x86mix."""

import pytest

from repro.emulator import run_program
from repro.lang import compile_program
from repro.lang.interpreter import InterpreterError, interpret
from repro.lang.parser import parse
from repro.lang.semantics import SemanticError, analyze
from repro.workloads import workload


def outputs(source):
    machine, _ = run_program(
        compile_program(source), max_instructions=3_000_000
    )
    assert machine.halted
    return machine.output


class TestBuiltins:
    def test_store_then_load_round_trip(self):
        assert outputs(
            """
            int main() {
                int buf[2];
                store32(&buf[0], 0, 123);
                store32(&buf[0], 4, 456);
                print(load32(&buf[0], 0));
                print(load32(&buf[0], 4));
                return 0;
            }
            """
        ) == [123, 456]

    def test_halves_are_independent(self):
        """Two 32-bit fields pack into one quad-word without clobber."""
        assert outputs(
            """
            int main() {
                int buf[1];
                buf[0] = 0;
                store32(&buf[0], 0, -1);
                print(load32(&buf[0], 4));  // upper half untouched
                store32(&buf[0], 4, 7);
                print(load32(&buf[0], 0));  // lower half preserved
                return 0;
            }
            """
        ) == [0, -1]

    def test_load32_sign_extends(self):
        assert outputs(
            """
            int main() {
                int buf[1];
                store32(&buf[0], 0, -5);
                print(load32(&buf[0], 0));
                return 0;
            }
            """
        ) == [-5]

    def test_quad_word_view_of_packed_fields(self):
        assert outputs(
            """
            int main() {
                int buf[1];
                store32(&buf[0], 0, 1);
                store32(&buf[0], 4, 2);
                print(buf[0]);  // little-endian: 2 << 32 | 1
                return 0;
            }
            """
        ) == [(2 << 32) | 1]

    def test_arity_checked(self):
        with pytest.raises(SemanticError, match="argument"):
            analyze(parse("int main() { load32(0); }"))
        with pytest.raises(SemanticError, match="argument"):
            analyze(parse("int main() { store32(0, 0); }"))

    def test_interpreter_agrees(self):
        source = """
        int main() {
            int buf[4];
            for (int i = 0; i < 8; i += 1) {
                store32(&buf[0], i * 4, i * 100 - 250);
            }
            int total = 0;
            for (int i = 0; i < 8; i += 1) {
                total += load32(&buf[0], i * 4);
            }
            print(total);
            print(buf[3]);
            return 0;
        }
        """
        assert outputs(source) == interpret(source).output

    def test_interpreter_checks_alignment(self):
        with pytest.raises(InterpreterError, match="unaligned"):
            interpret(
                "int main() { int b[1]; print(load32(&b[0], 2)); }"
            )


class TestX86MixWorkload:
    def test_runs_and_halts(self):
        machine = workload("x86mix").run(
            max_instructions=3_000_000, records=24, batches=2
        )
        assert machine.halted
        assert machine.output[1] == 24 * 2 * 2  # records weighed twice

    def test_partial_word_references_dominate_stores(self):
        trace = workload("x86mix").trace(max_instructions=40_000)
        stores = [r for r in trace if r.is_store]
        partial = [r for r in stores if r.size == 4]
        assert len(partial) / len(stores) > 0.3

    def test_partial_word_stores_cost_svf_fills(self):
        """The future-work finding: sub-word stores erode — and here
        *invert* — the SVF's no-fill-on-allocate advantage.  A 32-bit
        store to an invalid 64-bit granule read-merges one word each,
        while the stack cache amortizes one line fill over four
        words.  This is exactly why the paper singles out x86's
        partial-word references as requiring further study."""
        from repro.core.traffic import simulate_traffic

        trace = workload("x86mix").trace(max_instructions=40_000)
        result = simulate_traffic(trace, capacity_bytes=8192)
        assert result.svf_qw_in > 0  # read-merge fills appear
        # On the SPEC-style full-word suite the SVF wins by orders of
        # magnitude; on this partial-word mix it loses its edge.
        assert result.svf_qw_in >= result.stack_cache_qw_in
