"""First-touch analysis of stack words (paper Section 7, contribution 1).

The paper lists among the distinguishing characteristics of stack
references "a much higher percentage of first reference store
operations (making per word valid bits attractive)": a word exposed by
stack growth is uninitialized, so its first access after allocation is
almost always a store.  A conventional cache cannot exploit this (it
fills the line either way); the SVF's valid bits turn it into zero
fill traffic.

:class:`FirstTouchProfile` measures it directly: it tracks allocation
events via ``$sp`` decreases and classifies the first reference to
each newly exposed quad-word.  For contrast it also classifies first
touches to non-stack (global/heap) words, where loads come first far
more often.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.trace.columnar import ColumnarTrace
from repro.trace.records import TraceRecord
from repro.trace.regions import STACK_REGION_FLOOR, is_stack_address


@dataclass
class FirstTouchProfile:
    """Streaming trace sink measuring first-touch store fractions."""

    #: stack words allocated (exposed by an $sp decrease) but untouched
    _pending: Set[int] = field(default_factory=set)
    _previous_sp: int = 0
    _seen_other: Dict[int, bool] = field(default_factory=dict)
    #: max words tracked per allocation (guards giant frames)
    allocation_cap: int = 4096

    stack_first_stores: int = 0
    stack_first_loads: int = 0
    other_first_stores: int = 0
    other_first_loads: int = 0

    def append(self, record: TraceRecord) -> None:
        if self._previous_sp == 0:
            self._previous_sp = record.sp_value
        if record.is_load or record.is_store:
            word = record.addr & ~7
            if is_stack_address(record.addr):
                if word in self._pending:
                    self._pending.discard(word)
                    if record.is_store:
                        self.stack_first_stores += 1
                    else:
                        self.stack_first_loads += 1
            elif word not in self._seen_other:
                self._seen_other[word] = True
                if record.is_store:
                    self.other_first_stores += 1
                else:
                    self.other_first_loads += 1
        if record.sp_update:
            new_sp = record.sp_value
            if new_sp < self._previous_sp:
                exposed = min(
                    (self._previous_sp - new_sp) // 8, self.allocation_cap
                )
                for index in range(exposed):
                    self._pending.add(new_sp + 8 * index)
            else:
                # Deallocation kills pending-but-untouched words.
                for word in [
                    w for w in self._pending if w < new_sp
                ]:
                    self._pending.discard(word)
            self._previous_sp = new_sp

    def consume_columns(
        self, trace: ColumnarTrace, lo: int = 0, hi: Optional[int] = None
    ) -> None:
        """Batched form of ``append`` over ``trace[lo:hi)``.

        This analysis is an inherently sequential state machine (each
        instruction's effect depends on the pending-word set left by
        all earlier ones), so there is no vectorized variant — the
        batched win is skipping record materialization and walking the
        packed columns with locals bound.
        """
        hi = len(trace) if hi is None else hi
        col_flags = trace.flags
        col_addr = trace.addr
        col_sp = trace.sp
        stack_floor = STACK_REGION_FLOOR
        pending = self._pending
        seen_other = self._seen_other
        previous_sp = self._previous_sp
        cap = self.allocation_cap
        for index in range(lo, hi):
            flags = col_flags[index]
            if previous_sp == 0:
                previous_sp = col_sp[index]
            if flags & 3:  # load or store
                addr = col_addr[index]
                word = addr & ~7
                if addr >= stack_floor:
                    if word in pending:
                        pending.discard(word)
                        if flags & 2:
                            self.stack_first_stores += 1
                        else:
                            self.stack_first_loads += 1
                elif word not in seen_other:
                    seen_other[word] = True
                    if flags & 2:
                        self.other_first_stores += 1
                    else:
                        self.other_first_loads += 1
            if flags & 32:  # sp_update
                new_sp = col_sp[index]
                if new_sp < previous_sp:
                    exposed = min((previous_sp - new_sp) // 8, cap)
                    for offset in range(exposed):
                        pending.add(new_sp + 8 * offset)
                else:
                    for word in [w for w in pending if w < new_sp]:
                        pending.discard(word)
                previous_sp = new_sp
        self._previous_sp = previous_sp

    @property
    def stack_first_store_fraction(self) -> float:
        """Fraction of freshly allocated stack words written first."""
        total = self.stack_first_stores + self.stack_first_loads
        if total == 0:
            return 0.0
        return self.stack_first_stores / total

    @property
    def other_first_store_fraction(self) -> float:
        """Same metric for global/heap words (the contrast)."""
        total = self.other_first_stores + self.other_first_loads
        if total == 0:
            return 0.0
        return self.other_first_stores / total
