"""Command-line interface: ``python -m repro <command>``.

Commands:

``list``
    list the workload suite (benchmarks, inputs, descriptions).
``run <workload> [--input NAME] [-O LEVEL] [--max-instructions N]``
    compile and execute a workload on the functional emulator.
``characterize [<workload> ...] [--format text|json]``
    Figures 1-3 for the chosen workloads (default: whole suite).
``simulate <workload> [--width W] [--svf MODE] [--ports P] ...``
    time one workload on a Table-2 machine, optionally with a stack
    unit attached, and report cycles/IPC (plus speedup vs baseline).
``compile <file.mc> [--emit asm|trace] [-O LEVEL]``
    compile a MiniC source file; print assembly or run and trace.
``experiment <name> [--window N] [--format text|json]``
    regenerate one paper artifact: table1, table2, fig1, fig2, fig3,
    fig5, fig6, fig7, fig8, fig9, table3, table4.
``report [--jobs N] [--cache-dir DIR] [--no-cache] [--benchmarks ...]``
    run the whole battery through the parallel engine and write one
    markdown report; ``--jobs`` picks the worker count (default: CPU
    count) and the output is byte-identical for every value.
    ``--profile`` additionally prints the sweep's per-phase wall-time
    breakdown (compile/emulate/timing/traffic/analysis/render) and the
    cache hit/miss counters to stdout.  ``--incremental`` re-renders
    only sections whose content keys changed, reusing cached section
    payloads for the rest (same bytes either way).
``profile <workload> [--max-instructions N]``
    run one workload end to end (compile, emulate, time, traffic,
    characterization analyses) under the phase profiler and print the
    per-phase breakdown.
``predict [--jobs N] [--benchmarks ...]``
    cross-check the static SVF-traffic bounds against full dynamic
    runs over the parallel engine; exits nonzero on a bound violation.
``lint <workload> | --all | --asm FILE [-O LEVEL] [--jobs N]``
    statically verify stack discipline (balanced ``$sp``, frame
    bounds, first-read, dead stores, address escapes) on compiled
    workloads or a hand-written assembly file; exits nonzero when
    error-severity diagnostics exist.  ``--jobs`` fans the ``--all``
    sweep over the parallel engine.
``sweep <suite.yaml> [--jobs N] [--out DIR] [--format table|json]``
    expand a declarative suite descriptor (workloads × MachineSpec
    grid × opt levels × repetitions) into task cells over the
    parallel engine and write a run-table artifact plus a rendered
    summary.  The run table is byte-identical across ``--jobs``
    values and warm re-runs; cached cells are skipped, so sweeps are
    resumable.  Timing rows sharing a workload run as one batched
    trace pass (``--no-batch`` or ``REPRO_BATCH=0`` reverts to one
    simulation per row — same bytes, slower).  ``--dry-run`` validates
    and prints the expansion plan without running anything; exit 1
    when any cell degraded to a gap row.
``chaos [--suite FILE] [--kill N] [--hang N] [--corrupt N] [--seed S]``
    drive a real report (or sweep) under a seeded fault plan — worker
    SIGKILLs, hangs, injected failures, cache corruption, concurrent
    runs on one cache dir — and verify the documented failure
    invariants: output byte-identical or explicitly annotated, cache
    never poisoned, no orphan workers.  Exit 1 when any invariant is
    violated.
``certify <workload> | --all | --adversarial | --asm FILE``
    whole-program stack-safety certification: call graph,
    interprocedural summaries, worst-case depth bound (or UNBOUNDED
    with a recursion cycle), per-slot escape classes, LIFO
    proof/counterexample, per-function integrity/confidentiality.
    ``--validate`` additionally runs the emulator and cross-checks
    observed depth and escapes against the certificate.  Exit 1 on
    hard flags (lifo-violation, structural, unclean-escape) or a
    validation failure; soft flags (unbounded-depth, unknown-callee)
    exit 0.

Exit codes are uniform across commands: 0 success, 1 the command ran
but found failures (lint errors), 2 usage errors — unknown workload or
input names, missing files — reported as a one-line message on stderr,
never a traceback.  All subsystem access goes through the stable
:mod:`repro.api` facade; JSON outputs carry its ``schema_version``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import api
from repro.errors import UsageError
from repro.workloads import BENCHMARK_ORDER, input_names, workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stack Value File (HPCA 2001) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def opt_flag(subparser):
        subparser.add_argument(
            "-O", "--opt-level", type=int, default=0, choices=(0, 1),
            help="optimizer level (0 = naive codegen, 1 = dataflow passes)",
        )

    commands.add_parser("list", help="list the workload suite")

    run_parser = commands.add_parser("run", help="execute a workload")
    run_parser.add_argument("workload")
    run_parser.add_argument("--input", default=None)
    run_parser.add_argument("--max-instructions", type=int, default=None)
    opt_flag(run_parser)

    char_parser = commands.add_parser(
        "characterize", help="Figures 1-3 analyses"
    )
    char_parser.add_argument("workloads", nargs="*")
    char_parser.add_argument(
        "--max-instructions", type=int, default=100_000
    )
    char_parser.add_argument(
        "--format", default="text", choices=("text", "json"),
    )

    sim_parser = commands.add_parser(
        "simulate", help="time a workload on a Table-2 machine"
    )
    sim_parser.add_argument("workload")
    sim_parser.add_argument("--input", default=None)
    sim_parser.add_argument("--width", type=int, default=16,
                            choices=(4, 8, 16))
    sim_parser.add_argument("--dl1-ports", type=int, default=2)
    sim_parser.add_argument(
        "--svf", default="none",
        choices=("none", "svf", "ideal", "stack_cache"),
    )
    sim_parser.add_argument("--ports", type=int, default=2)
    sim_parser.add_argument("--capacity", type=int, default=8192)
    sim_parser.add_argument("--no-squash", action="store_true")
    sim_parser.add_argument("--predictor", default="perfect",
                            choices=("perfect", "gshare"))
    sim_parser.add_argument("--max-instructions", type=int, default=60_000)
    opt_flag(sim_parser)

    compile_parser = commands.add_parser(
        "compile", help="compile a MiniC source file"
    )
    compile_parser.add_argument("source")
    compile_parser.add_argument("--emit", default="asm",
                                choices=("asm", "run"))
    compile_parser.add_argument("--max-instructions", type=int,
                                default=None)
    opt_flag(compile_parser)

    lint_parser = commands.add_parser(
        "lint", help="stack-discipline lint of compiled workloads"
    )
    lint_parser.add_argument(
        "workload", nargs="?", default=None,
        help="benchmark to lint (default: requires --all)",
    )
    lint_parser.add_argument("--input", default=None)
    lint_parser.add_argument(
        "--all", action="store_true",
        help="lint every registry workload (all 13 programs)",
    )
    lint_parser.add_argument(
        "--format", default="text", choices=("text", "json"),
    )
    lint_parser.add_argument(
        "--max-info", type=int, default=None,
        help="truncate info-severity diagnostics per workload (text)",
    )
    lint_parser.add_argument(
        "--jobs", type=int, default=None,
        help="parallel workers for --all (default: serial)",
    )
    lint_parser.add_argument(
        "--asm", default=None, metavar="FILE",
        help="lint a hand-written assembly file instead of a workload",
    )
    opt_flag(lint_parser)

    certify_parser = commands.add_parser(
        "certify",
        help="whole-program stack-safety certification",
    )
    certify_parser.add_argument(
        "workload", nargs="?", default=None,
        help="benchmark to certify (default: requires --all/--adversarial)",
    )
    certify_parser.add_argument("--input", default=None)
    certify_parser.add_argument(
        "--all", action="store_true",
        help="certify every registry workload (all 13 programs)",
    )
    certify_parser.add_argument(
        "--adversarial", action="store_true",
        help="certify the adversarial (contract-violating) family",
    )
    certify_parser.add_argument(
        "--asm", default=None, metavar="FILE",
        help="certify a hand-written assembly file",
    )
    certify_parser.add_argument(
        "--validate", action="store_true",
        help="run the emulator and cross-check the certificate",
    )
    certify_parser.add_argument(
        "--max-instructions", type=int, default=None,
        help="instruction cap for --validate runs (default: full runs)",
    )
    certify_parser.add_argument(
        "--format", default="text", choices=("text", "json"),
    )
    certify_parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="include the per-function verdict table (text format)",
    )
    opt_flag(certify_parser)

    sweep_parser = commands.add_parser(
        "sweep",
        help="run a declarative design-space sweep from a suite file",
    )
    sweep_parser.add_argument(
        "suite", help="suite descriptor (.yaml/.yml or .json)"
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=None,
        help="parallel worker processes (default: CPU count; 1 = serial)",
    )
    sweep_parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="artifact directory (default: sweeps/<suite-name>)",
    )
    sweep_parser.add_argument(
        "--cache-dir", default=None,
        help="trace-cache directory (default: ~/.cache/repro-svf)",
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk cache (sweeps stop being resumable)",
    )
    sweep_parser.add_argument(
        "--format", default="table", choices=("table", "json"),
        help="print the rendered summary or the run-table JSON",
    )
    sweep_parser.add_argument(
        "--dry-run", action="store_true",
        help="validate the descriptor and print the plan; run nothing",
    )
    sweep_parser.add_argument(
        "--task-timeout", type=float, default=600.0,
        help="per-attempt cell deadline in seconds, from submission",
    )
    sweep_parser.add_argument(
        "--no-batch", action="store_true",
        help="simulate each run-table row separately instead of one "
             "batched trace pass per workload (same bytes, for "
             "debugging; REPRO_BATCH=0 disables batching globally)",
    )

    chaos_parser = commands.add_parser(
        "chaos",
        help="inject worker/cache faults and verify failure invariants",
    )
    chaos_parser.add_argument(
        "--benchmarks", nargs="*", default=["gzip"],
        help="benchmark subset the chaotic report runs (default: gzip)",
    )
    chaos_parser.add_argument(
        "--suite", default=None,
        help="target a sweep suite descriptor instead of the report",
    )
    chaos_parser.add_argument(
        "--jobs", type=int, default=2,
        help="engine worker processes during the chaos run (default: 2)",
    )
    chaos_parser.add_argument("--seed", type=int, default=0)
    chaos_parser.add_argument(
        "--kill", type=int, default=1, metavar="N",
        help="cells whose worker is SIGKILLed mid-cell (default: 1)",
    )
    chaos_parser.add_argument(
        "--hang", type=int, default=1, metavar="N",
        help="cells hung past the task deadline (default: 1)",
    )
    chaos_parser.add_argument(
        "--fail", type=int, default=1, metavar="N",
        help="cells that raise an injected exception (default: 1)",
    )
    chaos_parser.add_argument(
        "--corrupt", type=int, default=2, metavar="N",
        help="cache entries truncated/bit-flipped between runs",
    )
    chaos_parser.add_argument(
        "--hang-seconds", type=float, default=30.0,
        help="injected hang length (must exceed --task-timeout)",
    )
    chaos_parser.add_argument(
        "--task-timeout", type=float, default=20.0,
        help="per-attempt cell deadline during the chaos run",
    )
    chaos_parser.add_argument("--timing-window", type=int, default=1_500)
    chaos_parser.add_argument(
        "--functional-window", type=int, default=1_500
    )
    chaos_parser.add_argument(
        "--no-concurrent", action="store_true",
        help="skip the two-runs-one-cache-dir race round",
    )
    chaos_parser.add_argument(
        "--work-dir", default=None,
        help="directory for caches and the fault ledger (default: temp)",
    )
    chaos_parser.add_argument(
        "--format", default="text", choices=("text", "json"),
    )

    exp_parser = commands.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    exp_parser.add_argument("name", choices=api.EXPERIMENT_NAMES)
    exp_parser.add_argument("--window", type=int, default=None)
    exp_parser.add_argument(
        "--format", default="text", choices=("text", "json"),
    )

    report_parser = commands.add_parser(
        "report", help="run every experiment and write one markdown report"
    )
    report_parser.add_argument("--output", default="REPORT.md")
    report_parser.add_argument("--timing-window", type=int, default=40_000)
    report_parser.add_argument(
        "--functional-window", type=int, default=80_000
    )
    report_parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help="subset of benchmarks (default: full suite)",
    )
    report_parser.add_argument(
        "--jobs", type=int, default=None,
        help="parallel worker processes (default: CPU count; 1 = serial)",
    )
    report_parser.add_argument(
        "--cache-dir", default=None,
        help="trace-cache directory (default: ~/.cache/repro-svf)",
    )
    report_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk trace cache for this run",
    )
    report_parser.add_argument(
        "--profile", action="store_true",
        help="print the per-phase wall-time breakdown after the report",
    )
    report_parser.add_argument(
        "--incremental", action="store_true",
        help="re-render only sections whose cached content keys changed",
    )

    profile_parser = commands.add_parser(
        "profile", help="per-phase wall-time breakdown for one workload"
    )
    profile_parser.add_argument("workload")
    profile_parser.add_argument("--input", default=None)
    profile_parser.add_argument(
        "--max-instructions", type=int, default=40_000
    )
    profile_parser.add_argument(
        "--no-batch", action="store_true",
        help="time the baseline and SVF runs as two separate walks "
             "instead of one batched pass",
    )
    opt_flag(profile_parser)

    predict_parser = commands.add_parser(
        "predict",
        help="check static SVF-traffic bounds against dynamic runs",
    )
    predict_parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help="subset of benchmarks (default: all 13 programs)",
    )
    predict_parser.add_argument(
        "--max-instructions", type=int, default=None,
        help="instruction window (default: full runs)",
    )
    predict_parser.add_argument("--capacity", type=int, default=8192)
    predict_parser.add_argument(
        "--jobs", type=int, default=None,
        help="parallel worker processes (default: CPU count; 1 = serial)",
    )
    predict_parser.add_argument(
        "--output", default=None,
        help="write the report to a file instead of stdout",
    )

    trace_parser = commands.add_parser(
        "trace", help="record a workload trace to a file"
    )
    trace_parser.add_argument("workload")
    trace_parser.add_argument("output")
    trace_parser.add_argument("--input", default=None)
    trace_parser.add_argument("--max-instructions", type=int,
                              default=100_000)
    opt_flag(trace_parser)

    replay_parser = commands.add_parser(
        "replay", help="time a recorded trace on a machine config"
    )
    replay_parser.add_argument("trace_file")
    replay_parser.add_argument("--width", type=int, default=16,
                               choices=(4, 8, 16))
    replay_parser.add_argument(
        "--svf", default="none",
        choices=("none", "svf", "ideal", "stack_cache"),
    )
    replay_parser.add_argument("--ports", type=int, default=2)
    return parser


def _fail(message: str) -> int:
    """Uniform one-line usage error: stderr message, exit code 2."""
    print(f"repro: {message}", file=sys.stderr)
    return 2


def _compile_options(args) -> api.CompileOptions:
    return api.CompileOptions(opt_level=getattr(args, "opt_level", 0))


def cmd_list(_args) -> int:
    print(api.experiment("table1").render())
    print()
    for name in BENCHMARK_ORDER:
        print(f"{name}: inputs = {', '.join(input_names(name))}")
    return 0


def cmd_run(args) -> int:
    try:
        result = api.run_workload(
            args.workload,
            args.input,
            options=_compile_options(args),
            max_instructions=args.max_instructions,
        )
    except KeyError as exc:
        return _fail(exc.args[0])
    print(f"{result.workload}: {result.instructions:,} instructions, "
          f"halted={result.halted}")
    print(f"output: {list(result.output)}")
    return 0


def cmd_characterize(args) -> int:
    try:
        result = api.characterize(
            benchmarks=args.workloads or None,
            max_instructions=args.max_instructions,
        )
    except KeyError as exc:
        return _fail(exc.args[0])
    renders = {
        "fig1": result.render_fig1(),
        "fig2": result.render_fig2(),
        "fig3": result.render_fig3(),
    }
    if args.format == "json":
        print(json.dumps(api.versioned(
            {"kind": "characterize", "figures": renders}
        ), indent=2))
    else:
        print("\n\n".join(renders.values()))
    return 0


def cmd_simulate(args) -> int:
    try:
        work = workload(args.workload, args.input)
    except KeyError as exc:
        return _fail(exc.args[0])
    options = _compile_options(args)
    trace = work.trace(
        max_instructions=args.max_instructions, options=options.codegen()
    )
    base_spec = api.MachineSpec(
        width=args.width,
        dl1_ports=args.dl1_ports,
        branch_predictor=args.predictor,
    )
    baseline = api.simulate(trace, base_spec)
    print(f"{work.full_name} on {base_spec.config().name} "
          f"({len(trace):,}-instruction window)")
    print(f"baseline: {baseline.cycles:,} cycles, IPC {baseline.ipc:.2f}")
    if args.svf == "none":
        return 0
    spec = api.MachineSpec(
        width=args.width,
        dl1_ports=args.dl1_ports,
        branch_predictor=args.predictor,
        svf_mode=args.svf,
        svf_ports=args.ports,
        svf_capacity=args.capacity,
        no_squash=args.no_squash,
    )
    run = api.simulate(trace, spec)
    speedup = run.speedup_over(baseline)
    print(f"{args.svf:8s}: {run.cycles:,} cycles, IPC {run.ipc:.2f}, "
          f"speedup {(speedup - 1) * 100:+.1f}%")
    if args.svf == "svf":
        print(f"  morphed {run.svf_fast_loads + run.svf_fast_stores:,} "
              f"({run.svf_fast_fraction:.0%}), "
              f"re-routed {run.svf_rerouted:,}, "
              f"fills {run.svf_fills:,}, squashes {run.svf_squashes:,}")
    return 0


def cmd_compile(args) -> int:
    from repro.emulator import run_program

    try:
        with open(args.source) as handle:
            source = handle.read()
    except FileNotFoundError:
        return _fail(f"no such source file: {args.source}")
    options = _compile_options(args)
    if args.emit == "asm":
        print(api.compile_source(source, options, emit="asm"))
        return 0
    machine, _trace = run_program(
        api.compile_source(source, options),
        max_instructions=args.max_instructions,
    )
    print(f"{machine.instruction_count:,} instructions, "
          f"halted={machine.halted}")
    print(f"output: {machine.output}")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis import render_reports

    chosen = sum((args.all, args.workload is not None, args.asm is not None))
    if chosen > 1:
        return _fail("lint: --all, --asm and naming a workload conflict")
    if args.jobs is not None and args.jobs < 1:
        return _fail(f"lint: --jobs must be >= 1, not {args.jobs}")
    options = _compile_options(args)
    try:
        if args.all:
            reports = api.lint(options=options, jobs=args.jobs)
        elif args.asm is not None:
            from repro.analysis.lint import lint_assembly
            from repro.isa.assembler import AssemblerError

            try:
                with open(args.asm) as handle:
                    source = handle.read()
            except FileNotFoundError:
                return _fail(f"no such assembly file: {args.asm}")
            try:
                reports = [lint_assembly(source, name=args.asm)]
            except AssemblerError as exc:
                return _fail(f"lint: {args.asm}: {exc}")
        elif args.workload is not None:
            reports = api.lint(args.workload, args.input, options=options)
        else:
            return _fail("lint: name a workload or pass --all/--asm")
    except KeyError as exc:
        return _fail(exc.args[0])
    if args.format == "json":
        print(api.lint_json(reports))
    else:
        print(render_reports(reports, max_info=args.max_info))
    return 0 if all(report.ok for report in reports) else 1


def cmd_certify(args) -> int:
    from repro.analysis.certify import render_certificates
    from repro.harness.certification import render_validations

    chosen = sum((
        args.all, args.adversarial,
        args.workload is not None, args.asm is not None,
    ))
    if chosen > 1:
        return _fail(
            "certify: --all, --adversarial, --asm and naming a "
            "workload conflict"
        )
    if chosen == 0:
        return _fail(
            "certify: name a workload or pass --all/--adversarial/--asm"
        )
    options = _compile_options(args)
    try:
        if args.asm is not None:
            from repro.isa.assembler import AssemblerError, assemble

            try:
                with open(args.asm) as handle:
                    source = handle.read()
            except FileNotFoundError:
                return _fail(f"no such assembly file: {args.asm}")
            try:
                program = assemble(source)
            except AssemblerError as exc:
                return _fail(f"certify: {args.asm}: {exc}")
            results = api.certify(
                program,
                validate=args.validate,
                max_instructions=args.max_instructions,
            )
            results[0].certificate.name = args.asm
            if results[0].validation is not None:
                results[0].validation.name = args.asm
        else:
            results = api.certify(
                args.workload,
                args.input,
                options=options,
                validate=args.validate,
                adversarial=args.adversarial,
                max_instructions=args.max_instructions,
            )
    except KeyError as exc:
        return _fail(exc.args[0])
    if args.format == "json":
        print(api.certify_json(results))
    else:
        print(render_certificates(
            [result.certificate for result in results],
            verbose=args.verbose,
        ))
        validations = [
            result.validation for result in results
            if result.validation is not None
        ]
        if validations:
            print()
            print(render_validations(validations))
    return 0 if all(result.ok for result in results) else 1


def cmd_sweep(args) -> int:
    import os

    spec = api.load_suite(args.suite)
    if args.dry_run:
        points = spec.expand()
        combos = spec.combos()
        print(f"suite {spec.name} ({spec.kind}): "
              f"{len(spec.workloads)} workloads x {len(combos)} configs "
              f"x {len(spec.opt_levels)} opt levels "
              f"x {spec.repetitions} reps = {len(points)} cells, "
              f"window {spec.window:,}")
        print(f"workloads: {', '.join(spec.workloads)}")
        print(f"factors: {', '.join(spec.factor_names) or '(none)'}")
        for combo in combos:
            label = ", ".join(f"{axis}={value}" for axis, value in combo)
            print(f"  {label or '(base)'}")
        return 0
    out_dir = args.out if args.out is not None else os.path.join(
        "sweeps", spec.name
    )
    options = api.SweepOptions(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        task_timeout=args.task_timeout,
        out_dir=out_dir,
        batch=not args.no_batch,
    )
    result = api.sweep(
        spec,
        options,
        progress=lambda message: print(
            f"[sweep] {message}", file=sys.stderr
        ),
    )
    if args.format == "json":
        print(api.sweep_json(result))
    else:
        print(result.render_summary())
    return 0 if result.ok else 1


def cmd_chaos(args) -> int:
    if args.hang > 0 and args.hang_seconds <= args.task_timeout:
        return _fail(
            f"chaos: --hang-seconds ({args.hang_seconds}) must exceed "
            f"--task-timeout ({args.task_timeout}) for a hang to count"
        )
    options = api.ChaosOptions(
        benchmarks=tuple(args.benchmarks),
        suite=args.suite,
        jobs=args.jobs,
        seed=args.seed,
        kills=args.kill,
        hangs=args.hang,
        fails=args.fail,
        corrupt=args.corrupt,
        hang_seconds=args.hang_seconds,
        task_timeout=args.task_timeout,
        timing_window=args.timing_window,
        functional_window=args.functional_window,
        concurrent=not args.no_concurrent,
        work_dir=args.work_dir,
    )
    result = api.chaos_check(
        options,
        progress=lambda message: print(
            f"[chaos] {message}", file=sys.stderr
        ),
    )
    if args.format == "json":
        print(api.chaos_json(result))
    else:
        print(result.render())
    return 0 if result.ok else 1


def cmd_experiment(args) -> int:
    result = api.experiment(args.name, window=args.window)
    print(result.to_json() if args.format == "json" else result.render())
    return 0


def cmd_report(args) -> int:
    from repro.profiling import PhaseProfiler

    benchmarks = tuple(args.benchmarks) if args.benchmarks else None
    if args.jobs is not None and args.jobs < 1:
        return _fail(f"report: --jobs must be >= 1, not {args.jobs}")
    options = api.ReportOptions(
        timing_window=args.timing_window,
        functional_window=args.functional_window,
        benchmarks=benchmarks,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        incremental=args.incremental,
    )
    profiler = PhaseProfiler() if args.profile else None
    text = api.generate_report(
        options,
        progress=lambda message: print(f"[report] {message}"),
        profiler=profiler,
    )
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    if profiler is not None:
        print()
        print(profiler.render(title="Phase profile — full report"))
    return 0


def cmd_profile(args) -> int:
    from repro.core.traffic import simulate_traffic
    from repro.emulator.memory import STACK_BASE
    from repro.profiling import profiled
    from repro.trace.analysis import (
        AccessDistribution,
        OffsetLocality,
        StackDepthProfile,
        consume_trace,
    )
    from repro.trace.first_touch import FirstTouchProfile
    from repro.uarch.config import table2_config
    from repro.uarch.pipeline import simulate as run_timing
    from repro.uarch.pipeline import simulate_batch

    try:
        work = workload(args.workload, args.input)
    except KeyError as exc:
        return _fail(exc.args[0])
    options = _compile_options(args)
    with profiled() as profiler:
        trace = work.trace(
            max_instructions=args.max_instructions,
            options=options.codegen(),
        )
        base = table2_config(16)
        svf_config = base.with_svf(mode="svf", ports=2)
        if args.no_batch:
            baseline = run_timing(trace, base)
            svf = run_timing(trace, svf_config)
        else:
            # One batched pass: the profile shows the batch counters
            # (batch_configs, batch_walks_saved) alongside the phases.
            baseline, svf = simulate_batch(trace, [base, svf_config])
        simulate_traffic(trace)
        # The Figure 1-3 characterization pass, so "analysis" shows up
        # as its own phase instead of folding into "traffic".
        consume_trace(
            trace,
            (
                AccessDistribution(),
                StackDepthProfile(stack_base=STACK_BASE),
                OffsetLocality(),
                FirstTouchProfile(),
            ),
        )
    speedup = svf.speedup_over(baseline)
    print(f"{work.full_name}: {len(trace):,} instructions traced; "
          f"svf speedup {(speedup - 1) * 100:+.1f}% "
          f"over the 16-wide baseline")
    print()
    print(profiler.render(title=f"Phase profile — {work.full_name}"))
    return 0


def cmd_predict(args) -> int:
    if args.jobs is not None and args.jobs < 1:
        return _fail(f"predict: --jobs must be >= 1, not {args.jobs}")
    report = api.predict(
        benchmarks=args.benchmarks or None,
        max_instructions=args.max_instructions,
        capacity_bytes=args.capacity,
        jobs=args.jobs,
        progress=lambda message: print(
            f"[predict] {message}", file=sys.stderr
        ),
    )
    text = report.render()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    else:
        print(text)
    return 0 if report.all_bounds_hold else 1


def cmd_trace(args) -> int:
    from repro.trace import save_trace
    from repro.trace.columnar import ColumnarTrace

    try:
        work = workload(args.workload, args.input)
    except KeyError as exc:
        return _fail(exc.args[0])
    options = _compile_options(args)
    columns = ColumnarTrace()
    work.run(
        max_instructions=args.max_instructions,
        trace_sink=columns,
        options=options.codegen(),
    )
    count = save_trace(columns, args.output)
    print(f"wrote {count:,} records to {args.output}")
    return 0


def cmd_replay(args) -> int:
    from repro.trace import load_trace

    try:
        trace = load_trace(args.trace_file)
    except FileNotFoundError:
        return _fail(f"no such trace file: {args.trace_file}")
    base = api.MachineSpec(width=args.width)
    baseline = api.simulate(trace, base)
    print(f"{args.trace_file}: {len(trace):,} instructions")
    print(f"baseline: {baseline.cycles:,} cycles, IPC {baseline.ipc:.2f}")
    if args.svf != "none":
        run = api.simulate(
            trace,
            api.MachineSpec(
                width=args.width, svf_mode=args.svf, svf_ports=args.ports
            ),
        )
        speedup = run.speedup_over(baseline)
        print(f"{args.svf}: {run.cycles:,} cycles, "
              f"speedup {(speedup - 1) * 100:+.1f}%")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "characterize": cmd_characterize,
        "simulate": cmd_simulate,
        "compile": cmd_compile,
        "experiment": cmd_experiment,
        "sweep": cmd_sweep,
        "chaos": cmd_chaos,
        "lint": cmd_lint,
        "certify": cmd_certify,
        "report": cmd_report,
        "profile": cmd_profile,
        "predict": cmd_predict,
        "trace": cmd_trace,
        "replay": cmd_replay,
    }
    try:
        return handlers[args.command](args)
    except UsageError as exc:
        return _fail(str(exc))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
