"""The paper's contribution: SVF, stack-cache baseline, traffic models."""

from repro.core.stack_cache import StackCache, StackCacheAccess
from repro.core.svf import StackValueFile, SVFAccess
from repro.core.traffic import (
    TrafficResult,
    TrafficSimulator,
    simulate_traffic,
    traffic_size_sweep,
)

__all__ = [
    "SVFAccess",
    "StackCache",
    "StackCacheAccess",
    "StackValueFile",
    "TrafficResult",
    "TrafficSimulator",
    "simulate_traffic",
    "traffic_size_sweep",
]
