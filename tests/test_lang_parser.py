"""Unit tests for the MiniC parser."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.parser import ParseError, parse


def parse_main_body(body):
    unit = parse("int main() { %s }" % body)
    return unit.functions[0].body


def parse_expr(expression):
    statement = parse_main_body(f"x = {expression};")[0]
    return statement.value


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_shift_below_add(self):
        expr = parse_expr("1 << 2 + 3")
        assert expr.op == "<<"
        assert expr.right.op == "+"

    def test_precedence_bitwise_chain(self):
        expr = parse_expr("1 | 2 ^ 3 & 4")
        assert expr.op == "|"
        assert expr.right.op == "^"
        assert expr.right.right.op == "&"

    def test_logical_lowest(self):
        expr = parse_expr("a == 1 && b < 2 || c")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_operators_nest(self):
        expr = parse_expr("-!~x")
        assert (expr.op, expr.operand.op, expr.operand.operand.op) == (
            "-", "!", "~",
        )

    def test_address_and_deref(self):
        expr = parse_expr("*p + &q")
        assert expr.left.op == "*"
        assert expr.right.op == "&"

    def test_indexing_chains(self):
        expr = parse_expr("a[i][j]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_call_with_arguments(self):
        expr = parse_expr("f(1, g(2), h())")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 3
        assert isinstance(expr.args[1], ast.Call)


class TestStatements:
    def test_declaration_forms(self):
        body = parse_main_body("int a; int b = 5; int c[10]; int *p = 0;")
        decls = [s for s in body if isinstance(s, ast.Declaration)]
        assert [d.name for d in decls] == ["a", "b", "c", "p"]
        assert decls[2].array_size == 10
        assert decls[3].is_pointer

    def test_compound_assignment_desugars(self):
        statement = parse_main_body("x += 2;")[0]
        assert isinstance(statement, ast.Assign)
        assert statement.value.op == "+"

    def test_if_else_if_chain(self):
        statement = parse_main_body(
            "if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }"
        )[0]
        assert isinstance(statement, ast.If)
        assert isinstance(statement.else_body[0], ast.If)

    def test_while_and_unbraced_body(self):
        statement = parse_main_body("while (a) x = 1;")[0]
        assert isinstance(statement, ast.While)
        assert len(statement.body) == 1

    def test_for_full_header(self):
        statement = parse_main_body(
            "for (int i = 0; i < 10; i += 1) { x = i; }"
        )[0]
        assert isinstance(statement.init, ast.Declaration)
        assert statement.condition.op == "<"
        assert isinstance(statement.step, ast.Assign)

    def test_for_empty_header(self):
        statement = parse_main_body("for (;;) { break; }")[0]
        assert statement.init is None
        assert statement.condition is None
        assert statement.step is None

    def test_return_with_and_without_value(self):
        body = parse_main_body("if (a) { return; } return 5;")
        assert body[0].then_body[0].value is None
        assert body[1].value.value == 5

    def test_break_continue(self):
        body = parse_main_body("while (1) { break; continue; }")
        assert isinstance(body[0].body[0], ast.Break)
        assert isinstance(body[0].body[1], ast.Continue)


class TestTopLevel:
    def test_globals_with_initializers(self):
        unit = parse("int g = 7; int a[4] = {1, 2}; int z; int main() {}")
        assert unit.globals[0].initializer == [7]
        assert unit.globals[1].initializer == [1, 2]
        assert unit.globals[1].array_size == 4
        assert unit.globals[2].initializer == []

    def test_negative_global_initializer(self):
        unit = parse("int g = -3; int main() {}")
        assert unit.globals[0].initializer == [-3]

    def test_function_parameters(self):
        unit = parse("int f(int a, int *b) { return a; } int main() {}")
        params = unit.functions[0].params
        assert [p.name for p in params] == ["a", "b"]
        assert params[1].is_pointer


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "int main() { x = ; }",
            "int main() { if x { } }",
            "int main() { int 5x; }",
            "int main() { return 1 }",
            "int main() { f(1,; }",
            "int main( { }",
            "int *g; int main() {}",
        ],
    )
    def test_syntax_errors(self, source):
        with pytest.raises(ParseError):
            parse(source)

    def test_error_mentions_position(self):
        with pytest.raises(ParseError, match="line 1"):
            parse("int main() { x = + ; }")
