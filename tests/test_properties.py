"""Property-based tests (hypothesis) for core invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.stack_cache import StackCache
from repro.core.svf import StackValueFile
from repro.emulator import run_program
from repro.isa.assembler import assemble
from repro.lang import compile_program
from repro.uarch.cache import Cache
from repro.uarch.config import CacheConfig
from repro.uarch.resources import CyclePool

MASK64 = (1 << 64) - 1


def to_signed(value):
    value &= MASK64
    return value - (1 << 64) if value & (1 << 63) else value


# ---------------------------------------------------------------------------
# MiniC expression compilation against a reference evaluator
# ---------------------------------------------------------------------------

_literals = st.integers(min_value=-50, max_value=50)


def _exprs(depth):
    if depth == 0:
        return _literals.map(lambda v: (str(v), v))
    sub = _exprs(depth - 1)

    def combine(args):
        op, (ls, lv), (rs, rv) = args
        if op == "+":
            value = lv + rv
        elif op == "-":
            value = lv - rv
        elif op == "*":
            value = lv * rv
        elif op == "&":
            value = lv & rv
        elif op == "|":
            value = lv | rv
        elif op == "^":
            value = lv ^ rv
        elif op == "<":
            value = int(lv < rv)
        else:
            value = int(lv == rv)
        return (f"({ls} {op} {rs})", to_signed(value))

    compound = st.tuples(
        st.sampled_from("+-*&|^<").map(str) | st.just("=="), sub, sub
    ).map(combine)
    return st.one_of(sub, compound)


class TestMiniCExpressions:
    @settings(max_examples=40, deadline=None)
    @given(_exprs(3))
    def test_compiled_expression_matches_reference(self, pair):
        source_expr, expected = pair
        program = compile_program(
            f"int main() {{ print({source_expr}); return 0; }}"
        )
        machine, _ = run_program(program, max_instructions=100_000)
        assert machine.halted
        assert machine.output == [expected]

    @settings(max_examples=20, deadline=None)
    @given(_exprs(2), _exprs(2))
    def test_expression_through_variables_and_calls(self, left, right):
        ls, lv = left
        rs, rv = right
        program = compile_program(
            f"""
            int pass_through(int x) {{ return x; }}
            int main() {{
                int a = {ls};
                int b = pass_through({rs});
                print(a + b);
                return 0;
            }}
            """
        )
        machine, _ = run_program(program, max_instructions=200_000)
        assert machine.output == [to_signed(lv + rv)]


# ---------------------------------------------------------------------------
# SVF invariants under arbitrary sp movement and access sequences
# ---------------------------------------------------------------------------

BASE = 0x7FF00000

_svf_ops = st.lists(
    st.one_of(
        st.tuples(st.just("sp"), st.integers(-40, 40)),
        st.tuples(st.just("load"), st.integers(0, 200)),
        st.tuples(st.just("store"), st.integers(0, 200)),
        st.tuples(st.just("switch"), st.just(0)),
    ),
    min_size=1,
    max_size=120,
)


class TestSVFProperties:
    @settings(max_examples=60, deadline=None)
    @given(_svf_ops, st.sampled_from([256, 512, 1024]))
    def test_invariants_hold(self, operations, capacity):
        svf = StackValueFile(capacity_bytes=capacity)
        sp = BASE
        svf.update_sp(sp)
        # Shadow model: words we know the SVF must consider valid.
        for kind, argument in operations:
            if kind == "sp":
                sp = BASE + 8 * argument  # stay in a sane band
                svf.update_sp(sp)
            elif kind in ("load", "store"):
                addr = sp + 8 * argument
                outcome = svf.access(addr, 8, kind == "store")
                assert outcome.in_range == svf.covers(addr)
                if outcome.in_range:
                    # After any access the word must be valid: an
                    # immediate re-load is always a hit.
                    again = svf.access(addr, 8, False)
                    assert again.hit
            else:
                svf.context_switch()
            # Global invariants.
            assert svf.valid_words <= svf.num_entries
            assert all(svf.covers(word) for word in svf._words)
            assert svf.qw_in >= 0 and svf.qw_out >= 0

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 100), st.sampled_from([256, 512]))
    def test_grow_shrink_cycle_never_writes_back(self, words, capacity):
        """Any frame fully allocated, dirtied and deallocated inside
        one grow/shrink cycle produces zero traffic (the paper's core
        semantic claim)."""
        svf = StackValueFile(capacity_bytes=capacity)
        svf.update_sp(BASE)
        svf.update_sp(BASE - 8 * words)
        for i in range(min(words, capacity // 8)):
            svf.access(BASE - 8 * words + 8 * i, 8, True)
        svf.update_sp(BASE)
        assert svf.qw_out == 0
        assert svf.qw_in == 0

    @settings(max_examples=40, deadline=None)
    @given(_svf_ops)
    def test_context_switch_flush_bounded_by_valid_words(self, operations):
        svf = StackValueFile(capacity_bytes=512)
        sp = BASE
        svf.update_sp(sp)
        for kind, argument in operations:
            if kind == "sp":
                sp = BASE + 8 * argument
                svf.update_sp(sp)
            elif kind in ("load", "store"):
                svf.access(sp + 8 * argument, 8, kind == "store")
            else:
                valid_before = svf.valid_words
                flushed = svf.context_switch()
                assert flushed <= 8 * valid_before


class TestStackCacheProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 500), st.booleans()),
                    min_size=1, max_size=200))
    def test_traffic_is_line_multiples(self, accesses):
        cache = StackCache(capacity_bytes=1024, line_size=32)
        for offset, is_store in accesses:
            cache.access(BASE + 8 * offset, 8, is_store)
        assert cache.qw_in % cache.line_words == 0
        assert cache.qw_out % cache.line_words == 0
        assert cache.qw_out <= cache.qw_in  # can't write back unfetched
        assert cache.hits + cache.misses == len(accesses)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=50))
    def test_single_line_working_set_only_compulsory_misses(self, offsets):
        cache = StackCache(capacity_bytes=1024, line_size=32)
        for offset in offsets:
            cache.access(BASE + 8 * offset, 8, False)
        assert cache.misses == 1  # all offsets share one line


# ---------------------------------------------------------------------------
# LRU cache and resource pools
# ---------------------------------------------------------------------------


class TestCacheProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=60))
    def test_fully_associative_small_set_compulsory_only(self, lines):
        config = CacheConfig(size=4 * 32, assoc=4, line_size=32, latency=1)
        cache = Cache(config, memory_latency=10)
        for line in lines:
            cache.access(line * 32)
        assert cache.misses == len(set(lines))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=200))
    def test_hits_plus_misses_equals_accesses(self, lines):
        config = CacheConfig(size=1024, assoc=2, line_size=32, latency=1)
        cache = Cache(config, memory_latency=10)
        for line in lines:
            cache.access(line * 32)
        assert cache.hits + cache.misses == len(lines)


class TestCyclePoolProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=100),
        st.integers(1, 4),
    )
    def test_never_oversubscribed_and_monotone(self, requests, per_cycle):
        pool = CyclePool("p", per_cycle)
        grants = [pool.acquire(request) for request in requests]
        for request, grant in zip(requests, grants):
            assert grant >= request
        for cycle in set(grants):
            assert pool.usage(cycle) <= per_cycle


# ---------------------------------------------------------------------------
# Assembler round trip
# ---------------------------------------------------------------------------

_regs = st.integers(0, 31)


class TestAssemblerRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from(["addq", "subq", "mulq", "and", "or", "xor",
                         "cmplt", "sll"]),
        _regs, _regs, _regs, st.integers(-255, 255), st.booleans(),
    )
    def test_alu_render_reassembles(self, op, ra, rb, rd, imm, use_imm):
        from repro.isa.instructions import Instruction

        if use_imm:
            original = Instruction(op, ra=ra, imm=imm, rd=rd)
        else:
            original = Instruction(op, ra=ra, rb=rb, rd=rd)
        program = assemble(f"main: {original.render()}\n halt")
        parsed = program.instructions[0]
        assert parsed.render() == original.render()

    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from(["ldq", "stq", "ldl", "stl", "lda"]),
        _regs, _regs, st.integers(-4096, 4096),
    )
    def test_memory_render_reassembles(self, op, rd, rb, imm):
        from repro.isa.instructions import Instruction

        original = Instruction(op, rd=rd, rb=rb, imm=imm)
        program = assemble(f"main: {original.render()}\n halt")
        assert program.instructions[0].render() == original.render()
